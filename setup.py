"""Legacy setup shim: the sandboxed environment lacks the `wheel`
package, so PEP-517 editable installs fail; this enables
``pip install -e . --no-build-isolation --no-use-pep517``."""

from setuptools import setup

setup()
