"""Structured logging: one event name plus key=value fields per line.

Wraps stdlib :mod:`logging` (no new dependencies).  Two output modes:

- human (default): ``12:00:01 INFO  service.listening host=127.0.0.1``
- JSON (``--log-json``): one object per line with ``ts``, ``level``,
  ``event``, ``request_id`` (when a trace is active) and the fields.

``configure_logging`` installs a single handler on the ``repro``
logger; calling it again reconfigures in place, so tests and the CLI
can flip modes freely.  Log lines inside a request automatically carry
the request id from the active trace.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Optional, TextIO

from repro.obs.tracing import current_request_id

__all__ = ["StructLogger", "configure_logging", "get_logger"]

_ROOT = "repro"
_json_mode = False
_configured = False

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def configure_logging(
    level: str = "info",
    json_mode: bool = False,
    stream: Optional[TextIO] = None,
) -> None:
    """Install (or replace) the single handler on the ``repro`` logger."""
    global _json_mode, _configured
    if level not in _LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {sorted(_LEVELS)}")
    _json_mode = json_mode
    logger = logging.getLogger(_ROOT)
    logger.setLevel(_LEVELS[level])
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    _configured = True


def ensure_configured() -> None:
    """Default setup for entry points that skip ``configure_logging``."""
    if not _configured:
        configure_logging()


class StructLogger:
    """Event-style logger: ``log.info("service.listening", port=8188)``."""

    def __init__(self, name: str = _ROOT):
        if name != _ROOT and not name.startswith(_ROOT + "."):
            name = f"{_ROOT}.{name}"
        self._logger = logging.getLogger(name)

    def _log(self, level: int, event: str, **fields: Any) -> None:
        if not self._logger.isEnabledFor(level):
            return
        request_id = current_request_id()
        if _json_mode:
            record = {
                "ts": round(time.time(), 3),
                "level": logging.getLevelName(level).lower(),
                "event": event,
            }
            if request_id is not None:
                record["request_id"] = request_id
            record.update(fields)
            line = json.dumps(record, default=str, separators=(",", ":"))
        else:
            stamp = time.strftime("%H:%M:%S")
            parts = [stamp, logging.getLevelName(level).ljust(7), event]
            if request_id is not None:
                parts.append(f"request_id={request_id}")
            parts.extend(f"{k}={v}" for k, v in fields.items())
            line = " ".join(str(p) for p in parts)
        self._logger.log(level, line)

    def debug(self, event: str, **fields: Any) -> None:
        self._log(logging.DEBUG, event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log(logging.INFO, event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log(logging.WARNING, event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log(logging.ERROR, event, **fields)


def get_logger(name: str = _ROOT) -> StructLogger:
    return StructLogger(name)
