"""Span-based tracing: nested stage timings per request.

``span("stage", **attrs)`` is a context manager that times a pipeline
stage.  Every exit feeds the global ``repro_stage_seconds`` histogram;
when a :class:`Trace` is active (the serving plane activates one per
HTTP request), the span is also recorded into it with parent/child
structure so ``/v1/debug/trace/<id>`` can show where a request's time
went.

Propagation rules:

- within one thread / one asyncio task tree, the active trace flows
  through a :mod:`contextvars` variable (``asyncio.ensure_future``
  copies the context at task creation, so the server's route task
  inherits it for free);
- ``loop.run_in_executor`` does *not* carry context into worker
  threads, so the engine carries the trace on the
  ``ServiceRequest.trace`` field and re-activates it explicitly via
  :func:`activate`/:func:`deactivate` around ``handle()``.

Telemetry is best-effort by construction: the emit path fires the
``obs.emit`` chaos fault point first and swallows every exception —
a broken metrics sink increments a drop counter, never fails a
request.  ``REPRO_OBS=off`` (or :func:`set_enabled`) turns ``span``
into a bare ``yield`` for overhead measurement.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import uuid
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import REGISTRY
from repro.testing.faults import FAULTS

__all__ = [
    "Trace",
    "TraceRing",
    "TRACE_RING",
    "span",
    "new_trace",
    "new_request_id",
    "activate",
    "deactivate",
    "current_trace",
    "current_request_id",
    "enabled",
    "set_enabled",
    "dropped_emits",
]

_OFF_VALUES = {"0", "off", "false", "no"}

_enabled = os.environ.get("REPRO_OBS", "on").strip().lower() not in _OFF_VALUES


def enabled() -> bool:
    """True when spans record; false under ``REPRO_OBS=off``."""
    return _enabled


def set_enabled(value: bool) -> None:
    """In-process toggle (the bench's overhead gate flips this)."""
    global _enabled
    _enabled = bool(value)


#: Stage timings for every instrumented pipeline stage, process-wide.
STAGE_SECONDS = REGISTRY.histogram(
    "repro_stage_seconds",
    "Wall time per instrumented pipeline stage",
    labels=("stage",),
)

_dropped_total = 0
_dropped_lock = threading.Lock()


def dropped_emits() -> int:
    """Spans whose emit path raised (broken sink, chaos fault)."""
    return _dropped_total


def _collect_obs(registry) -> None:
    registry.gauge(
        "repro_obs_dropped_emits",
        "Span emits swallowed because the telemetry sink raised",
    ).set(_dropped_total)
    registry.gauge(
        "repro_obs_enabled", "1 when span instrumentation records"
    ).set(1.0 if _enabled else 0.0)


REGISTRY.register_collector("obs", _collect_obs)


def new_request_id() -> str:
    return uuid.uuid4().hex[:16]


class Trace:
    """Spans recorded for one request, id-addressable in the ring."""

    __slots__ = (
        "trace_id",
        "started_unix_s",
        "_perf0",
        "_lock",
        "_next",
        "spans",
        "status",
        "route",
        "method",
        "duration_ms",
    )

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id or new_request_id()
        self.started_unix_s = time.time()
        self._perf0 = time.perf_counter()
        self._lock = threading.Lock()
        self._next = 0
        self.spans: List[Dict[str, Any]] = []
        self.status: Optional[int] = None
        self.route: Optional[str] = None
        self.method: Optional[str] = None
        self.duration_ms: Optional[float] = None

    def next_span_id(self) -> int:
        with self._lock:
            self._next += 1
            return self._next

    def record(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_perf: float,
        duration_s: float,
        attrs: Dict[str, Any],
    ) -> None:
        entry = {
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "start_ms": round((start_perf - self._perf0) * 1e3, 3),
            "duration_ms": round(duration_s * 1e3, 3),
        }
        if attrs:
            entry["attrs"] = {
                k: v if isinstance(v, (str, int, float, bool)) else str(v)
                for k, v in attrs.items()
            }
        with self._lock:
            self.spans.append(entry)

    def finish(
        self,
        status: Optional[int] = None,
        route: Optional[str] = None,
        method: Optional[str] = None,
    ) -> None:
        self.status = status
        self.route = route
        self.method = method
        self.duration_ms = round((time.perf_counter() - self._perf0) * 1e3, 3)

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            spans = sorted(self.spans, key=lambda s: (s["start_ms"], s["span_id"]))
        return {
            "trace_id": self.trace_id,
            "started_unix_s": self.started_unix_s,
            "status": self.status,
            "route": self.route,
            "method": self.method,
            "duration_ms": self.duration_ms,
            "spans": spans,
        }


class TraceRing:
    """Bounded id->trace map keeping the most recent requests."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()

    def put(self, trace: Trace) -> None:
        with self._lock:
            self._traces[trace.trace_id] = trace
            self._traces.move_to_end(trace.trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Optional[Trace]:
        with self._lock:
            return self._traces.get(trace_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def summaries(self, limit: int = 32) -> List[Dict[str, Any]]:
        with self._lock:
            recent = list(self._traces.values())[-limit:]
        return [
            {
                "trace_id": t.trace_id,
                "route": t.route,
                "status": t.status,
                "duration_ms": t.duration_ms,
                "spans": len(t.spans),
            }
            for t in reversed(recent)
        ]


#: Ring buffer behind ``/v1/debug/trace/<id>``.
TRACE_RING = TraceRing()

# (trace, parent_span_id) for the current execution context.
_CTX: "contextvars.ContextVar[Optional[Tuple[Trace, Optional[int]]]]" = (
    contextvars.ContextVar("repro_obs_trace", default=None)
)


def new_trace(trace_id: Optional[str] = None) -> Trace:
    return Trace(trace_id)


def activate(trace: Optional[Trace]):
    """Make ``trace`` current; returns a token for :func:`deactivate`."""
    if trace is None:
        return None
    return _CTX.set((trace, None))


def deactivate(token) -> None:
    if token is not None:
        _CTX.reset(token)


def current_trace() -> Optional[Trace]:
    ctx = _CTX.get()
    return ctx[0] if ctx is not None else None


def current_request_id() -> Optional[str]:
    trace = current_trace()
    return trace.trace_id if trace is not None else None


def _emit(
    name: str,
    trace: Optional[Trace],
    span_id: Optional[int],
    parent_id: Optional[int],
    start_perf: float,
    duration_s: float,
    attrs: Dict[str, Any],
) -> None:
    global _dropped_total
    try:
        FAULTS.fire("obs.emit")
        STAGE_SECONDS.labels(stage=name).observe(duration_s)
        if trace is not None and span_id is not None:
            trace.record(span_id, parent_id, name, start_perf, duration_s, attrs)
    except Exception:
        with _dropped_lock:
            _dropped_total += 1


@contextmanager
def span(name: str, **attrs: Any):
    """Time a pipeline stage; record to histogram + active trace.

    No-op (bare yield) when instrumentation is disabled.  Never raises
    from the telemetry path itself.
    """
    if not _enabled:
        yield None
        return
    ctx = _CTX.get()
    token = None
    trace: Optional[Trace] = None
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    if ctx is not None:
        trace, parent_id = ctx
        span_id = trace.next_span_id()
        token = _CTX.set((trace, span_id))
    start = time.perf_counter()
    try:
        yield None
    finally:
        duration = time.perf_counter() - start
        if token is not None:
            _CTX.reset(token)
        _emit(name, trace, span_id, parent_id, start, duration, attrs)
