"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry absorbs the repo's scattered counter structs
(``EngineStats``, ``StoreCounters``, ``KERNEL_STATS``, per-``Session``
cache stats) behind *collectors*: callables registered under a key that
refresh gauges from the authoritative struct at scrape time.  The
structs stay the single source of truth — the registry never duplicates
a count, it projects one.

Design constraints:

- stdlib only, lock-cheap: one ``threading.Lock`` per metric family,
  taken only on write/observe; the hot profiler path observes a
  histogram (one dict lookup + one lock) per pipeline *stage*, never
  per chunk.
- label support with cached children: ``family.labels(stage="replay")``
  resolves through a dict keyed on the label-value tuple.
- Prometheus text exposition format 0.0.4 (``# HELP``/``# TYPE``
  headers, cumulative ``_bucket{le=...}`` plus ``_sum``/``_count`` for
  histograms, backslash/quote/newline escaping in label values).

Two registries cooperate at render time: the module-level ``REGISTRY``
holds process-global series (pipeline-stage histograms, telemetry drop
counters) while each ``PredictionService`` owns a private registry for
its admission counters so parallel test servers do not bleed counts
into each other.  ``render_registries`` concatenates both for the
``/metrics`` endpoint.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "render_registries",
]

_INF = float("inf")

# Latency buckets (seconds) for pipeline stages: the profiler's
# per-stage times span ~0.1 ms (cached expansion) to seconds (full
# Rodinia replay at scale), so the grid is log-ish across that range.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects."""
    if value == _INF:
        return "+Inf"
    if value == -_INF:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_suffix(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)
    )
    return "{" + inner + "}"


class _Family:
    """Base for one named metric and its per-labelset children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labels: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], "_Family"] = {}
        if not self.label_names:
            self._init_state()

    def _init_state(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **kwargs: object) -> "_Family":
        if tuple(sorted(kwargs)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(kwargs))}"
            )
        key = tuple(str(kwargs[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = type(self)(self.name, self.help)
                    self._children[key] = child
        return child

    def _samples(self) -> List[Tuple[Tuple[str, ...], "_Family"]]:
        """(label-values, leaf) pairs; the leaf holds the state."""
        if not self.label_names:
            return [((), self)]
        with self._lock:
            return sorted(self._children.items())

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for values, leaf in self._samples():
            lines.extend(leaf._render_sample(self.name, self.label_names, values))
        return lines

    def _render_sample(
        self, name: str, names: Sequence[str], values: Sequence[str]
    ) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Family):
    """Monotonically increasing count."""

    kind = "counter"

    def _init_state(self) -> None:
        self._value = 0.0

    def inc(self, by: float = 1.0) -> None:
        with self._lock:
            self._value += by

    def value(self) -> float:
        if self.label_names:
            return sum(leaf._value for _, leaf in self._samples())
        return self._value

    def _render_sample(self, name, names, values):
        suffix = _label_suffix(names, values)
        return [f"{name}{suffix} {_format_value(self._value)}"]


class Gauge(_Family):
    """Point-in-time value, settable in either direction."""

    kind = "gauge"

    def _init_state(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, by: float = 1.0) -> None:
        with self._lock:
            self._value += by

    def value(self) -> float:
        if self.label_names:
            return sum(leaf._value for _, leaf in self._samples())
        return self._value

    def _render_sample(self, name, names, values):
        suffix = _label_suffix(names, values)
        return [f"{name}{suffix} {_format_value(self._value)}"]


class Histogram(_Family):
    """Fixed-bucket histogram with cumulative Prometheus semantics."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        self._buckets: Tuple[float, ...] = tuple(sorted(buckets))
        super().__init__(name, help, labels)

    def _init_state(self) -> None:
        self._counts = [0] * (len(self._buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def labels(self, **kwargs: object) -> "Histogram":
        if tuple(sorted(kwargs)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(kwargs))}"
            )
        key = tuple(str(kwargs[n]) for n in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = Histogram(self.name, self.help, buckets=self._buckets)
                    self._children[key] = child
        return child  # type: ignore[return-value]

    def observe(self, value: float) -> None:
        idx = len(self._buckets)
        for i, bound in enumerate(self._buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def _render_sample(self, name, names, values):
        lines = []
        cumulative = 0
        with self._lock:
            counts = list(self._counts)
            total = self._count
            total_sum = self._sum
        bounds = [*self._buckets, _INF]
        for bound, n in zip(bounds, counts):
            cumulative += n
            le = _label_suffix(
                (*names, "le"), (*values, _format_value(bound))
            )
            lines.append(f"{name}_bucket{le} {cumulative}")
        suffix = _label_suffix(names, values)
        lines.append(f"{name}_sum{suffix} {_format_value(total_sum)}")
        lines.append(f"{name}_count{suffix} {total}")
        return lines


class MetricsRegistry:
    """A named collection of metric families plus refresh collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}
        self._collectors: Dict[str, Callable[["MetricsRegistry"], None]] = {}

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = cls(name, help, labels=labels, **kwargs)
                self._families[name] = family
            elif not isinstance(family, cls) or (
                tuple(labels) != family.label_names
            ):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind} with labels {family.label_names}"
                )
            return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Family]:
        with self._lock:
            return self._families.get(name)

    def register_collector(
        self, key: str, fn: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register (or replace) a scrape-time refresh hook.

        Keyed so a recreated owner (tests build many engines per
        process) replaces its predecessor instead of stacking stale
        closures.
        """
        with self._lock:
            self._collectors[key] = fn

    def unregister_collector(self, key: str) -> None:
        with self._lock:
            self._collectors.pop(key, None)

    def collect(self) -> None:
        """Run every collector; a broken one never fails the scrape."""
        with self._lock:
            collectors = list(self._collectors.values())
        for fn in collectors:
            try:
                fn(self)
            except Exception:
                pass  # telemetry is best-effort by construction

    def families(self) -> List[_Family]:
        with self._lock:
            return list(self._families.values())

    def render(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        return render_registries([self])

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly dump of every family (``repro obs --json``)."""
        self.collect()
        out: Dict[str, object] = {}
        for family in self.families():
            samples = {}
            for values, leaf in family._samples():
                key = ",".join(values) if values else ""
                if isinstance(leaf, Histogram):
                    samples[key] = {
                        "count": leaf._count,
                        "sum": leaf._sum,
                        "buckets": dict(
                            zip(
                                (_format_value(b) for b in (*leaf._buckets, _INF)),
                                leaf._counts,
                            )
                        ),
                    }
                else:
                    samples[key] = leaf._value
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "samples": samples,
            }
        return out


def render_registries(registries: Iterable[MetricsRegistry]) -> str:
    """Merge several registries into one exposition document."""
    lines: List[str] = []
    seen = set()
    for registry in registries:
        registry.collect()
        for family in registry.families():
            if family.name in seen:
                continue  # first registration wins; names are disjoint
            seen.add(family.name)
            lines.extend(family.render())
    return "\n".join(lines) + "\n"


#: Process-global registry: pipeline-stage timings and obs internals.
REGISTRY = MetricsRegistry()
