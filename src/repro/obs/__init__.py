"""Unified telemetry plane: metrics registry, spans, structured logs.

Three cooperating layers, stdlib-only and always-on but cheap:

- :mod:`repro.obs.metrics` — process-wide registry of counters,
  gauges and fixed-bucket histograms with Prometheus text rendering;
  existing counter structs stay authoritative and are projected in via
  scrape-time collectors.
- :mod:`repro.obs.tracing` — ``span("stage")`` context manager feeding
  the ``repro_stage_seconds`` histogram and, per served request, a
  trace retrievable from ``/v1/debug/trace/<id>``.
- :mod:`repro.obs.logging` — structured event logging (human or JSON),
  stamped with the active request id.

``REPRO_OBS=off`` disables span recording; the bench's obs-overhead
gate holds the instrumented/disabled suite-throughput delta at <=5%.
"""

from repro.obs.logging import StructLogger, configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    render_registries,
)
from repro.obs.tracing import (
    TRACE_RING,
    Trace,
    TraceRing,
    activate,
    current_request_id,
    current_trace,
    deactivate,
    dropped_emits,
    enabled,
    new_request_id,
    new_trace,
    set_enabled,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "render_registries",
    "StructLogger",
    "configure_logging",
    "get_logger",
    "Trace",
    "TraceRing",
    "TRACE_RING",
    "span",
    "new_trace",
    "new_request_id",
    "activate",
    "deactivate",
    "current_trace",
    "current_request_id",
    "enabled",
    "set_enabled",
    "dropped_emits",
]
