"""Test-support instrumentation shipped with the production tree.

:mod:`repro.testing.faults` is the chaos harness: named fault points
compiled into the store and the serving plane, armed by tests (or an
operator drill) to prove that every failure mode — store I/O errors,
bit-flipped payloads, slow engine calls, connection resets, crashes
mid-write — degrades to a typed, counted, recoverable state.
"""

from repro.testing.faults import FAULTS, FaultInjector, SimulatedCrash, inject

__all__ = ["FAULTS", "FaultInjector", "SimulatedCrash", "inject"]
