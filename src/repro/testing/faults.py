"""Chaos fault-injection points for the store and the serving plane.

Production code declares *fault points* by calling
:meth:`FaultInjector.fire` at the few places where the outside world
can hurt it — store reads and writes, the window between a temp-file
write and its atomic rename, the engine's compute path, the server's
response path.  When nothing is armed (the normal case, including all
of production) ``fire`` is a single dict lookup on an empty dict — it
costs nothing and changes nothing.

Tests (and operator chaos drills) arm a point with :func:`inject`::

    with inject("store.read", error=OSError("disk on fire")):
        ...                       # every store read now raises

    with inject("store.read", mutate=flip_bits, times=1):
        ...                       # the next read sees corrupted bytes

    with inject("engine.compute", delay_s=0.2):
        ...                       # every engine call takes >= 200 ms

A fault can *raise* (``error``: an exception instance or zero-arg
factory), *delay* (``delay_s``), and/or *mutate a payload* (``mutate``:
``bytes -> bytes`` — bit flips, truncation).  ``times`` bounds how
often it fires; armed points nest and are strictly LIFO per point.
Everything is thread-safe: fault points fire from engine worker
threads and the asyncio loop alike.

:class:`SimulatedCrash` deserves a note: it models the process dying
mid-operation, so code that catches exceptions to run *cleanup that a
real crash would also skip* (e.g. unlinking a half-written temp file)
must re-raise it without cleaning up.  ``Store._write`` does exactly
that, which is what lets the crash-safety tests assert that recovery
— not cleanup — handles the orphan.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union


class SimulatedCrash(BaseException):
    """The process 'dies' here: cleanup handlers must not run.

    Deliberately a ``BaseException`` so that production ``except
    Exception`` / ``except OSError`` recovery paths do not swallow it
    — only the chaos tests that injected it catch it.
    """


@dataclass
class Fault:
    """One armed behaviour at one fault point."""

    point: str
    error: Optional[Union[BaseException, Callable[[], BaseException]]] = None
    delay_s: float = 0.0
    mutate: Optional[Callable[[Any], Any]] = None
    #: Remaining firings; ``None`` = unlimited while armed.
    times: Optional[int] = None
    fired: int = field(default=0)

    def _take(self) -> bool:
        """Consume one firing budget slot; False when exhausted."""
        if self.times is not None:
            if self.times <= 0:
                return False
            self.times -= 1
        self.fired += 1
        return True


class FaultInjector:
    """Thread-safe registry of armed fault points."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: point -> LIFO stack of armed faults (last armed wins).
        self._armed: Dict[str, List[Fault]] = {}
        #: point -> total firings (survives disarm; test observability).
        self.fired: Dict[str, int] = {}

    def arm(self, fault: Fault) -> None:
        with self._lock:
            self._armed.setdefault(fault.point, []).append(fault)

    def disarm(self, fault: Fault) -> None:
        with self._lock:
            stack = self._armed.get(fault.point)
            if stack is not None:
                try:
                    stack.remove(fault)
                except ValueError:
                    pass
                if not stack:
                    del self._armed[fault.point]

    def active(self, point: str) -> bool:
        with self._lock:
            return point in self._armed

    def fire(self, point: str, payload: Any = None) -> Any:
        """Hit ``point``; returns ``payload`` (possibly mutated).

        The armed fault may sleep, transform the payload and/or raise.
        With nothing armed this is a no-op returning ``payload``
        unchanged — the production fast path.
        """
        if not self._armed:  # benign race: worst case is one lock hop
            return payload
        with self._lock:
            stack = self._armed.get(point)
            if not stack:
                return payload
            fault = stack[-1]
            if not fault._take():
                return payload
            self.fired[point] = self.fired.get(point, 0) + 1
        if fault.delay_s > 0.0:
            time.sleep(fault.delay_s)
        if fault.mutate is not None:
            payload = fault.mutate(payload)
        if fault.error is not None:
            exc = fault.error() if callable(fault.error) else fault.error
            raise exc
        return payload

    def reset(self) -> None:
        """Disarm everything and zero the counters (test teardown)."""
        with self._lock:
            self._armed.clear()
            self.fired.clear()


#: The process-wide injector every production fault point fires into.
FAULTS = FaultInjector()


@contextmanager
def inject(
    point: str,
    error: Optional[
        Union[BaseException, Callable[[], BaseException]]
    ] = None,
    delay_s: float = 0.0,
    mutate: Optional[Callable[[Any], Any]] = None,
    times: Optional[int] = None,
):
    """Arm one fault at ``point`` for the duration of the block.

    Yields the :class:`Fault` so the test can assert ``fault.fired``.
    """
    fault = Fault(
        point=point, error=error, delay_s=delay_s, mutate=mutate,
        times=times,
    )
    FAULTS.arm(fault)
    try:
        yield fault
    finally:
        FAULTS.disarm(fault)


def flip_bit(payload: bytes, offset: int = 0, bit: int = 0) -> bytes:
    """Flip one bit of a bytes payload — the canonical corruption."""
    if not payload:
        return payload
    data = bytearray(payload)
    data[offset % len(data)] ^= 1 << (bit & 7)
    return bytes(data)


#: Fault points compiled into the production tree.  Keeping the
#: catalogue here (and testing against it) stops point names drifting.
POINTS = (
    "store.read",        # raises / mutates bytes read from the store
    "store.write",       # raises / mutates bytes about to be written
    "store.crash",       # SimulatedCrash between tmp write and rename
    "engine.compute",    # delays / raises inside an engine request
    "server.respond",    # raises while writing an HTTP response
    "obs.emit",          # raises inside telemetry emission (best-effort:
                         # a broken sink must never fail a request)
    "queue.claim",       # delays / raises before a lease-file O_EXCL
                         # create (duplicate-claim race widener)
    "queue.lease",       # delays / raises in the stale-lease takeover
                         # path, between expiry check and steal-rename
    "queue.heartbeat",   # raises inside lease heartbeat renewal — a
                         # failed renewal must abandon the job, never
                         # publish over a new owner
)

__all__ = [
    "FAULTS",
    "Fault",
    "FaultInjector",
    "POINTS",
    "SimulatedCrash",
    "flip_bit",
    "inject",
]
