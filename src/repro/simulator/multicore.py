"""Event-driven multicore simulation.

Threads map to cores round-robin (thread count above the core count is
tolerated for workloads whose extra threads do negligible concurrent
work, mirroring the paper's Parsec setup).  Thread segments are
simulated chunk-by-chunk through the per-core scoreboards in
event-time order; the shared DES scheduler supplies runtime
synchronization semantics, so the simulator and RPPM's Algorithm 2
cannot diverge on sync *rules*, only on *timings* — as in the paper,
where both Sniper and RPPM honour pthread semantics.
"""

from __future__ import annotations

import warnings
from typing import List, Union

from repro.arch.config import MulticoreConfig
from repro.branch.predictors import TournamentPredictor
from repro.core.cpi_stack import CPIStack
from repro.obs import span
from repro.runtime.chunking import chunk_trace
from repro.runtime.scheduler import run_schedule
from repro.simulator.caches import MemorySystem
from repro.simulator.core import CoreSim
from repro.simulator.results import SimulationResult, ThreadResult
from repro.workloads.engine import expand
from repro.workloads.ir import WorkloadTrace
from repro.workloads.spec import WorkloadSpec


class MulticoreSimulator:
    """Reusable simulator for one multicore configuration."""

    def __init__(self, config: MulticoreConfig):
        self.config = config

    def run(
        self,
        workload: Union[WorkloadSpec, WorkloadTrace],
        chunk: int = 4096,
        session=None,
        *,
        trace_cache=None,
    ) -> SimulationResult:
        if trace_cache is not None:
            warnings.warn(
                "run(trace_cache=...) is deprecated; pass "
                "session=Session(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return self._run(workload, chunk, session, trace_cache)

    def _run(
        self,
        workload: Union[WorkloadSpec, WorkloadTrace],
        chunk: int,
        session,
        trace_cache,
    ) -> SimulationResult:
        if session is not None:
            if trace_cache is None:
                trace_cache = session.traces
            session.record("simulations")
        if isinstance(workload, WorkloadSpec):
            trace = (
                trace_cache.get(workload) if trace_cache is not None
                else expand(workload)
            )
        else:
            trace = workload
        ctrace = chunk_trace(trace, chunk)
        config = self.config
        n_threads = ctrace.n_threads
        memory = MemorySystem(config)
        # One predictor per thread: threads keep private branch history
        # even when round-robin-mapped onto the same core.
        cores = [
            CoreSim(
                config.core,
                memory,
                tid % config.cores,
                TournamentPredictor(config.branch_predictor),
            )
            for tid in range(n_threads)
        ]

        stacks = [CPIStack() for _ in range(n_threads)]
        branch_misses = [0] * n_threads
        fetch_misses = [0] * n_threads
        long_loads = [0] * n_threads

        def execute(tid: int, idx: int, start: float) -> float:
            block = ctrace.threads[tid].segments[idx].block
            if block.n_instructions == 0:
                return 0.0
            costs = cores[tid].run_block(block)
            stacks[tid].add(
                CPIStack(
                    base=costs.base,
                    branch=costs.branch,
                    icache=costs.icache,
                    mem=costs.mem,
                    instructions=block.n_instructions,
                )
            )
            branch_misses[tid] += costs.branch_misses
            fetch_misses[tid] += costs.fetch_misses
            long_loads[tid] += costs.long_loads
            return costs.cycles

        programs = [
            [seg.event for seg in t.segments] for t in ctrace.threads
        ]
        schedule = run_schedule(programs, execute)

        threads: List[ThreadResult] = []
        for tid in range(n_threads):
            stack = stacks[tid]
            stack.sync = schedule.idle[tid]
            threads.append(
                ThreadResult(
                    thread_id=tid,
                    instructions=stack.instructions,
                    active_cycles=schedule.active[tid],
                    idle_cycles=schedule.idle[tid],
                    stack=stack,
                    branch_misses=branch_misses[tid],
                    fetch_misses=fetch_misses[tid],
                    long_loads=long_loads[tid],
                )
            )
        return SimulationResult(
            workload=ctrace.name,
            config=config.name,
            total_cycles=schedule.end_time,
            threads=threads,
            timeline=schedule.timeline,
            invalidations=memory.invalidations,
        )


def simulate(
    workload: Union[WorkloadSpec, WorkloadTrace],
    config: MulticoreConfig,
    chunk: int = 4096,
    session=None,
    *,
    trace_cache=None,
) -> SimulationResult:
    """Simulate ``workload`` on ``config`` (convenience wrapper).

    A spec ``workload`` expands through ``session``'s trace cache when
    a :class:`~repro.core.session.Session` is given — so simulating
    after profiling the same spec reuses one expansion — and through
    the shared columnar engine otherwise.

    .. deprecated::
        ``trace_cache=`` is a deprecated shim kept for one release;
        pass a ``session``.
    """
    if trace_cache is not None:
        warnings.warn(
            "simulate(trace_cache=...) is deprecated; pass "
            "session=Session(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    with span("simulate", workload=workload.name, config=config.name):
        return MulticoreSimulator(config)._run(
            workload, chunk, session, trace_cache
        )
