"""Cycle-accounting multicore reference simulator (the Sniper substitute).

Executes concrete workload traces through real mechanisms: a dispatch/
ROB scoreboard over the actual dependence arrays, a stateful tournament
branch predictor over the actual outcome stream, set-associative LRU
caches (private L1-I/L1-D/L2, shared LLC) with invalidation-based
coherence, and the shared DES scheduler for runtime synchronization.

Its timings are the "golden reference" every RPPM prediction is scored
against, playing the role Sniper plays in the paper.
"""

from repro.simulator.caches import Cache, MemorySystem
from repro.simulator.core import CoreSim
from repro.simulator.multicore import MulticoreSimulator, simulate
from repro.simulator.results import SimulationResult, ThreadResult

__all__ = [
    "Cache",
    "MemorySystem",
    "CoreSim",
    "MulticoreSimulator",
    "simulate",
    "SimulationResult",
    "ThreadResult",
]
