"""Simulation result data model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.cpi_stack import CPIStack
from repro.runtime.timeline import Timeline


@dataclass
class ThreadResult:
    """Per-thread outcome of a simulation (or a prediction)."""

    thread_id: int
    instructions: int
    active_cycles: float
    idle_cycles: float
    stack: CPIStack
    branch_misses: int = 0
    fetch_misses: int = 0
    long_loads: int = 0

    @property
    def total_cycles(self) -> float:
        return self.active_cycles + self.idle_cycles


@dataclass
class SimulationResult:
    """Outcome of simulating one workload on one configuration."""

    workload: str
    config: str
    total_cycles: float
    threads: List[ThreadResult]
    timeline: Timeline
    invalidations: int = 0

    @property
    def n_instructions(self) -> int:
        return sum(t.instructions for t in self.threads)

    @property
    def total_seconds(self) -> float:
        """Placeholder: callers convert with their MulticoreConfig."""
        raise NotImplementedError(
            "use MulticoreConfig.cycles_to_seconds(result.total_cycles)"
        )

    def average_stack(self) -> CPIStack:
        """Average per-thread CPI stack (the paper's Fig. 5 metric)."""
        return CPIStack.merged(t.stack for t in self.threads)
