"""Cycle-accounting out-of-order core model.

Per trace block, a scoreboard computes dispatch, issue and completion
times per micro-op:

* dispatch is bounded by pipeline width, front-end readiness (branch
  redirects, instruction-cache misses) and ROB occupancy (an op cannot
  dispatch until the op ``rob_size`` earlier has committed — in-order
  commit),
* issue waits for the producer recorded in the trace's dependence
  array,
* loads/stores get their latency from the coherent memory system;
  branches consult the stateful tournament predictor; a mispredict
  redirects the front-end ``frontend_depth`` cycles after the branch
  completes.

Cycle attribution (for the Figure 5 CPI stacks): front-end stalls are
charged to their cause (branch/icache) at the moment they bind dispatch;
ROB-full stalls are charged to memory when the blocking op is a
long-latency load; everything else is base.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.arch.config import CoreConfig
from repro.branch.predictors import TournamentPredictor
from repro.core.cpi_stack import CPIStack
from repro.simulator.caches import LEVEL_MEM, MemorySystem
from repro.workloads.ir import (
    OP_BRANCH,
    OP_LOAD,
    OP_STORE,
    TraceBlock,
    instruction_pcs,
)


@dataclass
class BlockCosts:
    """Timing outcome of one block on one core."""

    cycles: float
    base: float
    branch: float
    icache: float
    mem: float
    branch_misses: int
    fetch_misses: int
    long_loads: int


class CoreSim:
    """One core's execution engine (scoreboard + predictor state)."""

    def __init__(self, config: CoreConfig, memory: MemorySystem,
                 core_id: int, predictor: TournamentPredictor):
        self.config = config
        self.memory = memory
        self.core_id = core_id
        self.predictor = predictor
        self._op_lat = [
            config.op_latency[name]
            for name in ("ialu", "imul", "fp", "load", "store", "branch")
        ]

    def run_block(self, block: TraceBlock) -> BlockCosts:
        n = block.n_instructions
        if n == 0:
            return BlockCosts(0.0, 0.0, 0.0, 0.0, 0.0, 0, 0, 0)
        cfg = self.config
        memory = self.memory
        core_id = self.core_id
        inv_width = 1.0 / cfg.dispatch_width
        rob = cfg.rob_size
        depth = cfg.frontend_depth
        lat_l1i = memory.lat_l1i
        op_lat = self._op_lat

        ops = block.op.tolist()
        deps = block.dep.tolist()
        addrs = block.addr.tolist()
        ilines = block.iline.tolist()

        br_idx = block.branch_indices()
        if len(br_idx):
            pcs = instruction_pcs(block)[br_idx]
            miss_mask = self.predictor.run(pcs, block.taken[br_idx])
            branch_miss = dict(zip(br_idx.tolist(), miss_mask.tolist()))
        else:
            branch_miss = {}

        comp = [0.0] * n  # completion time per op
        commit_ring = [0.0] * rob  # commit time of op (i - rob)
        long_ring = [False] * rob  # was that op a long-latency load
        # MSHR occupancy: completion times of outstanding memory-level
        # misses, FIFO (miss latency is constant so completions are in
        # issue order).  A full MSHR file delays the next miss until the
        # oldest outstanding one returns.
        mshrs = deque()
        mshr_cap = cfg.mshr_entries
        commit_prev = 0.0
        d_prev = -inv_width
        fe_ready = 0.0
        fe_cause = 0  # 1 = branch redirect, 2 = icache miss
        cur_line = -1

        branch_cycles = 0.0
        icache_cycles = 0.0
        mem_cycles = 0.0
        branch_misses = 0
        fetch_misses = 0
        long_loads = 0

        for i in range(n):
            # Front-end: instruction-cache behaviour on line change.
            line = ilines[i]
            if line != cur_line:
                cur_line = line
                flat = memory.fetch(core_id, line)
                if flat > lat_l1i:
                    fetch_misses += 1
                    stall_until = d_prev + inv_width + (flat - lat_l1i)
                    if stall_until > fe_ready:
                        fe_ready = stall_until
                        fe_cause = 2

            flow = d_prev + inv_width
            t_d = flow
            if fe_ready > t_d:
                if fe_cause == 1:
                    branch_cycles += fe_ready - t_d
                else:
                    icache_cycles += fe_ready - t_d
                t_d = fe_ready
            if i >= rob:
                slot = i % rob
                rc = commit_ring[slot]
                if rc > t_d:
                    if long_ring[slot]:
                        mem_cycles += rc - t_d
                    t_d = rc

            op = ops[i]
            d = deps[i]
            ready = comp[i - d] if 0 < d <= i else 0.0
            start = t_d if t_d > ready else ready

            is_long = False
            if op == OP_LOAD:
                lat, level = memory.load(core_id, addrs[i])
                if level == LEVEL_MEM:
                    is_long = True
                    long_loads += 1
                    while mshrs and mshrs[0] <= start:
                        mshrs.popleft()
                    if len(mshrs) >= mshr_cap:
                        start = mshrs.popleft()
                    mshrs.append(start + lat)
            elif op == OP_STORE:
                memory.store(core_id, addrs[i])
                lat = op_lat[OP_STORE]
            else:
                lat = op_lat[op]
            c = start + lat
            comp[i] = c

            if op == OP_BRANCH and branch_miss.get(i, False):
                branch_misses += 1
                redirect = c + depth
                if redirect > fe_ready:
                    fe_ready = redirect
                    fe_cause = 1

            cm = commit_prev if commit_prev > c else c
            commit_prev = cm
            slot = i % rob
            commit_ring[slot] = cm
            long_ring[slot] = is_long
            d_prev = t_d

        cycles = commit_prev
        base = cycles - branch_cycles - icache_cycles - mem_cycles
        if base < 0.0:
            base = 0.0
        return BlockCosts(
            cycles=cycles,
            base=base,
            branch=branch_cycles,
            icache=icache_cycles,
            mem=mem_cycles,
            branch_misses=branch_misses,
            fetch_misses=fetch_misses,
            long_loads=long_loads,
        )


def costs_to_stack(costs: BlockCosts, n_instructions: int) -> CPIStack:
    """Convert block costs into a CPI-stack contribution."""
    return CPIStack(
        base=costs.base,
        branch=costs.branch,
        icache=costs.icache,
        mem=costs.mem,
        sync=0.0,
        instructions=n_instructions,
    )
