"""Set-associative LRU caches and the coherent memory system.

Unlike StatStack's statistical fully-associative model, these caches
have real sets, tags and LRU state — the structural difference between
the analytical model and its golden reference.  Coherence is
invalidation-based: a store removes the line from every other core's
private hierarchy, so a subsequent access there misses (the effect the
profiler records as an infinite reuse distance).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.arch.config import CacheConfig, MulticoreConfig

#: Access outcome levels returned by :meth:`MemorySystem.load`.
LEVEL_L1 = 0
LEVEL_L2 = 1
LEVEL_LLC = 2
LEVEL_MEM = 3


class Cache:
    """One cache level: per-set tag -> LRU-counter dictionaries."""

    __slots__ = ("name", "config", "sets", "set_mask", "assoc", "counter",
                 "hits", "misses")

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.name = name
        self.config = config
        n_sets = config.sets
        if n_sets & (n_sets - 1):
            raise ValueError("set count must be a power of two")
        self.sets: List[Dict[int, int]] = [dict() for _ in range(n_sets)]
        self.set_mask = n_sets - 1
        self.assoc = config.associativity
        self.counter = 0
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        """Look up ``line``; allocate on miss; returns hit."""
        self.counter += 1
        s = self.sets[line & self.set_mask]
        if line in s:
            s[line] = self.counter
            self.hits += 1
            return True
        if len(s) >= self.assoc:
            victim = min(s, key=s.get)
            del s[victim]
        s[line] = self.counter
        self.misses += 1
        return False

    def contains(self, line: int) -> bool:
        return line in self.sets[line & self.set_mask]

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if present; returns whether it was present."""
        s = self.sets[line & self.set_mask]
        if line in s:
            del s[line]
            return True
        return False

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0


class MemorySystem:
    """Private hierarchies + shared LLC + invalidation coherence."""

    def __init__(self, config: MulticoreConfig):
        self.config = config
        n = config.cores
        self.l1i = [Cache(config.l1i, f"l1i{c}") for c in range(n)]
        self.l1d = [Cache(config.l1d, f"l1d{c}") for c in range(n)]
        self.l2 = [Cache(config.l2, f"l2{c}") for c in range(n)]
        self.llc = Cache(config.llc, "llc")
        #: line -> cores that may hold the line in a private cache.
        self.owners: Dict[int, Set[int]] = {}
        self.mem_latency = config.memory_latency_cycles()
        self.lat_l1d = config.l1d.latency
        self.lat_l1i = config.l1i.latency
        self.lat_l2 = config.l2.latency
        self.lat_llc = config.llc.latency
        self.invalidations = 0

    def load(self, core: int, line: int) -> Tuple[int, int]:
        """Data load by ``core``; returns (latency_cycles, level)."""
        if self.l1d[core].access(line):
            return self.lat_l1d, LEVEL_L1
        if self.l2[core].access(line):
            self._note_owner(core, line)
            return self.lat_l2, LEVEL_L2
        self._note_owner(core, line)
        if self.llc.access(line):
            return self.lat_llc, LEVEL_LLC
        return self.lat_llc + self.mem_latency, LEVEL_MEM

    def store(self, core: int, line: int) -> Tuple[int, int]:
        """Data store by ``core``: write-allocate + invalidate sharers."""
        owners = self.owners.get(line)
        if owners:
            for other in owners:
                if other != core:
                    inv = self.l1d[other].invalidate(line)
                    inv |= self.l2[other].invalidate(line)
                    if inv:
                        self.invalidations += 1
            owners.clear()
        if self.l1d[core].access(line):
            self._note_owner(core, line)
            return self.lat_l1d, LEVEL_L1
        if self.l2[core].access(line):
            self._note_owner(core, line)
            return self.lat_l2, LEVEL_L2
        self._note_owner(core, line)
        if self.llc.access(line):
            return self.lat_llc, LEVEL_LLC
        return self.lat_llc + self.mem_latency, LEVEL_MEM

    def fetch(self, core: int, line: int) -> int:
        """Instruction fetch by ``core``; returns latency."""
        if self.l1i[core].access(line):
            return self.lat_l1i
        if self.l2[core].access(line):
            return self.lat_l2
        if self.llc.access(line):
            return self.lat_llc
        return self.lat_llc + self.mem_latency

    def _note_owner(self, core: int, line: int) -> None:
        owners = self.owners.get(line)
        if owners is None:
            self.owners[line] = {core}
        else:
            owners.add(core)
