"""Multithreaded StatStack application (Ahlman [1], paper §III-A).

RPPM uses two distributions per thread: the *private* one (per-thread
counters, invalidations included) drives the private L1-D and L2 miss
rates; the *global* one (interleaved counter across all threads) drives
the shared LLC miss rate, capturing constructive sharing (a line
brought in by a sibling) and destructive competition (a line evicted by
a sibling) in one statistic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import MulticoreConfig
from repro.profiler.profile import DataLocalityStats, EpochProfile
from repro.statstack.statstack import miss_rate


@dataclass(frozen=True)
class HierarchyMissRates:
    """Per-access miss probabilities through the data hierarchy.

    All rates are per *memory access* (load or store) issued by the
    thread, not per instruction.  ``coherence_l1`` is the share of
    accesses whose private-cache reuse was broken by a remote write —
    these are guaranteed private misses at any capacity.
    """

    l1d: float
    l2: float
    llc: float
    coherence_l1: float

    def __post_init__(self) -> None:
        for name in ("l1d", "l2", "llc", "coherence_l1"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} miss rate out of range: {v}")


def hierarchy_miss_rates(
    data: DataLocalityStats, config: MulticoreConfig
) -> HierarchyMissRates:
    """Predict the data-side miss rates of ``config`` for one pool."""
    if data.n_accesses == 0:
        return HierarchyMissRates(0.0, 0.0, 0.0, 0.0)
    m_l1 = miss_rate(data.private, config.l1d.lines)
    m_l2 = miss_rate(data.private, config.l2.lines)
    m_llc = miss_rate(data.shared, config.llc.lines)
    total = data.private.n_total
    coh = data.private.inval / total if total else 0.0
    # The hierarchy filters top-down: deeper levels cannot miss more
    # often (per original access) than shallower ones.  The private and
    # global distributions are estimated independently, so clamp.
    m_l2 = min(m_l2, m_l1)
    m_llc = min(m_llc, m_l2)
    return HierarchyMissRates(
        l1d=m_l1, l2=m_l2, llc=m_llc, coherence_l1=min(coh, m_l1)
    )


def instruction_miss_rates(
    profile: EpochProfile, config: MulticoreConfig
) -> tuple:
    """(L1-I, L2, LLC) instruction miss probabilities per *fetch*.

    Instruction reuse is private (code is read-only and replicated);
    deeper levels use the same per-thread fetch distribution against the
    larger capacities.
    """
    if profile.n_fetches == 0:
        return (0.0, 0.0, 0.0)
    m_l1i = miss_rate(profile.ifetch, config.l1i.lines)
    m_l2 = min(miss_rate(profile.ifetch, config.l2.lines), m_l1i)
    m_llc = min(miss_rate(profile.ifetch, config.llc.lines), m_l2)
    return (m_l1i, m_l2, m_llc)
