"""StatStack: statistical LRU cache modeling from reuse distances.

Implements Eklov & Hagersten's StatStack (reuse-distance to
stack-distance conversion, fully-associative LRU miss-rate estimation)
and the multithreaded usage of Ahlman's extension as applied by RPPM:
per-thread distributions predict private-cache miss rates (with
coherence invalidations as guaranteed misses), global interleaved
distributions predict shared-LLC miss rates.
"""

from repro.statstack.statstack import (
    expected_stack_distances,
    miss_rate,
    miss_ratio_curve,
)
from repro.statstack.multithread import (
    HierarchyMissRates,
    hierarchy_miss_rates,
    instruction_miss_rates,
)

__all__ = [
    "expected_stack_distances",
    "miss_rate",
    "miss_ratio_curve",
    "HierarchyMissRates",
    "hierarchy_miss_rates",
    "instruction_miss_rates",
]
