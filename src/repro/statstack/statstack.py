"""Core StatStack math (Eklov & Hagersten, ISPASS 2010).

StatStack estimates the *stack distance* (number of unique lines
between a reuse pair) from the much cheaper *reuse distance* (number of
accesses between the pair): each of the ``r`` intervening accesses of a
reuse with distance ``r`` contributes a unique line iff its own forward
reuse carries past the window end.  For an access ``k`` positions
before the window end that probability is ``P(RD > k)``, hence

    E[SD(r)] = sum_{k=1..r} P(RD > k)

The miss rate of a fully-associative LRU cache with ``S`` lines is then
the probability mass of reuses whose expected stack distance reaches
``S``, plus compulsory (cold) and coherence (invalidated) misses.

Forward and backward reuse-distance distributions coincide up to edge
effects (every finite backward reuse is a finite forward reuse of its
earlier partner), so the profiler's backward histograms are used
directly; cold/invalidated accesses play the role of never-reused
(infinite forward distance) accesses in the ccdf.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Tuple

import numpy as np

from repro.profiler.histogram import RDHistogram

#: Entries kept in the stack-distance curve memo.  A design-space sweep
#: touches each distinct histogram a handful of times per config times
#: five configs; a few hundred curves cover every realistic run.
_SD_CACHE_MAX = 512

_sd_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
_sd_lock = threading.Lock()
_sd_hits = 0
_sd_misses = 0


def sd_cache_stats() -> dict:
    """Hit/miss counters of the stack-distance memo (for tests/metrics)."""
    with _sd_lock:
        return {
            "hits": _sd_hits, "misses": _sd_misses, "size": len(_sd_cache),
        }


def sd_cache_clear() -> None:
    global _sd_hits, _sd_misses
    with _sd_lock:
        _sd_cache.clear()
        _sd_hits = 0
        _sd_misses = 0


def expected_stack_distances(
    hist: RDHistogram,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expected stack distance at each populated reuse-distance bin.

    Returns ``(rds, counts, sds)`` where ``sds[j] = E[SD(rds[j])]``.
    Arrays are sorted by reuse distance; ``sds`` is non-decreasing.

    The curve depends only on the histogram *content*, and different
    pools (and different hierarchy levels of the same pool) frequently
    share identical histograms, so results are memoized under a content
    key — callers receive shared arrays and must treat them as
    read-only.
    """
    global _sd_hits, _sd_misses
    key = (hist.counts.tobytes(), hist.cold, hist.inval)
    with _sd_lock:
        cached = _sd_cache.get(key)
        if cached is not None:
            _sd_hits += 1
            _sd_cache.move_to_end(key)
            return cached
        _sd_misses += 1
    result = _compute_stack_distances(hist)
    with _sd_lock:
        _sd_cache[key] = result
        if len(_sd_cache) > _SD_CACHE_MAX:
            _sd_cache.popitem(last=False)
    return result


def _compute_stack_distances(
    hist: RDHistogram,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    rds, counts = hist.nonzero()
    if len(rds) == 0:
        return rds, counts, np.zeros(0)
    n_inf = float(hist.cold + hist.inval)
    total = counts.sum() + n_inf
    # ccdf_j = P(RD >= rds[j]) for k in the gap (rds[j-1], rds[j]]: the
    # bin's own mass is included because an intervening access with the
    # same binned distance carries past almost the whole gap.  (The
    # alternative half-count smoothing collapses for single-bin
    # streaming distributions, underestimating the stack distance right
    # at the capacity cliff.)
    tail = np.concatenate([np.cumsum(counts[::-1])[::-1][1:], [0.0]])
    ccdf = (n_inf + tail + counts) / total
    gaps = np.diff(np.concatenate([[0.0], rds]))
    sds = np.cumsum(ccdf * gaps)
    return rds, counts, sds


def miss_rate(
    hist: RDHistogram,
    cache_lines: int,
    include_cold: bool = True,
    include_inval: bool = True,
) -> float:
    """Per-access miss probability of a ``cache_lines``-line LRU cache.

    A reuse with expected stack distance >= capacity misses; the
    crossing bin is included fractionally (linear interpolation).  Cold
    accesses and coherence-invalidated reuses always miss; the flags let
    callers split the components for CPI-stack attribution.
    """
    if cache_lines <= 0:
        raise ValueError("cache capacity must be positive")
    total = hist.n_total
    if total == 0:
        return 0.0
    rds, counts, sds = expected_stack_distances(hist)
    finite_misses = 0.0
    if len(rds):
        j = int(np.searchsorted(sds, cache_lines, side="left"))
        if j < len(rds):
            finite_misses = counts[j:].sum()
            # Fractional inclusion of the crossing bin: its mass is
            # spread over the bin's own (quarter-octave) width, with
            # the local SD-per-RD slope; mass whose stack distance
            # falls below the capacity still hits.
            prev_rd = rds[j - 1] if j > 0 else 0.0
            prev_sd = sds[j - 1] if j > 0 else 0.0
            gap = max(rds[j] - prev_rd, 1e-9)
            slope = (sds[j] - prev_sd) / gap
            width = min(gap, 0.19 * rds[j] + 1.0)
            lo_sd = sds[j] - slope * width
            if cache_lines > lo_sd and sds[j] > lo_sd:
                covered = (cache_lines - lo_sd) / (sds[j] - lo_sd)
                finite_misses -= counts[j] * min(max(covered, 0.0), 1.0)
    misses = finite_misses
    if include_cold:
        misses += hist.cold
    if include_inval:
        misses += hist.inval
    return float(min(max(misses / total, 0.0), 1.0))


def miss_ratio_curve(
    hist: RDHistogram, capacities: np.ndarray
) -> np.ndarray:
    """Miss rate at each capacity (lines); the classic MRC.

    The stack-distance curve is computed *once* and evaluated at every
    capacity with one ``np.searchsorted`` plus vectorized fractional
    interpolation, instead of re-deriving
    :func:`expected_stack_distances` per capacity.  Bit-identical to
    calling :func:`miss_rate` per capacity for the integer-valued
    histograms the profiler emits (suffix sums replace per-capacity
    slice sums, which for fractional counts may differ in the last
    ulp).
    """
    caps = np.asarray(capacities)
    # Match miss_rate's ``int(c)`` truncation semantics.
    caps = caps.astype(np.int64).astype(np.float64)
    if (caps <= 0).any():
        raise ValueError("cache capacity must be positive")
    total = hist.n_total
    if total == 0:
        return np.zeros(len(caps))
    rds, counts, sds = expected_stack_distances(hist)
    finite_misses = np.zeros(len(caps))
    if len(rds):
        j = np.searchsorted(sds, caps, side="left")
        crossing = j < len(rds)
        jj = j[crossing]
        # Suffix sums give counts[j:].sum() for every capacity at once.
        suffix = np.concatenate(
            [np.cumsum(counts[::-1])[::-1], [0.0]]
        )
        misses = suffix[j]
        # Fractional inclusion of the crossing bin, exactly as in
        # miss_rate: the bin's mass is spread over its quarter-octave
        # width with the local SD-per-RD slope.
        safe = np.maximum(jj - 1, 0)
        prev_rd = np.where(jj > 0, rds[safe], 0.0)
        prev_sd = np.where(jj > 0, sds[safe], 0.0)
        gap = np.maximum(rds[jj] - prev_rd, 1e-9)
        slope = (sds[jj] - prev_sd) / gap
        width = np.minimum(gap, 0.19 * rds[jj] + 1.0)
        lo_sd = sds[jj] - slope * width
        span = sds[jj] - lo_sd
        covered = np.zeros(len(jj))
        ok = (caps[crossing] > lo_sd) & (span > 0)
        covered[ok] = np.clip(
            (caps[crossing][ok] - lo_sd[ok]) / span[ok], 0.0, 1.0
        )
        misses[crossing] -= counts[jj] * covered
        finite_misses = misses
    misses = finite_misses + hist.cold + hist.inval
    return np.clip(misses / total, 0.0, 1.0)
