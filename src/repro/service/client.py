"""Thin synchronous client for the prediction service.

``http.client`` over one keep-alive connection — the dependency-free
counterpart of the server, used by the tests, the load generator and
any scripting against a running ``python -m repro serve``.

Failure semantics are *typed* (the client half of the overload
contract the server publishes):

* :class:`ServiceOverloaded` — HTTP 429 admission shed; carries the
  server's ``Retry-After`` hint.
* :class:`ServiceTimeout` — HTTP 503 (deadline expiry, draining) or a
  transport-level socket timeout.
* :class:`ServiceProtocolError` — the response body was not the JSON
  the protocol promises; carries the status code and a body snippet.
* :class:`ServiceError` — any other non-2xx response (400/404/500…).

Retries: overload and timeout responses (plus transport drops) are
retried up to ``retries`` times with jittered exponential backoff
that honors the server's ``Retry-After``.  4xx client errors are
never retried — repeating a malformed request cannot fix it.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Optional, Sequence
from urllib.parse import urlencode


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(
        self,
        status: Optional[int],
        payload: dict,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )
        self.status = status
        self.payload = payload
        #: Parsed ``Retry-After`` header (seconds), when present.
        self.retry_after = retry_after


class ServiceOverloaded(ServiceError):
    """429: admission control shed this request; back off and retry."""


class ServiceTimeout(ServiceError):
    """503 deadline expiry / draining, or a socket-level timeout."""


class ServiceProtocolError(ServiceError):
    """The response body violated the JSON protocol.

    ``payload['body']`` holds a snippet of the offending bytes so the
    failure is diagnosable from the exception alone.
    """


class ServiceRetryBudgetExceeded(ServiceError):
    """The retry loop ran out of *time* before it ran out of attempts.

    Raised when honoring server backoff hints would push the total
    retry time past ``max_elapsed_s`` — an adversarial (or badly
    misconfigured) server could otherwise extend a "2 retries" call
    indefinitely via large ``Retry-After`` values.  Chains the last
    underlying failure as ``__cause__``.
    """

    def __init__(
        self, elapsed_s: float, max_elapsed_s: float, attempts: int
    ) -> None:
        ServiceError.__init__(self, None, {
            "error": (
                f"retry budget exhausted after {attempts} attempt(s): "
                f"{elapsed_s:.2f}s elapsed of {max_elapsed_s:.2f}s "
                f"allowed"
            ),
        })
        self.elapsed_s = elapsed_s
        self.max_elapsed_s = max_elapsed_s
        self.attempts = attempts


#: Statuses worth retrying: overload shed and deadline/drain refusals.
_RETRYABLE_STATUSES = (429, 503)


def _typed_error(
    status: int, payload: dict, retry_after: Optional[float]
) -> ServiceError:
    if status == 429:
        return ServiceOverloaded(status, payload, retry_after)
    if status == 503:
        return ServiceTimeout(status, payload, retry_after)
    return ServiceError(status, payload, retry_after)


class ServiceClient:
    """One keep-alive connection to a prediction service.

    ``retries``/``backoff_s``/``backoff_cap_s`` govern the retry loop
    for overloaded (429), unavailable (503) and transport-dropped
    requests; ``retries=0`` surfaces every failure immediately (the
    mode the overload benchmarks use to count sheds exactly).
    ``max_elapsed_s`` caps the *total* time the loop may spend,
    attempts included — the bound ``Retry-After`` hints cannot extend.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 60.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        max_elapsed_s: Optional[float] = 60.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.max_elapsed_s = max_elapsed_s
        self._rng = rng if rng is not None else random.Random()
        self._conn: Optional[http.client.HTTPConnection] = None
        #: Retry observability (the loadgen reports these).
        self.retried = 0
        self.backoff_slept_s = 0.0
        #: ``X-Worker-Id`` of the last response — which fleet worker
        #: served us.  ``None`` before any response (or against a
        #: pre-fleet server that does not send the header).
        self.last_worker_id: Optional[str] = None

    # -- plumbing -----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request_once(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
    ) -> dict:
        """One attempt: returns the decoded 2xx payload or raises a
        typed :class:`ServiceError` / transport exception."""
        payload = json.dumps(body).encode() if body is not None else None
        send_headers = dict(headers or {})
        if payload:
            send_headers.setdefault("Content-Type", "application/json")
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(
                    method, path, body=payload, headers=send_headers
                )
                response = conn.getresponse()
                data = response.read()
                break
            except socket.timeout:
                self.close()
                raise ServiceTimeout(
                    None,
                    {"error": f"no response within {self.timeout}s"},
                )
            except (
                http.client.HTTPException, ConnectionError, OSError
            ):
                # A stale keep-alive connection (server restarted,
                # idle timeout) gets one reconnect.
                self.close()
                if attempt:
                    raise
        retry_after = _parse_retry_after(
            response.getheader("Retry-After")
        )
        worker = response.getheader("X-Worker-Id")
        if worker is not None:
            self.last_worker_id = worker
        try:
            decoded = json.loads(data)
        except ValueError:
            raise ServiceProtocolError(
                response.status,
                {
                    "error": "response body is not valid JSON",
                    "body": data[:200].decode(errors="replace"),
                },
                retry_after,
            )
        if response.status >= 400:
            raise _typed_error(response.status, decoded, retry_after)
        return decoded

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[dict] = None,
        retries: Optional[int] = None,
    ) -> dict:
        """Request with jittered-exponential-backoff retries.

        Honors ``Retry-After``: when the server says how long to back
        off, that wins over the exponential schedule (plus jitter, so
        a shed stampede does not return as a synchronized stampede).
        ``max_elapsed_s`` bounds the whole loop: a retry whose delay
        would land past the budget raises
        :class:`ServiceRetryBudgetExceeded` instead of sleeping —
        honored hints must never extend total retry time unboundedly.
        """
        budget = self.retries if retries is None else max(0, retries)
        started = time.monotonic()
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body, headers)
            except ServiceError as exc:
                retryable = exc.status is None or (
                    exc.status in _RETRYABLE_STATUSES
                )
                if not retryable or attempt >= budget:
                    raise
                delay = self._backoff(attempt, exc.retry_after)
                cause: BaseException = exc
            except (
                http.client.HTTPException, ConnectionError, OSError
            ) as exc:
                if attempt >= budget:
                    raise
                delay = self._backoff(attempt, None)
                cause = exc
            if self.max_elapsed_s is not None:
                elapsed = time.monotonic() - started
                if elapsed + delay > self.max_elapsed_s:
                    raise ServiceRetryBudgetExceeded(
                        elapsed, self.max_elapsed_s, attempt + 1
                    ) from cause
            attempt += 1
            self.retried += 1
            self.backoff_slept_s += delay
            time.sleep(delay)

    def _backoff(
        self, attempt: int, retry_after: Optional[float]
    ) -> float:
        base = min(self.backoff_cap_s, self.backoff_s * (2 ** attempt))
        # Full jitter over the exponential window; a server-provided
        # Retry-After floors the delay (honor it, never undercut it).
        delay = base * (0.5 + self._rng.random() / 2.0)
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay

    @staticmethod
    def _query(**params) -> str:
        return urlencode(
            {k: v for k, v in params.items() if v not in (None, "", ())}
        )

    @staticmethod
    def _deadline_headers(
        deadline_ms: Optional[float],
    ) -> Optional[dict]:
        if deadline_ms is None:
            return None
        return {"X-Deadline-Ms": f"{deadline_ms:g}"}

    def _request_text(self, path: str) -> str:
        """GET a non-JSON (text) endpoint — ``/metrics``."""
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                data = response.read()
                break
            except socket.timeout:
                self.close()
                raise ServiceTimeout(
                    None,
                    {"error": f"no response within {self.timeout}s"},
                )
            except (
                http.client.HTTPException, ConnectionError, OSError
            ):
                self.close()
                if attempt:
                    raise
        if response.status >= 400:
            raise ServiceError(
                response.status,
                {"error": data[:200].decode(errors="replace")},
            )
        return data.decode("utf-8", errors="replace")

    # -- endpoints ----------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw Prometheus exposition document from ``/metrics``."""
        return self._request_text("/metrics")

    def debug_trace(self, trace_id: str) -> dict:
        """Span breakdown of a recent request by its ``X-Request-Id``."""
        return self._request("GET", f"/v1/debug/trace/{trace_id}")

    def profiles(self) -> dict:
        return self._request("GET", "/v1/profiles")

    def predict(
        self,
        benchmark: str,
        config: str = "base",
        cores: int = 4,
        scale: float = 1.0,
        deadline_ms: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> dict:
        query = self._query(
            benchmark=benchmark, config=config, cores=cores, scale=scale
        )
        return self._request(
            "GET", f"/v1/predict?{query}",
            headers=self._deadline_headers(deadline_ms),
            retries=retries,
        )

    def compare(
        self,
        benchmark: str,
        config: str = "base",
        cores: int = 4,
        scale: float = 1.0,
        deadline_ms: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> dict:
        query = self._query(
            benchmark=benchmark, config=config, cores=cores, scale=scale
        )
        return self._request(
            "GET", f"/v1/compare?{query}",
            headers=self._deadline_headers(deadline_ms),
            retries=retries,
        )

    def sweep(
        self,
        benchmark: str,
        configs: Sequence[str] = (),
        cores: int = 4,
        scale: float = 1.0,
        deadline_ms: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> dict:
        body = {
            "benchmark": benchmark,
            "cores": cores,
            "scale": scale,
        }
        if configs:
            body["configs"] = list(configs)
        return self._request(
            "POST", "/v1/sweep", body=body,
            headers=self._deadline_headers(deadline_ms),
            retries=retries,
        )


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if value is None:
        return None
    try:
        parsed = float(value)
    except ValueError:
        return None
    return parsed if parsed >= 0 else None


__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceProtocolError",
    "ServiceRetryBudgetExceeded",
    "ServiceTimeout",
]
