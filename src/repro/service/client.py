"""Thin synchronous client for the prediction service.

``http.client`` over one keep-alive connection — the dependency-free
counterpart of the server, used by the tests, the load generator and
any scripting against a running ``python -m repro serve``.
"""

from __future__ import annotations

import http.client
import json
from typing import Optional, Sequence
from urllib.parse import urlencode


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(
            f"HTTP {status}: {payload.get('error', payload)}"
        )
        self.status = status
        self.payload = payload


class ServiceClient:
    """One keep-alive connection to a prediction service."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing -----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str, body: dict = None) -> dict:
        payload = json.dumps(body).encode() if body is not None else None
        headers = (
            {"Content-Type": "application/json"} if payload else {}
        )
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (
                http.client.HTTPException, ConnectionError, OSError
            ):
                # A stale keep-alive connection (server restarted,
                # idle timeout) gets one reconnect.
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(data)
        except ValueError:
            raise ServiceError(
                response.status, {"error": data.decode(errors="replace")}
            )
        if response.status >= 400:
            raise ServiceError(response.status, decoded)
        return decoded

    @staticmethod
    def _query(**params) -> str:
        return urlencode(
            {k: v for k, v in params.items() if v not in (None, "", ())}
        )

    # -- endpoints ----------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def profiles(self) -> dict:
        return self._request("GET", "/v1/profiles")

    def predict(
        self,
        benchmark: str,
        config: str = "base",
        cores: int = 4,
        scale: float = 1.0,
    ) -> dict:
        query = self._query(
            benchmark=benchmark, config=config, cores=cores, scale=scale
        )
        return self._request("GET", f"/v1/predict?{query}")

    def compare(
        self,
        benchmark: str,
        config: str = "base",
        cores: int = 4,
        scale: float = 1.0,
    ) -> dict:
        query = self._query(
            benchmark=benchmark, config=config, cores=cores, scale=scale
        )
        return self._request("GET", f"/v1/compare?{query}")

    def sweep(
        self,
        benchmark: str,
        configs: Sequence[str] = (),
        cores: int = 4,
        scale: float = 1.0,
    ) -> dict:
        body = {
            "benchmark": benchmark,
            "cores": cores,
            "scale": scale,
        }
        if configs:
            body["configs"] = list(configs)
        return self._request("POST", "/v1/sweep", body=body)


__all__ = ["ServiceClient", "ServiceError"]
