"""The long-lived prediction engine behind the serving subsystem.

A CLI invocation pays import + profile + predict for every answer; the
:class:`PredictionEngine` instead keeps the paper's "one-time cost"
artifacts resident across requests:

* hot :class:`~repro.profiler.profile.WorkloadProfile` objects, in an
  in-process LRU keyed by the *store* profile key (label, seed, scale,
  chunk) — so the memory cache, the on-disk store and every worker
  process agree on identity;
* per-pool ILP tables via the content-addressed
  :class:`~repro.profiler.ilp_batch.ILPTableCache`;
* expanded traces via the content-addressed
  :class:`~repro.experiments.store.TraceCache` (engine-resident LRU
  over the store's ``"traces"`` kind), so a cold compare pays trace
  expansion once across profile and simulation and a repeat pays
  none;
* per-(profile, config) :class:`~repro.core.epoch_model.EpochCostCache`
  memos, so repeat predictions skip every Eq.-1 evaluation;
* finished response payloads, keyed by the full request tuple.

The engine is synchronous and thread-safe — transports (the asyncio
HTTP server, the CLI, tests) call it from whatever execution context
they own.  Payload helpers (:func:`prediction_payload`,
:func:`format_prediction`, …) are the single source of truth for the
service's JSON schema *and* the CLI's text output, which is what makes
``/v1/predict`` responses bit-identical to ``python -m repro predict``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.config import MulticoreConfig
from repro.arch.presets import TABLE_IV, table_iv_config
from repro.core.rppm import PredictionResult, predict
from repro.core.session import Session
from repro.experiments.store import ProfileStore
from repro.obs import span
from repro.obs.tracing import activate, deactivate
from repro.experiments.suites import BenchmarkRef, build_workload
from repro.profiler.profile import WorkloadProfile
from repro.profiler.profiler import profile_workload
from repro.service.batching import LRUCache
from repro.simulator.multicore import simulate
from repro.testing.faults import FAULTS
from repro.workloads.parsec import PARSEC
from repro.workloads.rodinia import RODINIA


def resolve_benchmark(name: str) -> BenchmarkRef:
    """Resolve ``suite.benchmark`` (or a bare benchmark name).

    Raises ``ValueError`` for unknown names — transports map this to
    404 / ``SystemExit`` as appropriate.
    """
    if "." in name:
        suite, bench = name.split(".", 1)
    elif name in RODINIA:
        suite, bench = "rodinia", name
    elif name in PARSEC:
        suite, bench = "parsec", name
    else:
        raise ValueError(
            f"unknown benchmark {name!r}; see `python -m repro list`"
        )
    if suite not in ("rodinia", "parsec"):
        raise ValueError(f"unknown suite {suite!r}")
    return BenchmarkRef(suite, bench)


def default_store() -> Optional[ProfileStore]:
    """The shared on-disk store, or ``None`` when its root is unusable.

    Mirrors :func:`repro.experiments.suites.shared_cache`: non-strict,
    so an unwritable root degrades the engine to memory-only caching.
    """
    try:
        store = ProfileStore.open_default()
        store.root.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    return store


@dataclass(frozen=True)
class ServiceRequest:
    """One transport-independent unit of serving work."""

    kind: str  # "predict" | "compare" | "sweep"
    benchmark: str
    config: str = "base"
    cores: int = 4
    scale: float = 1.0
    configs: Tuple[str, ...] = ()  # sweep only; () = all of Table IV
    #: Active obs trace, carried across the executor boundary (worker
    #: threads do not inherit contextvars).  Identity-irrelevant:
    #: excluded from equality/hash and from :meth:`key`.
    trace: Optional[object] = field(
        default=None, compare=False, repr=False
    )

    def key(self) -> tuple:
        """Coalescing/memo identity: every field that changes the answer."""
        return (
            self.kind, self.benchmark, self.config, self.cores,
            self.scale, self.configs,
        )


@dataclass
class EngineStats:
    """Monotonic counters surfaced by ``/healthz``."""

    requests: Dict[str, int] = field(default_factory=dict)
    computed: Dict[str, int] = field(default_factory=dict)
    errors: int = 0
    profiles_built: int = 0
    profiles_from_store: int = 0
    predictions_run: int = 0
    simulations_run: int = 0
    #: Times the engine dropped its LRUs because a newer store
    #: generation appeared (another fleet worker pruned or republished).
    invalidations: int = 0


class ServiceError(Exception):
    """An error with an HTTP-ish status, raised by engine entry points."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class PredictionEngine:
    """Resident profiles + caches serving predict/compare/sweep calls."""

    def __init__(
        self,
        store: Optional[ProfileStore] = None,
        chunk: int = 4096,
        max_profiles: int = 32,
        max_cost_caches: int = 128,
        max_results: int = 4096,
        max_trace_bytes: int = 256 << 20,
        session: Optional[Session] = None,
    ) -> None:
        #: The artifact cache plane: content-addressed traces, ILP
        #: tables, branch statistics, segment precompute and resident
        #: Eq.-1 memos.  A cold ``/v1/compare`` pays trace expansion
        #: once for profile + simulation; repeats pay zero.
        if session is None:
            session = Session(
                store=store,
                max_cost_caches=max_cost_caches,
                max_trace_bytes=max_trace_bytes,
            )
        elif store is not None and session.store is not store:
            raise ValueError("pass either a store or a session, not both")
        self.session = session
        self.store = session.store
        self.chunk = chunk
        #: profile store key -> (label, WorkloadProfile)
        self._profiles = LRUCache(max_profiles)
        #: request key -> finished payload (treated as immutable)
        self.results = LRUCache(max_results)
        #: (label, scale) -> workload seed (pure function; bounded like
        #: every other engine cache — the key is client-controlled)
        self._seeds = LRUCache(4096)
        self._lock = threading.Lock()
        self.stats = EngineStats()
        #: Version-stamped invalidation: the store generation this
        #: engine's resident LRUs were warmed against.  Re-checked at
        #: most every ``_GEN_CHECK_TTL_S`` on the request path — a
        #: monotonic-clock throttle, not per request, so the stat()
        #: never shows up in a profile.
        self._generation = (
            self.store.generation() if self.store is not None else 0
        )
        self._gen_checked_at = time.monotonic()

    @property
    def traces(self):
        """The session's trace cache (back-compat accessor)."""
        return self.session.traces

    @property
    def ilp_cache(self):
        """The session's ILP-table cache (back-compat accessor)."""
        return self.session.ilp

    # -- bookkeeping --------------------------------------------------------

    def _count(self, field_name: str, kind: str) -> None:
        with self._lock:
            counter = getattr(self.stats, field_name)
            counter[kind] = counter.get(kind, 0) + 1

    def _bump(self, attr: str, by: int = 1) -> None:
        with self._lock:
            setattr(self.stats, attr, getattr(self.stats, attr) + by)

    # -- version-stamped invalidation ----------------------------------------

    #: Seconds between store-generation re-checks on the request path.
    _GEN_CHECK_TTL_S = 0.5

    def _check_generation(self) -> None:
        """Drop resident LRUs when the shared store moved generations.

        Fleet workers share artifacts through the content-addressed
        store; a prune (or any future republish) bumps the store's
        generation stamp, and every resident engine notices within one
        TTL and drops its memoised payloads and profiles rather than
        serving entries the store no longer backs.
        """
        if self.store is None:
            return
        now = time.monotonic()
        with self._lock:
            if (now - self._gen_checked_at) < self._GEN_CHECK_TTL_S:
                return
            self._gen_checked_at = now
            known = self._generation
        current = self.store.generation()
        if current == known:
            return
        with self._lock:
            if self._generation == current:
                return  # another thread already invalidated
            self._generation = current
            self.stats.invalidations += 1
        self._profiles.clear()
        self.results.clear()
        self._seeds.clear()

    # -- workload / profile resolution --------------------------------------

    def _spec(self, ref: BenchmarkRef, scale: float):
        spec = build_workload(ref, scale)
        self._seeds.put((ref.label, scale), int(spec.seed))
        return spec

    def _seed(self, ref: BenchmarkRef, scale: float) -> int:
        seed = self._seeds.get((ref.label, scale))
        if seed is None:
            seed = int(self._spec(ref, scale).seed)
        return seed

    def _trace(self, ref: BenchmarkRef, scale: float):
        """Expanded trace via the engine-resident content-addressed LRU."""
        return self.traces.get(self._spec(ref, scale))

    def profile_key(self, ref: BenchmarkRef, scale: float) -> str:
        return ProfileStore.profile_key(
            ref.label, self._seed(ref, scale), scale, self.chunk
        )

    def profile(
        self, ref: BenchmarkRef, scale: float
    ) -> Tuple[str, WorkloadProfile]:
        """The resident profile for a benchmark (LRU -> store -> build)."""
        key = self.profile_key(ref, scale)
        hit = self._profiles.get(key)
        if hit is not None:
            return key, hit[1]
        with span("engine.profile", benchmark=ref.label, scale=scale):
            profile = None
            if self.store is not None:
                profile = self.store.load_profile(key)
                if profile is not None:
                    self._bump("profiles_from_store")
            if profile is None:
                profile = profile_workload(
                    self._trace(ref, scale),
                    chunk=self.chunk,
                    session=self.session,
                )
                self._bump("profiles_built")
                if self.store is not None:
                    self.store.save_profile(key, profile)
            self._profiles.put(key, (ref.label, profile))
            return key, profile

    @staticmethod
    def _config(name: str, cores: int) -> MulticoreConfig:
        try:
            return table_iv_config(name, cores=cores)
        except ValueError as exc:
            raise ServiceError(400, str(exc)) from None

    @staticmethod
    def _ref(benchmark: str) -> BenchmarkRef:
        try:
            return resolve_benchmark(benchmark)
        except ValueError as exc:
            raise ServiceError(404, str(exc)) from None

    # -- entry points -------------------------------------------------------

    def predict(
        self,
        benchmark: str,
        config: str = "base",
        cores: int = 4,
        scale: float = 1.0,
    ) -> dict:
        """``/v1/predict``: RPPM prediction payload, heavily memoized."""
        request = ServiceRequest(
            "predict", benchmark, config, cores, scale
        )
        self._check_generation()
        self._count("requests", "predict")
        cached = self.results.get(request.key())
        if cached is not None:
            return cached
        ref = self._ref(benchmark)
        cfg = self._config(config, cores)
        _pkey, profile = self.profile(ref, scale)
        # The session memoises the Eq.-1 cost cache per (profile,
        # config); profiles stay resident in ``_profiles``, so repeat
        # predictions skip every Eq.-1 evaluation.
        result = predict(profile, cfg, session=self.session)
        self._bump("predictions_run")
        self._count("computed", "predict")
        payload = prediction_payload(result, cfg)
        self.results.put(request.key(), payload)
        return payload

    def compare(
        self,
        benchmark: str,
        config: str = "base",
        cores: int = 4,
        scale: float = 1.0,
    ) -> dict:
        """``/v1/compare``: prediction vs. golden-reference simulation."""
        request = ServiceRequest(
            "compare", benchmark, config, cores, scale
        )
        self._check_generation()
        self._count("requests", "compare")
        cached = self.results.get(request.key())
        if cached is not None:
            return cached
        ref = self._ref(benchmark)
        cfg = self._config(config, cores)
        _pkey, profile = self.profile(ref, scale)
        pred = predict(profile, cfg, session=self.session)
        self._bump("predictions_run")
        sim = simulate(self._trace(ref, scale), cfg, session=self.session)
        self._bump("simulations_run")
        self._count("computed", "compare")
        payload = compare_payload(pred, sim, cfg)
        self.results.put(request.key(), payload)
        return payload

    def sweep(
        self,
        benchmark: str,
        configs: Tuple[str, ...] = (),
        cores: int = 4,
        scale: float = 1.0,
    ) -> dict:
        """``/v1/sweep``: one profile driving many design points."""
        request = ServiceRequest(
            "sweep", benchmark, "", cores, scale, tuple(configs)
        )
        self._check_generation()
        self._count("requests", "sweep")
        cached = self.results.get(request.key())
        if cached is not None:
            return cached
        names = tuple(configs) or tuple(TABLE_IV)
        results = [
            self.predict(benchmark, name, cores, scale) for name in names
        ]
        self._count("computed", "sweep")
        payload = {
            "benchmark": benchmark,
            "cores": cores,
            "scale": scale,
            "configs": list(names),
            "results": results,
        }
        self.results.put(request.key(), payload)
        return payload

    def profiles(self) -> dict:
        """``/v1/profiles``: resident + persisted profile inventory."""
        resident = [
            {
                "key": key,
                "benchmark": label,
                "n_threads": profile.n_threads,
                "n_instructions": profile.n_instructions,
                "seed": profile.seed,
            }
            for key, (label, profile) in self._profiles.items()
        ]
        payload = {"resident": resident}
        if self.store is not None:
            payload["store"] = {
                "root": str(self.store.root),
                "profiles": len(self.store.list_keys("profiles")),
                "ilptables": len(self.store.list_keys("ilptables")),
                "traces": len(self.store.list_keys("traces")),
            }
        return payload

    def health(self) -> dict:
        """Engine half of ``/healthz``."""
        with self._lock:
            stats = {
                "requests": dict(self.stats.requests),
                "computed": dict(self.stats.computed),
                "errors": self.stats.errors,
                "profiles_built": self.stats.profiles_built,
                "profiles_from_store": self.stats.profiles_from_store,
                "predictions_run": self.stats.predictions_run,
                "simulations_run": self.stats.simulations_run,
                "invalidations": self.stats.invalidations,
                "store_generation": self._generation,
            }
        stats["result_cache"] = self.results.stats()
        stats["profile_cache"] = self._profiles.stats()
        # One consolidated block for every artifact cache the session
        # holds — trace arena, ILP tables, branch stats, segment
        # precompute, Eq.-1 memos, expansion-engine and ILP-kernel
        # counters — instead of scattered per-cache fragments.
        stats["session"] = self.session.health()
        # Store health: quarantined artifacts, dropped writes, I/O
        # errors and the corruption streak — the error-budget inputs
        # (kept top-level so alerting needn't reach into the session).
        if self.store is not None:
            stats["store"] = self.store.health()
        return stats

    # -- batch face (used by the coalescer) ---------------------------------

    def handle(self, request: ServiceRequest) -> Tuple[int, dict]:
        """Serve one request; never raises — errors become payloads."""
        # Re-activate the request's trace in this worker thread so the
        # engine/profiler spans land in the serving request's timing
        # breakdown (single-flight riders share the leader's trace).
        token = activate(getattr(request, "trace", None))
        try:
            with span(
                "engine", kind=request.kind, benchmark=request.benchmark
            ):
                # Chaos fault point: a slow or failing engine call.
                # The delay occupies this worker thread exactly like a
                # real degraded engine would, which is how the overload
                # scenarios manufacture a known, bounded capacity.
                FAULTS.fire("engine.compute")
                if request.kind == "predict":
                    return 200, self.predict(
                        request.benchmark, request.config, request.cores,
                        request.scale,
                    )
                if request.kind == "compare":
                    return 200, self.compare(
                        request.benchmark, request.config, request.cores,
                        request.scale,
                    )
                if request.kind == "sweep":
                    return 200, self.sweep(
                        request.benchmark, request.configs, request.cores,
                        request.scale,
                    )
                return 400, {
                    "error": f"unknown request kind {request.kind!r}"
                }
        except ServiceError as exc:
            self._bump("errors")
            return exc.status, {"error": str(exc)}
        except Exception as exc:  # engine bug: report, don't kill the batch
            self._bump("errors")
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            deactivate(token)

    def handle_batch(
        self, requests: List[ServiceRequest]
    ) -> List[Tuple[int, dict]]:
        """One executor hop serving a coalesced group of requests."""
        return [self.handle(request) for request in requests]


# -- error budget ------------------------------------------------------------

#: Alert thresholds for the ``/healthz`` error-budget block.  The
#: budget flags *degradation trends* — a collapsed result-cache hit
#: rate (every request recomputing = the overload precursor), a
#: corruption streak in the store (rotting cache directory), silently
#: dropped writes — rather than individual failures, which are
#: already counted where they happen.
ERROR_BUDGET_THRESHOLDS: Dict[str, float] = {
    #: Result-cache hit rate below this, after min_lookups, is a
    #: cache collapse: the serving economy the engine is built on is
    #: gone and cold-compute load is about to take the service down.
    "min_result_hit_rate": 0.5,
    #: Lookups before the hit-rate alert can fire (cold start grace).
    "min_lookups": 64,
    #: Consecutive corrupt/stale artifacts before the store alarm.
    "max_corruption_streak": 3,
}


def error_budget(
    engine_health: dict, admission: Optional[dict] = None
) -> dict:
    """The ``/healthz`` error-budget block.

    Pure function of an engine health snapshot (plus the server's
    admission counters when serving), so the CLI, tests and external
    alerting (sipet-style alert systems polling ``/healthz``) compute
    the same verdict from the same counters.
    """
    thresholds = ERROR_BUDGET_THRESHOLDS
    alerts = []
    cache = engine_health.get("result_cache", {})
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    hit_rate = cache.get("hits", 0) / lookups if lookups else None
    cache_collapse = bool(
        lookups >= thresholds["min_lookups"]
        and hit_rate is not None
        and hit_rate < thresholds["min_result_hit_rate"]
    )
    if cache_collapse:
        alerts.append(
            f"result-cache hit rate collapsed to {hit_rate:.1%} "
            f"over {lookups} lookups"
        )
    store = engine_health.get("store", {})
    streak = store.get("corruption_streak", 0)
    corruption_alarm = streak >= thresholds["max_corruption_streak"]
    if corruption_alarm:
        alerts.append(
            f"store corruption streak at {streak} consecutive bad "
            f"artifacts"
        )
    dropped = store.get("dropped_writes", 0)
    if dropped:
        alerts.append(f"store dropped {dropped} writes (non-strict)")
    quarantined = sum(store.get("quarantine", {}).values())
    shed = admission.get("shed", 0) if admission else 0
    attempted = shed + sum(engine_health.get("requests", {}).values())
    return {
        "ok": not alerts,
        "alerts": alerts,
        "result_cache_hit_rate": hit_rate,
        "cache_hit_collapse": cache_collapse,
        "corruption_streak": streak,
        "corruption_alarm": corruption_alarm,
        "dropped_writes": dropped,
        "io_errors": store.get("io_errors", 0),
        "quarantined": quarantined,
        "shed": shed,
        "shed_rate": shed / attempted if attempted else 0.0,
    }


# -- payloads and their CLI renderings --------------------------------------
#
# The payload builders and ``format_*`` renderers below are shared by
# the HTTP server and ``repro predict`` / ``repro compare``: the CLI
# prints exactly ``format_prediction(prediction_payload(...))``, so a
# service response re-rendered through the same formatter reproduces
# the CLI output byte for byte (floats survive JSON round-trips
# exactly).


def _stack_dict(stack) -> Dict[str, float]:
    return {name: float(value) for name, value in stack.cpi().items()}


def prediction_payload(
    result: PredictionResult, config: MulticoreConfig
) -> dict:
    return {
        "benchmark": result.workload,
        "config": result.config,
        "cores": config.cores,
        "frequency_ghz": config.core.frequency_ghz,
        "total_cycles": result.total_cycles,
        "seconds": config.cycles_to_seconds(result.total_cycles),
        "threads": [
            {
                "thread_id": t.thread_id,
                "instructions": t.instructions,
                "active_cycles": t.active_cycles,
                "idle_cycles": t.idle_cycles,
            }
            for t in result.threads
        ],
        "cpi_stack": _stack_dict(result.average_stack()),
    }


def compare_payload(
    pred: PredictionResult, sim, config: MulticoreConfig
) -> dict:
    return {
        "benchmark": pred.workload,
        "config": config.name,
        "cores": config.cores,
        "predicted_cycles": pred.total_cycles,
        "simulated_cycles": sim.total_cycles,
        "error": pred.total_cycles / sim.total_cycles - 1.0,
        "prediction_stack": _stack_dict(pred.average_stack()),
        "simulation_stack": _stack_dict(sim.average_stack()),
        "invalidations": sim.invalidations,
    }


def _stack_line(stack: Dict[str, float]) -> str:
    return "  ".join(
        f"{name}={value:.3f}" for name, value in stack.items()
    )


def format_prediction(payload: dict) -> str:
    lines = [
        f"{payload['benchmark']} on {payload['config']}: "
        f"{payload['total_cycles']:,.0f} cycles "
        f"({payload['seconds'] * 1e6:.1f} us @ "
        f"{payload['frequency_ghz']} GHz)"
    ]
    for t in payload["threads"]:
        lines.append(
            f"  thread {t['thread_id']}: "
            f"active {t['active_cycles']:,.0f} "
            f"idle {t['idle_cycles']:,.0f}"
        )
    lines.append("  CPI stack: " + _stack_line(payload["cpi_stack"]))
    return "\n".join(lines)


def format_compare(payload: dict) -> str:
    return "\n".join([
        f"{payload['benchmark']} on {payload['config']}:",
        f"  RPPM     : {payload['predicted_cycles']:,.0f} cycles",
        f"  simulated: {payload['simulated_cycles']:,.0f} cycles",
        f"  error    : {payload['error']:+.1%}",
        "  RPPM stack: " + _stack_line(payload["prediction_stack"]),
        "  sim  stack: " + _stack_line(payload["simulation_stack"]),
    ])


__all__ = [
    "ERROR_BUDGET_THRESHOLDS",
    "EngineStats",
    "PredictionEngine",
    "ServiceError",
    "ServiceRequest",
    "compare_payload",
    "default_store",
    "error_budget",
    "format_compare",
    "format_prediction",
    "prediction_payload",
    "resolve_benchmark",
]
