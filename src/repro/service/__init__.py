"""Prediction-as-a-service: the serving layer over the RPPM engines.

The paper's pitch is *rapid* prediction; this package makes the
reproduction serve it: a long-lived engine keeps profiles, ILP tables
and epoch-cost memos resident (:mod:`~repro.service.engine`), an
asyncio request coalescer deduplicates and batches concurrent work
(:mod:`~repro.service.batching`), and a stdlib HTTP/JSON front end
(:mod:`~repro.service.server`, ``python -m repro serve``) exposes
``/v1/predict``, ``/v1/compare``, ``/v1/sweep``, ``/v1/profiles`` and
``/healthz`` to clients (:mod:`~repro.service.client`) and the
closed-loop load generator (:mod:`~repro.service.loadgen`).
"""

from repro.service.batching import Coalescer, LRUCache
from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceProtocolError,
    ServiceRetryBudgetExceeded,
    ServiceTimeout,
)
from repro.service.engine import (
    PredictionEngine,
    ServiceRequest,
    error_budget,
    format_compare,
    format_prediction,
)
from repro.service.loadgen import run_loadgen, run_overload_scenarios
from repro.service.server import BackgroundServer, PredictionService

__all__ = [
    "BackgroundServer",
    "Coalescer",
    "LRUCache",
    "PredictionEngine",
    "PredictionService",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceProtocolError",
    "ServiceRetryBudgetExceeded",
    "ServiceTimeout",
    "ServiceRequest",
    "error_budget",
    "format_compare",
    "format_prediction",
    "run_loadgen",
    "run_overload_scenarios",
]
