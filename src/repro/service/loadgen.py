"""Closed-loop load generator for the prediction service.

``concurrency`` worker threads each own one keep-alive
:class:`~repro.service.client.ServiceClient` and issue back-to-back
``/v1/predict`` requests until the deadline — the classic closed-loop
harness, so measured throughput is the service's sustainable rate at
that concurrency, not an open-loop arrival fantasy.  The warm-up
request runs the one-time profile cost before timing starts, making
the record the *serving* trajectory (``BENCH_service.json``), separate
from the profiling trajectory (``BENCH_profiler.json``).

Record schema (``schema`` = 1)::

    {
      "schema": 1, "endpoint": "/v1/predict",
      "benchmark": ..., "config": ..., "cores": ..., "scale": ...,
      "concurrency": N, "duration_s": measured wall-clock,
      "requests": count, "errors": count,
      "throughput_rps": requests / duration,
      "latency_ms": {"mean": ..., "p50": ..., "p99": ..., "max": ...},
      "cache_hit_rate": served-from-result-LRU fraction,
      "single_flight_collapsed": coalesced duplicate count
    }
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List

import numpy as np

from repro.service.client import ServiceClient

SERVICE_BENCH_SCHEMA = 1


def run_loadgen(
    host: str,
    port: int,
    benchmark: str = "rodinia.nn",
    config: str = "base",
    cores: int = 4,
    scale: float = 1.0,
    duration_s: float = 2.0,
    concurrency: int = 8,
) -> Dict:
    """Drive a running service; return the ``BENCH_service`` record."""
    params = {
        "benchmark": benchmark, "config": config,
        "cores": cores, "scale": scale,
    }
    with ServiceClient(host, port) as warm:
        warm.predict(**params)  # one-time profile cost, outside timing
        stats0 = warm.healthz()

    latencies: List[float] = []
    errors: List[int] = []
    sink_lock = threading.Lock()
    # Workers park on the barrier until the main thread has stamped the
    # deadline, so connection ramp-up never eats the measurement window.
    barrier = threading.Barrier(concurrency + 1)
    state = {"deadline": 0.0}

    def _run() -> None:
        with ServiceClient(host, port) as client:
            mine: List[float] = []
            failed = 0
            barrier.wait()
            while True:
                t0 = time.perf_counter()
                if t0 >= state["deadline"]:
                    break
                try:
                    client.predict(**params)
                except Exception:
                    failed += 1
                    continue
                mine.append(time.perf_counter() - t0)
            with sink_lock:
                latencies.extend(mine)
                errors.append(failed)

    threads = [
        threading.Thread(target=_run, daemon=True)
        for _ in range(concurrency)
    ]
    for t in threads:
        t.start()
    t_start = time.perf_counter()
    state["deadline"] = t_start + duration_s
    barrier.wait()  # release all workers at once
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t_start

    with ServiceClient(host, port) as probe:
        stats1 = probe.healthz()

    lat = np.asarray(latencies, dtype=np.float64) * 1e3
    requests = len(latencies)
    cache0 = stats0["engine"]["result_cache"]
    cache1 = stats1["engine"]["result_cache"]
    d_hits = cache1["hits"] - cache0["hits"]
    d_lookups = d_hits + cache1["misses"] - cache0["misses"]
    collapsed = (
        stats1["coalescer"]["collapsed"]
        - stats0["coalescer"]["collapsed"]
    )
    return {
        "schema": SERVICE_BENCH_SCHEMA,
        "endpoint": "/v1/predict",
        "benchmark": benchmark,
        "config": config,
        "cores": cores,
        "scale": scale,
        "concurrency": concurrency,
        "duration_s": elapsed,
        "requests": requests,
        "errors": int(sum(errors)),
        "throughput_rps": requests / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "mean": float(lat.mean()) if requests else 0.0,
            "p50": float(np.percentile(lat, 50)) if requests else 0.0,
            "p99": float(np.percentile(lat, 99)) if requests else 0.0,
            "max": float(lat.max()) if requests else 0.0,
        },
        "cache_hit_rate": (
            d_hits / d_lookups if d_lookups > 0 else 0.0
        ),
        "single_flight_collapsed": int(collapsed),
    }


__all__ = ["SERVICE_BENCH_SCHEMA", "run_loadgen"]
