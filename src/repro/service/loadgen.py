"""Closed-loop load generator + overload scenarios for the service.

``concurrency`` worker threads each own one keep-alive
:class:`~repro.service.client.ServiceClient` and issue back-to-back
requests until the deadline — the classic closed-loop harness, so
measured throughput is the service's sustainable rate at that
concurrency, not an open-loop arrival fantasy.  The warm-up request
runs the one-time profile cost before timing starts, making the
record the *serving* trajectory (``BENCH_service.json``), separate
from the profiling trajectory (``BENCH_profiler.json``).

Schema 2 records classify every request outcome — the overload
contract is that **nothing is unexplained**: a request ends in a
bit-identical success, a well-formed ``429 + Retry-After`` shed, a
``503`` deadline/drain refusal, or (only when the scenario kills the
server) a connection error.  ``unexplained_errors`` is floor-gated at
zero by ``bench --check``.

:func:`run_overload_scenarios` boots dedicated servers and drives the
three chaos scenarios — **stampede** (4x admission overload against a
tiny queue + deliberately slowed engine), **slow_engine** (deadline
expiry under an engine running ~10x past the deadline) and
**kill_mid_burst** (graceful drain triggered mid-traffic) — using the
fault points in :mod:`repro.testing.faults` to manufacture a known,
bounded capacity.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceOverloaded,
    ServiceProtocolError,
    ServiceTimeout,
)

#: 2: typed outcome classification (ok / shed / unavailable /
#: protocol / connection / unexplained), goodput + shed-rate, retry
#: accounting, and the ``overload`` scenario records.
#: 3: the pre-fork fleet — per-worker latency breakdowns keyed by the
#: ``X-Worker-Id`` response header, the ``fleet`` section (aggregate
#: rps at N=1/2/4 under warm and cold-mix profiles, scaling ratios, a
#: SIGKILL-respawn chaos record) and the host ``cpus`` the scaling
#: floors derate by.
SERVICE_BENCH_SCHEMA = 3

_OUTCOMES = (
    "ok",
    "shed",                # 429 with a well-formed Retry-After
    "malformed_shed",      # 429 missing the Retry-After contract
    "unavailable",         # 503 deadline expiry / draining
    "malformed_503",       # 503 without deadline/drain explanation
    "protocol_errors",     # undecodable response body
    "connection_errors",   # transport drop (reset, refused, closed)
    "unexplained_errors",  # anything else: the budget that must be 0
)


def _health_value(payload: Dict, dotted: str):
    """Walk ``payload`` along a dotted key path with explicit errors.

    The ``/healthz`` schema is registry-derived and has been renamed
    before; a probe landing on a missing key must say *which* key and
    what was actually there — not die with a bare ``KeyError``.
    """
    node = payload
    seen = []
    for key in dotted.split("."):
        seen.append(key)
        if not isinstance(node, dict):
            raise RuntimeError(
                f"/healthz probe: {'.'.join(seen[:-1])!r} is "
                f"{type(node).__name__}, not an object — cannot "
                f"descend to {dotted!r}"
            )
        if key not in node:
            raise RuntimeError(
                f"/healthz probe: no key {'.'.join(seen)!r} "
                f"(available: {sorted(node)[:12]}); the health schema "
                "may have been renamed — update the loadgen probe"
            )
        node = node[key]
    return node


def _classify(exc: Exception) -> str:
    """Map one failed request onto the outcome taxonomy."""
    if isinstance(exc, ServiceOverloaded):
        well_formed = (
            exc.retry_after is not None
            and isinstance(exc.payload, dict)
            and "error" in exc.payload
        )
        return "shed" if well_formed else "malformed_shed"
    if isinstance(exc, ServiceTimeout):
        if exc.status is None:
            return "connection_errors"  # socket timeout: no response
        payload = exc.payload if isinstance(exc.payload, dict) else {}
        explained = (
            payload.get("deadline_ms") is not None
            or "drain" in str(payload.get("error", ""))
        )
        return "unavailable" if explained else "malformed_503"
    if isinstance(exc, ServiceProtocolError):
        return "protocol_errors"
    if isinstance(exc, ServiceError):
        return "unexplained_errors"
    if isinstance(exc, (ConnectionError, OSError)):
        return "connection_errors"
    import http.client
    if isinstance(exc, http.client.HTTPException):
        return "connection_errors"
    return "unexplained_errors"


def _drive(
    host: str,
    port: int,
    make_call: Callable[[ServiceClient, int, int], dict],
    duration_s: float,
    concurrency: int,
    retries: int,
    join_grace_s: float = 30.0,
) -> Dict:
    """Closed-loop drive: returns merged outcome counts + latencies.

    ``make_call(client, worker_id, iteration)`` issues one request.
    Every worker classifies every exception — a worker thread dying
    uncounted or failing to join (``hung_workers``) is itself a
    reported failure mode, never a silent one.
    """
    counts = {name: 0 for name in _OUTCOMES}
    latencies: List[float] = []
    #: Per *serving* worker (the X-Worker-Id response header):
    #: successes and their latencies, so a multi-worker fleet's p99
    #: can be localized to the one cold/slow worker skewing it.
    by_server: Dict[str, Dict] = {}
    retried = [0]
    sink_lock = threading.Lock()
    barrier = threading.Barrier(concurrency + 1)
    state = {"deadline": 0.0}

    def _run(worker_id: int) -> None:
        with ServiceClient(host, port, retries=retries) as client:
            mine = {name: 0 for name in _OUTCOMES}
            lat: List[float] = []
            mine_servers: Dict[str, Dict] = {}
            try:
                barrier.wait(timeout=30)
            except threading.BrokenBarrierError:
                return
            iteration = 0
            while True:
                t0 = time.perf_counter()
                if t0 >= state["deadline"]:
                    break
                try:
                    make_call(client, worker_id, iteration)
                except Exception as exc:
                    mine[_classify(exc)] += 1
                else:
                    elapsed = time.perf_counter() - t0
                    mine["ok"] += 1
                    lat.append(elapsed)
                    # Only successes carry a trustworthy worker id —
                    # a transport error has no response header.
                    served_by = client.last_worker_id
                    if served_by is not None:
                        entry = mine_servers.setdefault(
                            served_by, {"ok": 0, "lat": []}
                        )
                        entry["ok"] += 1
                        entry["lat"].append(elapsed)
                iteration += 1
            with sink_lock:
                for name, value in mine.items():
                    counts[name] += value
                latencies.extend(lat)
                retried[0] += client.retried
                for served_by, entry in mine_servers.items():
                    merged = by_server.setdefault(
                        served_by, {"ok": 0, "lat": []}
                    )
                    merged["ok"] += entry["ok"]
                    merged["lat"].extend(entry["lat"])

    threads = [
        threading.Thread(target=_run, args=(i,), daemon=True)
        for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    t_start = time.perf_counter()
    state["deadline"] = t_start + duration_s
    barrier.wait(timeout=30)  # release all workers at once
    hung = 0
    for t in threads:
        t.join(timeout=duration_s + join_grace_s)
        if t.is_alive():
            hung += 1
    elapsed = time.perf_counter() - t_start

    lat = np.asarray(latencies, dtype=np.float64) * 1e3
    ok = counts["ok"]
    attempts = sum(counts.values())
    return {
        **counts,
        "attempts": attempts,
        "hung_workers": hung,
        "retries": retried[0],
        "duration_s": elapsed,
        "goodput_rps": ok / elapsed if elapsed > 0 else 0.0,
        "shed_rate": (
            (counts["shed"] + counts["malformed_shed"]) / attempts
            if attempts else 0.0
        ),
        "latency_ms": {
            "mean": float(lat.mean()) if ok else 0.0,
            "p50": float(np.percentile(lat, 50)) if ok else 0.0,
            "p99": float(np.percentile(lat, 99)) if ok else 0.0,
            "max": float(lat.max()) if ok else 0.0,
        },
        "workers": {
            served_by: {
                "ok": entry["ok"],
                "latency_ms": _lat_summary(entry["lat"]),
            }
            for served_by, entry in sorted(by_server.items())
        },
    }


def _lat_summary(samples: List[float]) -> Dict[str, float]:
    if not samples:
        return {"mean": 0.0, "p50": 0.0, "p99": 0.0}
    arr = np.asarray(samples, dtype=np.float64) * 1e3
    return {
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
    }


def run_loadgen(
    host: str,
    port: int,
    benchmark: str = "rodinia.nn",
    config: str = "base",
    cores: int = 4,
    scale: float = 1.0,
    duration_s: float = 2.0,
    concurrency: int = 8,
    retries: int = 0,
    deadline_ms: Optional[float] = None,
) -> Dict:
    """Drive a running service; return the warm ``BENCH_service`` record."""
    params = {
        "benchmark": benchmark, "config": config,
        "cores": cores, "scale": scale,
    }
    with ServiceClient(host, port, retries=retries) as warm:
        warm.predict(**params)  # one-time profile cost, outside timing
        stats0 = warm.healthz()

    def call(client: ServiceClient, worker_id: int, i: int) -> dict:
        return client.predict(**params, deadline_ms=deadline_ms)

    drive = _drive(
        host, port, call, duration_s=duration_s,
        concurrency=concurrency, retries=retries,
    )

    with ServiceClient(host, port) as probe:
        stats1 = probe.healthz()

    d_hits = (
        _health_value(stats1, "engine.result_cache.hits")
        - _health_value(stats0, "engine.result_cache.hits")
    )
    d_lookups = d_hits + (
        _health_value(stats1, "engine.result_cache.misses")
        - _health_value(stats0, "engine.result_cache.misses")
    )
    collapsed = (
        _health_value(stats1, "coalescer.collapsed")
        - _health_value(stats0, "coalescer.collapsed")
    )
    record = {
        "schema": SERVICE_BENCH_SCHEMA,
        "endpoint": "/v1/predict",
        "benchmark": benchmark,
        "config": config,
        "cores": cores,
        "scale": scale,
        "concurrency": concurrency,
        **drive,
        "requests": drive["ok"],
        "errors": drive["unexplained_errors"],  # schema-1 compatible
        "throughput_rps": drive["goodput_rps"],
        "cache_hit_rate": (
            d_hits / d_lookups if d_lookups > 0 else 0.0
        ),
        "single_flight_collapsed": int(collapsed),
    }
    return record


# -- overload / chaos scenarios ----------------------------------------------


def _scenario_stampede(
    benchmark: str, scale: float, duration_s: float
) -> Dict:
    """4x-overload stampede into a tiny admission queue.

    A deliberately slowed engine (chaos ``engine.compute`` delay)
    pins capacity at ~``workers / delay`` req/s; 32 closed-loop
    workers cycling *distinct* request keys (cores vary, so neither
    single-flight nor the result LRU can absorb the load) then offer
    several times the queue can hold.  The contract under test:
    everything not served is a well-formed 429 + Retry-After.
    """
    from repro.service.engine import PredictionEngine
    from repro.service.server import BackgroundServer
    from repro.testing.faults import inject

    max_queue = 8
    concurrency = 32
    engine = PredictionEngine(store=None)
    with BackgroundServer(
        engine=engine, workers=2, max_queue=max_queue,
    ) as server:
        with ServiceClient(port=server.port) as warm:
            warm.predict(benchmark=benchmark, scale=scale)

        def call(client: ServiceClient, worker_id: int, i: int) -> dict:
            cores = 1 + ((worker_id * 7 + i) % 16)
            return client.predict(
                benchmark=benchmark, scale=scale, cores=cores,
                retries=0,
            )

        with inject("engine.compute", delay_s=0.02):
            drive = _drive(
                "127.0.0.1", server.port, call,
                duration_s=duration_s, concurrency=concurrency,
                retries=0,
            )
        with ServiceClient(port=server.port) as probe:
            health = probe.healthz()
    ok = drive["ok"]
    return {
        "scenario": "stampede",
        "concurrency": concurrency,
        "max_queue": max_queue,
        "overload_factor": (
            drive["attempts"] / ok if ok else float(drive["attempts"])
        ),
        **drive,
        "server_shed": _health_value(health, "admission.shed"),
        "server_queue_depth_max": max_queue,
    }


def _scenario_slow_engine(
    benchmark: str, scale: float, duration_s: float
) -> Dict:
    """Engine running ~10x past the request deadline.

    Every computing request must end in a ``503`` that echoes the
    deadline — never a hang, never a raw socket error — and queued
    work abandoned by its timed-out waiter must be reaped before it
    wastes an engine worker.
    """
    from repro.service.engine import PredictionEngine
    from repro.service.server import BackgroundServer
    from repro.testing.faults import inject

    deadline_ms = 100.0
    concurrency = 8
    engine = PredictionEngine(store=None)
    with BackgroundServer(
        engine=engine, workers=2, deadline_ms=deadline_ms,
    ) as server:
        with ServiceClient(port=server.port) as warm:
            warm.predict(benchmark=benchmark, scale=scale)

        def call(client: ServiceClient, worker_id: int, i: int) -> dict:
            cores = 1 + ((worker_id * 5 + i) % 8)
            return client.predict(
                benchmark=benchmark, scale=scale, cores=cores,
                retries=0,
            )

        with inject("engine.compute", delay_s=0.25):
            drive = _drive(
                "127.0.0.1", server.port, call,
                duration_s=duration_s, concurrency=concurrency,
                retries=0,
            )
        with ServiceClient(port=server.port) as probe:
            health = probe.healthz()
    return {
        "scenario": "slow_engine",
        "concurrency": concurrency,
        "deadline_ms": deadline_ms,
        **drive,
        "server_deadline_expired": _health_value(
            health, "admission.deadline_expired"
        ),
        "coalescer_abandoned": _health_value(
            health, "coalescer.abandoned"
        ),
    }


def _scenario_kill_mid_burst(
    benchmark: str, scale: float, duration_s: float
) -> Dict:
    """Graceful shutdown fired in the middle of live traffic.

    Workers keep hammering through the drain and past the listener's
    death.  Acceptable outcomes: success (drained in-flight work),
    503 (refused while draining) or a connection error (listener
    gone).  No worker may hang and nothing may be unexplained.
    """
    from repro.service.engine import PredictionEngine
    from repro.service.server import BackgroundServer

    concurrency = 8
    engine = PredictionEngine(store=None)
    server = BackgroundServer(
        engine=engine, workers=2, drain_timeout=2.0,
    ).start()
    kill_at_s = duration_s / 2
    killer = threading.Timer(
        kill_at_s, lambda: server.stop(drain=True)
    )
    try:
        with ServiceClient(port=server.port) as warm:
            warm.predict(benchmark=benchmark, scale=scale)

        def call(client: ServiceClient, worker_id: int, i: int) -> dict:
            return client.predict(
                benchmark=benchmark, scale=scale,
                cores=1 + (i % 4), retries=0,
            )

        killer.start()
        drive = _drive(
            "127.0.0.1", server.port, call,
            duration_s=duration_s, concurrency=concurrency,
            retries=0, join_grace_s=10.0,
        )
    finally:
        killer.cancel()
        try:
            server.stop()
        except RuntimeError:
            pass  # already stopped by the killer
    return {
        "scenario": "kill_mid_burst",
        "concurrency": concurrency,
        "killed_at_s": kill_at_s,
        **drive,
    }


def run_overload_scenarios(
    quick: bool = False,
    benchmark: str = "rodinia.nn",
    scale: float = 0.25,
) -> Dict[str, Dict]:
    """All chaos/overload scenarios; keyed records for schema 2."""
    duration_s = 1.2 if quick else 2.5
    return {
        "stampede": _scenario_stampede(benchmark, scale, duration_s),
        "slow_engine": _scenario_slow_engine(
            benchmark, scale, duration_s
        ),
        "kill_mid_burst": _scenario_kill_mid_burst(
            benchmark, scale, duration_s
        ),
    }


# -- pre-fork fleet benchmarks ------------------------------------------------


def _cold_mix_call(
    benchmark: str, scale: float
) -> Callable[[ServiceClient, int, int], dict]:
    """A request stream no result LRU can absorb.

    Cycles every Table IV config crossed with 1..1024 cores — more
    distinct request keys than the engine's result cache holds, so
    each request is a real Eq.-1 evaluation.  The *profile* stays
    resident (cores and config are not part of the profile key), which
    is exactly the cold-traffic shape the fleet exists for: compute
    bound, GIL-limited in one process.
    """
    from repro.arch.presets import TABLE_IV

    names = tuple(TABLE_IV)

    def call(client: ServiceClient, worker_id: int, i: int) -> dict:
        idx = worker_id * 7919 + i
        return client.predict(
            benchmark=benchmark,
            config=names[idx % len(names)],
            cores=1 + ((idx // len(names)) % 1024),
            scale=scale,
            retries=0,
        )

    return call


def _drive_fleet(
    port: int,
    call: Callable[[ServiceClient, int, int], dict],
    duration_s: float,
    concurrency: int,
    warmup_s: float = 0.3,
) -> Dict:
    """Warm every fleet worker via the same kernel balancing, then time."""
    if warmup_s > 0:
        _drive(
            "127.0.0.1", port, call, duration_s=warmup_s,
            concurrency=concurrency, retries=0,
        )
    return _drive(
        "127.0.0.1", port, call, duration_s=duration_s,
        concurrency=concurrency, retries=0,
    )


def _scenario_kill_fleet_worker(
    store_root,
    benchmark: str,
    scale: float,
    duration_s: float,
    concurrency: int = 8,
) -> Dict:
    """SIGKILL one fleet worker mid-burst; the fleet must keep serving.

    Acceptable outcomes during the kill window: success (the sibling
    worker, or the respawn) and connection errors (requests in flight
    on — or kernel-routed to — the dead worker's sockets).  The
    supervisor must respawn the worker and a post-burst request must
    succeed; nothing may be unexplained.
    """
    from repro.service.fleet import ServingFleet, wait_fleet_ready

    fleet = ServingFleet(
        store_root=store_root, workers=2, threads=2,
        respawn=True, drain_timeout=2.0,
        warm_profiles=((benchmark, scale),),
    )
    fleet.start()
    fleet.watch()
    killed = {"pid": None}
    killer = threading.Timer(
        duration_s / 2, lambda: killed.update(
            pid=fleet.kill_worker(0)
        )
    )
    try:
        wait_fleet_ready("127.0.0.1", fleet.port, 2)

        def call(client: ServiceClient, worker_id: int, i: int) -> dict:
            return client.predict(
                benchmark=benchmark, scale=scale,
                cores=1 + (i % 4), retries=0,
            )

        _drive(  # warm both workers before the chaos window
            "127.0.0.1", fleet.port, call, duration_s=0.3,
            concurrency=concurrency, retries=0,
        )
        killer.start()
        drive = _drive(
            "127.0.0.1", fleet.port, call,
            duration_s=duration_s, concurrency=concurrency,
            retries=0, join_grace_s=10.0,
        )
        # The respawned worker must be serving again.
        wait_fleet_ready("127.0.0.1", fleet.port, 2, timeout_s=30.0)
        with ServiceClient(port=fleet.port, retries=2) as probe:
            post_kill_ok = bool(
                probe.predict(benchmark=benchmark, scale=scale)
            )
        respawns = fleet.respawns
    finally:
        killer.cancel()
        fleet.stop()
    return {
        "scenario": "kill_fleet_worker",
        "concurrency": concurrency,
        "killed_at_s": duration_s / 2,
        "killed_pid": killed["pid"],
        "respawns": respawns,
        "post_kill_ok": post_kill_ok,
        **drive,
    }


def run_fleet_bench(
    quick: bool = False,
    workers: tuple = (1, 2, 4),
    benchmark: str = "rodinia.nn",
    scale: float = 0.5,
    concurrency: int = 8,
    store_root=None,
) -> Dict:
    """The ``fleet`` section of BENCH_service.json schema 3.

    Boots a pre-fork fleet at each worker count over one *shared*
    store (so every fleet after the first starts artifact-warm — the
    sharing the tentpole is about), drives a warm profile (one hot
    request key: measures the serving plane) and a cold mix (distinct
    keys: measures GIL-escape scaling), then runs the SIGKILL-respawn
    chaos scenario.  Records host ``cpus`` — the scaling floors are
    committed at a 4-core reference and derated by ``min(4, cpus)/4``
    so a 1-core CI runner is held to what 1 core can physically do.
    """
    import os
    import tempfile
    from pathlib import Path

    from repro.service.fleet import ServingFleet, wait_fleet_ready

    duration_s = 1.0 if quick else 2.5
    record: Dict = {
        "cpus": os.cpu_count() or 1,
        "duration_s": duration_s,
        "benchmark": benchmark,
        "scale": scale,
        "concurrency": concurrency,
        "workers": {},
    }
    cleanup = None
    if store_root is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-fleet-bench-")
        store_root = Path(cleanup.name)
    try:
        warm_params = {
            "benchmark": benchmark, "scale": scale, "retries": 0,
        }

        def warm_call(client: ServiceClient, wid: int, i: int) -> dict:
            return client.predict(**warm_params)

        for n in workers:
            fleet = ServingFleet(
                store_root=store_root, workers=n, threads=2,
                warm_profiles=((benchmark, scale),),
            )
            fleet.start()
            fleet.watch()
            try:
                wait_fleet_ready("127.0.0.1", fleet.port, n)
                warm = _drive_fleet(
                    fleet.port, warm_call,
                    duration_s=duration_s, concurrency=concurrency,
                )
                cold = _drive_fleet(
                    fleet.port, _cold_mix_call(benchmark, scale),
                    duration_s=duration_s, concurrency=concurrency,
                )
            finally:
                fleet.stop()
            record["workers"][str(n)] = {"warm": warm, "cold": cold}
        lo, hi = str(min(workers)), str(max(workers))
        lo_cold = record["workers"][lo]["cold"]["goodput_rps"]
        hi_cold = record["workers"][hi]["cold"]["goodput_rps"]
        record["cold_scaling_x"] = (
            hi_cold / lo_cold if lo_cold > 0 else 0.0
        )
        record["warm_aggregate_rps"] = (
            record["workers"][hi]["warm"]["goodput_rps"]
        )
        record["chaos"] = _scenario_kill_fleet_worker(
            store_root, benchmark, scale, duration_s,
            concurrency=concurrency,
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return record


__all__ = [
    "SERVICE_BENCH_SCHEMA",
    "run_fleet_bench",
    "run_loadgen",
    "run_overload_scenarios",
]
