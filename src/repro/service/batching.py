"""Request coalescing primitives for the prediction service.

Two transport-agnostic pieces:

* :class:`LRUCache` — a thread-safe least-recently-used map with hit /
  miss counters, shared by the engine for profiles, epoch-cost caches
  and finished payloads.
* :class:`Coalescer` — the asyncio front half of the serving data
  path.  Concurrent requests are (a) *deduplicated*: identical keys
  in flight collapse onto one future (single-flight), so a stampede of
  equal requests costs exactly one engine computation; and (b)
  *batched*: distinct pending requests are drained together into one
  executor hop, so the engine amortizes its dispatch overhead and
  serves the whole group from warm caches.

Neither piece knows about HTTP or about the engine's semantics — the
coalescer takes an opaque ``compute_batch`` callable and opaque request
objects keyed by the caller.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, List, Tuple


class LRUCache:
    """Thread-safe LRU map with hit/miss accounting."""

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def items(self) -> List[Tuple[Hashable, Any]]:
        """Snapshot, least- to most-recently used."""
        with self._lock:
            return list(self._data.items())

    def clear(self) -> int:
        """Drop every entry; returns how many were evicted.

        Hit/miss counters survive — invalidation is not amnesia about
        past performance.
        """
        with self._lock:
            dropped = len(self._data)
            self._data.clear()
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._data),
                "maxsize": self.maxsize,
            }


class Coalescer:
    """Single-flight dedup + micro-batching over an executor.

    ``compute_batch`` receives a list of request objects and returns a
    result per request, in order; it runs on ``executor`` (a thread
    pool), never on the event loop.  Up to ``max_workers`` batches run
    concurrently; requests arriving while every worker is busy queue up
    and ship in the next drain, so batch size adapts to load.

    A request whose key equals one already in flight never reaches the
    engine: it awaits the in-flight future (``collapsed`` counts these
    — the single-flight guarantee the concurrency tests pin down).
    """

    def __init__(
        self,
        compute_batch: Callable[[List[Any]], List[Any]],
        executor,
        max_workers: int = 1,
        max_batch: int = 64,
    ) -> None:
        self._compute = compute_batch
        self._executor = executor
        self._max_workers = max(1, max_workers)
        self.max_batch = max(1, max_batch)
        self._pending: List[Tuple[Hashable, Any]] = []
        self._inflight: Dict[Hashable, asyncio.Future] = {}
        #: key -> number of awaiting submitters (single-flight sharers).
        self._waiters: Dict[Hashable, int] = {}
        self._drainers = 0
        #: Requests that collapsed onto an identical in-flight one.
        self.collapsed = 0
        #: Executor round-trips (each serving >= 1 request).
        self.batches = 0
        #: Total requests submitted.
        self.submitted = 0
        #: Queued requests dropped because every waiter went away
        #: (client disconnect / deadline) before the work shipped.
        self.abandoned = 0
        #: EWMA of per-request engine service time — the basis of the
        #: server's ``Retry-After`` estimate under overload.
        self.ewma_service_s = 0.0

    def depth(self) -> int:
        """Distinct requests admitted and not yet resolved."""
        return len(self._inflight)

    def estimate_wait_s(self, extra: int = 0) -> float:
        """Rough time until a request submitted now would finish."""
        per_request = self.ewma_service_s or 0.05
        workers = self._max_workers
        return (self.depth() + extra) * per_request / workers

    async def submit(self, key: Hashable, request: Any) -> Any:
        """Resolve ``request``, sharing work with identical requests.

        Cancellation-aware: if every waiter on a key is cancelled (a
        client disconnected, a deadline fired) while the work is still
        queued, the entry is dropped before it ever reaches the
        engine.  Work already executing cannot be recalled — its
        result simply resolves a future nobody awaits.
        """
        loop = asyncio.get_running_loop()
        self.submitted += 1
        fut = self._inflight.get(key)
        if fut is not None:
            self.collapsed += 1
        else:
            fut = loop.create_future()
            self._inflight[key] = fut
            self._pending.append((key, request))
            if self._drainers < self._max_workers:
                self._drainers += 1
                loop.create_task(self._drain(loop))
        self._waiters[key] = self._waiters.get(key, 0) + 1
        try:
            return await asyncio.shield(fut)
        except asyncio.CancelledError:
            self._abandon(key, fut)
            raise
        finally:
            remaining = self._waiters.get(key, 1) - 1
            if remaining <= 0:
                self._waiters.pop(key, None)
            else:
                self._waiters[key] = remaining

    def _abandon(self, key: Hashable, fut: asyncio.Future) -> None:
        """A waiter was cancelled; reap the work if it was the last."""
        if self._waiters.get(key, 0) > 1:
            return  # other waiters still want the result
        if self._inflight.get(key) is not fut:
            return  # already resolved or superseded
        for i, (pending_key, _) in enumerate(self._pending):
            if pending_key == key:
                del self._pending[i]
                self._inflight.pop(key, None)
                if not fut.done():
                    fut.cancel()
                self.abandoned += 1
                return
        # Not pending: the batch is already on an executor thread.
        # Let it finish; its result resolves an unawaited future.

    async def _drain(self, loop) -> None:
        try:
            while self._pending:
                batch = self._pending[: self.max_batch]
                del self._pending[: len(batch)]
                self.batches += 1
                requests = [request for _, request in batch]
                t0 = loop.time()
                try:
                    results = await loop.run_in_executor(
                        self._executor, self._compute, requests
                    )
                except BaseException as exc:
                    for key, _ in batch:
                        fut = self._inflight.pop(key, None)
                        if fut is not None and not fut.done():
                            fut.set_exception(exc)
                    continue
                per_request = (loop.time() - t0) / len(batch)
                self.ewma_service_s = (
                    per_request if self.ewma_service_s == 0.0
                    else 0.8 * self.ewma_service_s + 0.2 * per_request
                )
                for (key, _), result in zip(batch, results):
                    fut = self._inflight.pop(key, None)
                    if fut is not None and not fut.done():
                        fut.set_result(result)
        finally:
            self._drainers -= 1

    def stats(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "collapsed": self.collapsed,
            "batches": self.batches,
            "abandoned": self.abandoned,
            "inflight": len(self._inflight),
            "pending": len(self._pending),
            "ewma_service_ms": round(self.ewma_service_s * 1e3, 3),
        }


def run_coalesced(
    coalescer: Coalescer,
    items: List[Tuple[Hashable, Any]],
) -> List[Any]:
    """Synchronous helper: resolve many keyed requests on a fresh loop.

    Test/tooling convenience for exercising a :class:`Coalescer`
    outside a running server.
    """

    async def _gather():
        return await asyncio.gather(*[
            coalescer.submit(key, request) for key, request in items
        ])

    return asyncio.run(_gather())


__all__ = ["Coalescer", "LRUCache", "run_coalesced"]
