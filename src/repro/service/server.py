"""Asyncio HTTP/JSON front end of the prediction service.

Stdlib only: ``asyncio.start_server`` plus a small HTTP/1.1
keep-alive parser — no web framework, so the service runs anywhere the
reproduction runs.  The event loop owns parsing and routing; engine
work happens on a thread pool behind the
:class:`~repro.service.batching.Coalescer`, which deduplicates
identical in-flight requests (single-flight) and ships distinct ones
to the engine in micro-batches.

Overload safety (the serving plane degrades, it does not collapse):

* **Admission control** — a bounded queue in front of the coalescer
  (``max_queue`` distinct requests admitted at once).  Overflow is
  shed immediately with ``429 Too Many Requests`` plus a
  ``Retry-After`` header derived from the coalescer's EWMA service
  time, so clients back off instead of piling on.
* **Deadlines** — every compute request carries a deadline (server
  default ``deadline_ms``, tightened per request via an
  ``X-Deadline-Ms`` header).  Expiry returns ``503`` with the
  deadline echoed; queued work whose last waiter timed out is
  reaped before it ever reaches the engine.
* **Disconnect cancellation** — a client hanging up mid-request
  cancels the in-flight wait (and the queued work, if nobody else
  shares it via single-flight).
* **Graceful drain** — shutdown stops the listener first, lets
  admitted work finish for up to ``drain_timeout`` seconds (new
  compute requests are refused with 503 while draining), then closes
  connections.

Observability (see :mod:`repro.obs`): every response carries an
``X-Request-Id`` (client-provided via the header of the same name, or
generated), each request records a span trace retrievable from
``/v1/debug/trace/<id>`` while it stays in the ring buffer, admission
counters live in a per-service metrics registry (``/healthz`` is
derived from it — no counter is double-sourced), and ``/metrics``
renders the merged process + service registries in Prometheus text
format.  Startup/drain messages go through the structured logger.

Endpoints::

    GET  /healthz                         liveness + engine/admission
                                          stats + error budget
    GET  /metrics                         Prometheus text exposition
    GET  /v1/profiles                     resident + persisted profiles
    GET|POST /v1/predict                  RPPM prediction
    GET|POST /v1/compare                  prediction vs. simulation
    GET|POST /v1/sweep                    one profile, many design points
    GET  /v1/debug/trace/<id>             span breakdown of a recent
                                          request (ring buffer)

Parameters come from the query string or a JSON body (body wins):
``benchmark`` (required), ``config`` (default ``base``), ``cores``
(default 4), ``scale`` (default 1.0) and, for sweep, ``configs`` (comma
list / JSON array; default: all Table IV points).
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import math
import os
import signal
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.obs import get_logger, span
from repro.obs.logging import ensure_configured
from repro.obs.metrics import REGISTRY, MetricsRegistry, render_registries
from repro.obs.tracing import (
    TRACE_RING,
    activate,
    current_trace,
    deactivate,
    enabled as obs_enabled,
    new_request_id,
    new_trace,
)
from repro.service.batching import Coalescer
from repro.service.engine import (
    PredictionEngine,
    ServiceRequest,
    error_budget,
)
from repro.testing.faults import FAULTS

_log = get_logger("repro.service")

#: Upper bound on request head + body sizes (this is a compute service,
#: not a file store).
_MAX_HEAD = 64 * 1024
_MAX_BODY = 1024 * 1024
#: Parameter guards: a single request must not be able to commission an
#: arbitrarily large workload expansion on an engine worker.
_MAX_CORES = 1024
_MAX_SCALE = 100.0
#: How often the connection handler polls for a client disconnect
#: while a routed request is in flight.
_DISCONNECT_POLL_S = 0.05
#: Retry-After is clamped to [1, 60] seconds — long enough to matter,
#: short enough that honest clients come back.
_MAX_RETRY_AFTER_S = 60
#: Fleet heartbeat cadence: each worker rewrites its
#: ``fleet/worker-<id>.json`` this often; the aggregate ``/healthz``
#: treats a file older than three beats as a dead worker.
FLEET_HEARTBEAT_S = 1.0

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Routes that may appear as a metrics label.  Unknown paths collapse
#: to "other" so a client scanning for endpoints cannot blow up the
#: label cardinality of ``repro_http_requests_total``.
_KNOWN_ROUTES = frozenset({
    "/healthz", "/metrics", "/v1/profiles",
    "/v1/predict", "/v1/compare", "/v1/sweep",
})
_DEBUG_TRACE_PREFIX = "/v1/debug/trace"


class PredictionService:
    """One engine + coalescer + asyncio HTTP server."""

    def __init__(
        self,
        engine: Optional[PredictionEngine] = None,
        host: str = "127.0.0.1",
        port: int = 8000,
        workers: int = 2,
        max_queue: int = 64,
        deadline_ms: Optional[float] = None,
        drain_timeout: float = 5.0,
        worker_id: int = 0,
        reuse_port: bool = False,
        sock: Optional[socket.socket] = None,
        fleet_state_dir: Optional[Path] = None,
    ) -> None:
        self.engine = engine if engine is not None else PredictionEngine()
        self.host = host
        self.port = port
        self.workers = max(1, workers)
        self.max_queue = max(1, max_queue)
        self.deadline_ms = deadline_ms
        self.drain_timeout = drain_timeout
        #: Fleet identity: which pre-fork worker this process is.  A
        #: single-process service is worker 0; every response carries
        #: it as ``X-Worker-Id`` so load generators can localize a
        #: slow worker, and ``repro_worker_requests_total{worker=...}``
        #: keys on it.
        self.worker_id = int(worker_id)
        #: Bind with SO_REUSEPORT (Linux kernel-level accept
        #: balancing).  Ignored when ``sock`` is passed.
        self.reuse_port = bool(reuse_port)
        #: A pre-bound listening socket inherited from a fleet parent
        #: (the non-SO_REUSEPORT fallback path).
        self._inherited_sock = sock
        #: Directory of per-worker heartbeat files; when set, a
        #: daemon thread publishes this worker's liveness there and
        #: ``/healthz`` grows a fleet aggregate block.
        self.fleet_state_dir = (
            Path(fleet_state_dir) if fleet_state_dir is not None else None
        )
        self._heartbeat_stop: Optional[threading.Event] = None
        self._heartbeat_thread: Optional[threading.Thread] = None
        #: Per-service registry: admission counters live here (not in
        #: the process-global one) so parallel test servers stay
        #: isolated; ``/metrics`` renders both merged.  These counter
        #: objects are the single source — ``/healthz`` and the
        #: back-compat properties below read them.
        self.metrics = MetricsRegistry()
        self._m_requests = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route and status",
            labels=("route", "status"),
        )
        self._m_shed = self.metrics.counter(
            "repro_admission_shed_total",
            "Requests shed by admission control (well-formed 429s)",
        )
        self._m_deadline_expired = self.metrics.counter(
            "repro_admission_deadline_expired_total",
            "Requests whose deadline expired while queued or computing",
        )
        self._m_disconnects = self.metrics.counter(
            "repro_disconnects_total",
            "In-flight requests cancelled by a client disconnect",
        )
        self._m_response_failures = self.metrics.counter(
            "repro_response_failures_total",
            "Responses that failed to reach the client",
        )
        self._m_worker_requests = self.metrics.counter(
            "repro_worker_requests_total",
            "HTTP requests served, by fleet worker",
            labels=("worker",),
        )
        self.metrics.register_collector("service", self._collect_metrics)
        #: True once shutdown began: compute requests get 503.
        self.draining = False
        self._active_requests = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._coalescer: Optional[Coalescer] = None
        self._connections: set = set()

    # -- registry-derived counters (single source: self.metrics) ------------

    @property
    def requests_served(self) -> int:
        return int(self._m_requests.value())

    @property
    def shed(self) -> int:
        return int(self._m_shed.value())

    @property
    def deadline_expired(self) -> int:
        return int(self._m_deadline_expired.value())

    @property
    def disconnects(self) -> int:
        return int(self._m_disconnects.value())

    @property
    def response_failures(self) -> int:
        return int(self._m_response_failures.value())

    def _collect_metrics(self, m: MetricsRegistry) -> None:
        """Scrape-time refresh: project the authoritative structs
        (engine stats, session caches, store counters, coalescer) into
        gauges.  Registered as a keyed collector on ``self.metrics``.
        """
        m.gauge(
            "repro_admission_max_queue",
            "Admission bound on distinct in-flight requests",
        ).set(self.max_queue)
        m.gauge(
            "repro_admission_queue_depth",
            "Distinct requests currently admitted",
        ).set(self._coalescer.depth() if self._coalescer else 0)
        m.gauge(
            "repro_service_draining", "1 while graceful drain is underway"
        ).set(1.0 if self.draining else 0.0)
        m.gauge(
            "repro_service_workers", "Engine worker threads"
        ).set(self.workers)
        if self._coalescer is not None:
            stats = self._coalescer.stats()
            for name in (
                "submitted", "collapsed", "batches", "abandoned",
                "inflight", "pending",
            ):
                m.gauge(
                    f"repro_coalescer_{name}",
                    f"Coalescer {name.replace('_', ' ')}",
                ).set(stats[name])
            m.gauge(
                "repro_coalescer_ewma_service_ms",
                "EWMA engine service time per distinct request",
            ).set(stats["ewma_service_ms"])
        health = self.engine.health()
        requests = m.gauge(
            "repro_engine_requests", "Engine requests by kind",
            labels=("kind",),
        )
        for kind, n in health.get("requests", {}).items():
            requests.labels(kind=kind).set(n)
        computed = m.gauge(
            "repro_engine_computed",
            "Engine requests computed (result-cache misses) by kind",
            labels=("kind",),
        )
        for kind, n in health.get("computed", {}).items():
            computed.labels(kind=kind).set(n)
        for name in (
            "errors", "profiles_built", "profiles_from_store",
            "predictions_run", "simulations_run",
        ):
            m.gauge(
                f"repro_engine_{name}",
                f"Engine {name.replace('_', ' ')}",
            ).set(health.get(name, 0))
        self._collect_cache_metrics(m, health)
        session = health.get("session", {})
        for prefix, snap in (
            ("repro_expand", session.get("expand_engine")),
            ("repro_ilp_kernel", session.get("ilp_kernel")),
        ):
            if isinstance(snap, dict):
                for name, value in snap.items():
                    if isinstance(value, (int, float)):
                        m.gauge(
                            f"{prefix}_{name}",
                            f"{prefix.split('_', 1)[1]} {name}".replace(
                                "_", " "
                            ),
                        ).set(value)
        self._collect_store_metrics(m, health.get("store"))

    @staticmethod
    def _collect_cache_metrics(m: MetricsRegistry, health: dict) -> None:
        session = health.get("session", {})
        caches = {
            "result": health.get("result_cache", {}),
            "profile": health.get("profile_cache", {}),
            "trace": session.get("trace_cache", {}),
            "ilp": session.get("ilp_cache", {}),
            "branch": session.get("branch_cache", {}),
            "prep": session.get("prep_cache", {}),
        }
        hits = m.gauge(
            "repro_cache_hits", "Cache hits by cache", labels=("cache",)
        )
        misses = m.gauge(
            "repro_cache_misses", "Cache misses by cache", labels=("cache",)
        )
        entries = m.gauge(
            "repro_cache_entries", "Resident entries by cache",
            labels=("cache",),
        )
        sizes = m.gauge(
            "repro_cache_bytes", "Resident bytes by cache", labels=("cache",)
        )
        for label, stats in caches.items():
            if not isinstance(stats, dict):
                continue
            if "hits" in stats:
                hits.labels(cache=label).set(stats["hits"])
            if "misses" in stats:
                misses.labels(cache=label).set(stats["misses"])
            for key in ("size", "entries", "traces"):
                if key in stats:
                    entries.labels(cache=label).set(stats[key])
                    break
            if "bytes" in stats:
                sizes.labels(cache=label).set(stats["bytes"])

    @staticmethod
    def _collect_store_metrics(
        m: MetricsRegistry, store: Optional[dict]
    ) -> None:
        if not isinstance(store, dict):
            return
        for name in (
            "writes", "duplicate_writes", "dropped_writes", "io_errors",
            "corrupt", "schema_stale", "quarantined", "quarantine_failed",
            "corruption_streak", "max_corruption_streak", "generation",
        ):
            if name in store:
                m.gauge(
                    f"repro_store_{name}",
                    f"Store {name.replace('_', ' ')}",
                ).set(store[name])
        quarantine = store.get("quarantine")
        if isinstance(quarantine, dict):
            q = m.gauge(
                "repro_store_quarantine",
                "Quarantined artifacts by kind", labels=("kind",),
            )
            for kind, n in quarantine.items():
                if isinstance(n, (int, float)):
                    q.labels(kind=kind).set(n)

    def render_metrics(self) -> str:
        """Merged Prometheus exposition: process + service registries."""
        return render_registries([REGISTRY, self.metrics])

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-engine",
        )
        self._coalescer = Coalescer(
            self.engine.handle_batch,
            self._executor,
            max_workers=self.workers,
        )
        if self._inherited_sock is not None:
            # Fleet fallback path: accept on the parent-bound socket.
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._inherited_sock,
                limit=_MAX_HEAD,
            )
        else:
            kwargs = {}
            if self.reuse_port:
                kwargs["reuse_port"] = True
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port,
                limit=_MAX_HEAD, **kwargs,
            )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.fleet_state_dir is not None:
            self._start_heartbeat()

    async def stop(self, drain: Optional[bool] = True) -> None:
        """Graceful shutdown: refuse, drain, then close.

        The listener closes first (no new connections), ``draining``
        flips so keep-alive connections get 503 for new compute work,
        and admitted work gets up to ``drain_timeout`` seconds to
        finish and flush its responses before connections are torn
        down.  ``drain=False`` skips the wait (abrupt stop — the
        chaos harness's kill switch).
        """
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain and self._coalescer is not None:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.drain_timeout
            while loop.time() < deadline and (
                self._coalescer.depth() > 0 or self._active_requests > 0
            ):
                await asyncio.sleep(0.02)
        # Shake off idle keep-alive connections so their handler tasks
        # exit before the event loop is torn down.
        for writer in list(self._connections):
            writer.close()
        await asyncio.sleep(0)
        if self._heartbeat_stop is not None:
            self._heartbeat_stop.set()
            if self._heartbeat_thread is not None:
                self._heartbeat_thread.join(timeout=2.0)
            self._heartbeat_thread = None
            self._heartbeat_stop = None
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    # -- fleet heartbeats ----------------------------------------------------

    def _heartbeat_path(self) -> Path:
        return self.fleet_state_dir / f"worker-{self.worker_id}.json"

    def _write_heartbeat(self) -> None:
        """Atomically publish this worker's liveness + request count."""
        payload = {
            "worker_id": self.worker_id,
            "pid": os.getpid(),
            "port": self.port,
            "requests_served": self.requests_served,
            "draining": self.draining,
            "ts": time.time(),
        }
        path = self._heartbeat_path()
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        try:
            self.fleet_state_dir.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(payload))
            os.replace(tmp, path)
        except OSError:
            with contextlib.suppress(OSError):
                tmp.unlink()

    def _start_heartbeat(self) -> None:
        self._heartbeat_stop = threading.Event()

        def _beat(stop: threading.Event) -> None:
            while not stop.is_set():
                self._write_heartbeat()
                stop.wait(FLEET_HEARTBEAT_S)
            self._write_heartbeat()  # final beat records the drain

        self._heartbeat_thread = threading.Thread(
            target=_beat, args=(self._heartbeat_stop,),
            name=f"repro-heartbeat-{self.worker_id}", daemon=True,
        )
        self._heartbeat_thread.start()

    def _fleet_health(self) -> Optional[dict]:
        """Aggregate view over every worker's heartbeat file."""
        if self.fleet_state_dir is None:
            return None
        now = time.time()
        workers = []
        try:
            paths = sorted(self.fleet_state_dir.glob("worker-*.json"))
        except OSError:
            paths = []
        for path in paths:
            try:
                entry = json.loads(path.read_text())
                age = now - path.stat().st_mtime
            except (OSError, ValueError):
                continue
            entry["heartbeat_age_s"] = round(age, 3)
            entry["alive"] = age < 3 * FLEET_HEARTBEAT_S
            workers.append(entry)
        return {
            "workers": workers,
            "alive": sum(1 for w in workers if w["alive"]),
            "requests_served": sum(
                int(w.get("requests_served", 0)) for w in workers
            ),
        }

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    def run(self) -> None:
        """Blocking entry point for ``python -m repro serve``.

        SIGINT/SIGTERM trigger a graceful drain instead of tearing the
        loop down mid-request.
        """

        ensure_configured()

        async def _main():
            await self.start()
            loop = asyncio.get_running_loop()
            stopping = asyncio.Event()
            for sig in (signal.SIGINT, signal.SIGTERM):
                with contextlib.suppress(
                    NotImplementedError, RuntimeError, ValueError
                ):
                    loop.add_signal_handler(sig, stopping.set)
            _log.info(
                "service.listening",
                url=f"http://{self.host}:{self.port}",
                workers=self.workers,
                max_queue=self.max_queue,
                deadline_ms=self.deadline_ms,
            )
            serve = asyncio.ensure_future(self._server.serve_forever())
            await stopping.wait()
            _log.info(
                "service.draining",
                drain_timeout_s=round(self.drain_timeout, 1),
            )
            serve.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serve
            await self.stop()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    # -- HTTP ---------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    asyncio.LimitOverrunError,
                ):
                    break
                request = _parse_head(head)
                if request is None:
                    await self._respond(
                        writer, 400, {"error": "malformed request"},
                        close=True,
                    )
                    break
                method, target, headers = request
                length = int(headers.get("content-length", "0") or "0")
                if length > _MAX_BODY:
                    await self._respond(
                        writer, 413, {"error": "body too large"},
                        close=True,
                    )
                    break
                body = b""
                if length:
                    try:
                        body = await reader.readexactly(length)
                    except asyncio.IncompleteReadError:
                        break
                path = urlsplit(target).path.rstrip("/") or "/"
                request_id = (
                    headers.get("x-request-id") or new_request_id()
                )
                trace = new_trace(request_id) if obs_enabled() else None
                started = time.perf_counter()
                self._active_requests += 1
                try:
                    # The route task inherits the activated trace via
                    # contextvars (ensure_future copies the context).
                    token = activate(trace)
                    try:
                        routed = await self._route_watched(
                            reader, writer, method, target, headers, body
                        )
                    finally:
                        deactivate(token)
                    if routed is None:
                        break  # client went away mid-request
                    status, payload, extra = routed
                    extra = dict(extra)
                    extra.setdefault("X-Request-Id", request_id)
                    extra.setdefault("X-Worker-Id", str(self.worker_id))
                    route_label = (
                        path if path in _KNOWN_ROUTES
                        else _DEBUG_TRACE_PREFIX
                        if path.startswith(_DEBUG_TRACE_PREFIX)
                        else "other"
                    )
                    self._m_requests.labels(
                        route=route_label, status=str(status)
                    ).inc()
                    self._m_worker_requests.labels(
                        worker=str(self.worker_id)
                    ).inc()
                    keep = (
                        headers.get("connection", "").lower() != "close"
                    )
                    await self._respond(
                        writer, status, payload, close=not keep,
                        extra_headers=extra,
                    )
                    if trace is not None:
                        trace.finish(
                            status=status, route=path, method=method
                        )
                        TRACE_RING.put(trace)
                    _log.debug(
                        "http.request",
                        request_id=request_id,
                        method=method,
                        route=path,
                        status=status,
                        duration_ms=round(
                            (time.perf_counter() - started) * 1e3, 3
                        ),
                    )
                finally:
                    self._active_requests -= 1
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            self._m_response_failures.inc()
        except asyncio.CancelledError:
            pass  # event-loop teardown mid-request
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (
                ConnectionResetError, BrokenPipeError, OSError,
                asyncio.CancelledError,
            ):
                pass

    async def _route_watched(
        self, reader, writer, method, target, headers, body
    ) -> Optional[Tuple[int, dict, Dict[str, str]]]:
        """Route a request while watching for a client disconnect.

        Returns ``None`` when the client hung up first — the routed
        work is cancelled (which also reaps it from the admission
        queue if no other single-flight waiter shares it).
        """
        route_task = asyncio.ensure_future(
            self._route(method, target, headers, body)
        )
        try:
            while True:
                done, _ = await asyncio.wait(
                    {route_task}, timeout=_DISCONNECT_POLL_S
                )
                if done:
                    return route_task.result()
                if reader.at_eof() or writer.is_closing():
                    self._m_disconnects.inc()
                    route_task.cancel()
                    with contextlib.suppress(
                        asyncio.CancelledError, Exception
                    ):
                        await route_task
                    return None
        except asyncio.CancelledError:
            route_task.cancel()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await route_task
            raise

    async def _respond(
        self, writer, status: int, payload: Union[dict, str], close: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if isinstance(payload, str):
            # Raw text body (the /metrics exposition document).
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        reason = _REASONS.get(status, "Error")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode()
        # Chaos hook: may raise (simulating a peer reset mid-write) or
        # mutate the wire bytes (exercising client protocol handling).
        writer.write(FAULTS.fire("server.respond", head + body))
        await writer.drain()

    # -- routing ------------------------------------------------------------

    def _retry_after(self) -> int:
        """Seconds a shed client should wait before retrying."""
        estimate = self._coalescer.estimate_wait_s(extra=1)
        return max(1, min(_MAX_RETRY_AFTER_S, math.ceil(estimate)))

    async def _route(
        self, method: str, target: str, headers: dict, body: bytes
    ) -> Tuple[int, Union[dict, str], Dict[str, str]]:
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        with span("route", method=method, path=path):
            return await self._dispatch(
                method, path, parts.query, headers, body
            )

    async def _dispatch(
        self, method: str, path: str, query: str, headers: dict,
        body: bytes,
    ) -> Tuple[int, Union[dict, str], Dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return 200, self._health(), {}
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return 200, self.render_metrics(), {}
        if path == "/v1/profiles":
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            return 200, self.engine.profiles(), {}
        if path.startswith(_DEBUG_TRACE_PREFIX):
            if method != "GET":
                return 405, {"error": "use GET"}, {}
            trace_id = path[len(_DEBUG_TRACE_PREFIX):].strip("/")
            if not trace_id:
                return 200, {"traces": TRACE_RING.summaries()}, {}
            trace = TRACE_RING.get(trace_id)
            if trace is None:
                return 404, {
                    "error": f"no recent trace {trace_id!r}",
                    "hint": (
                        "the ring keeps the most recent "
                        f"{TRACE_RING.capacity} requests"
                    ),
                }, {}
            return 200, trace.to_dict(), {}
        if path in ("/v1/predict", "/v1/compare", "/v1/sweep"):
            if method not in ("GET", "POST"):
                return 405, {"error": "use GET or POST"}, {}
            try:
                request = _build_request(path.rsplit("/", 1)[1],
                                         query, body)
                deadline_ms = _deadline_ms(headers, self.deadline_ms)
            except ValueError as exc:
                return 400, {"error": str(exc)}, {}
            return await self._admit(request, deadline_ms)
        return 404, {"error": f"no route for {path}"}, {}

    async def _admit(
        self, request: ServiceRequest, deadline_ms: Optional[float]
    ) -> Tuple[int, dict, Dict[str, str]]:
        """Admission control + deadline around the coalescer."""
        if self.draining:
            return 503, {"error": "service is draining"}, {
                "Retry-After": str(_MAX_RETRY_AFTER_S),
            }
        key = request.key()
        # A request identical to one already in flight rides along via
        # single-flight for free — only *distinct* work is bounded.
        if (
            self._coalescer.depth() >= self.max_queue
            and key not in self._coalescer._inflight
        ):
            self._m_shed.inc()
            retry_after = self._retry_after()
            return 429, {
                "error": "service overloaded, retry later",
                "queue_depth": self._coalescer.depth(),
                "max_queue": self.max_queue,
                "retry_after_s": retry_after,
            }, {"Retry-After": str(retry_after)}
        # Carry the active trace across the executor boundary: worker
        # threads do not inherit contextvars, so the engine reactivates
        # request.trace around handle().  Single-flight riders share
        # the leader's computation — engine spans land in the leader's
        # trace; riders still record their own coalesce wait here.
        request = dataclasses.replace(request, trace=current_trace())
        submit = self._coalescer.submit(key, request)
        try:
            with span("coalesce", key="/".join(map(str, key))):
                if deadline_ms is not None:
                    status, payload = await asyncio.wait_for(
                        submit, timeout=deadline_ms / 1e3
                    )
                else:
                    status, payload = await submit
        except asyncio.TimeoutError:
            self._m_deadline_expired.inc()
            retry_after = self._retry_after()
            return 503, {
                "error": "deadline exceeded",
                "deadline_ms": deadline_ms,
                "retry_after_s": retry_after,
            }, {"Retry-After": str(retry_after)}
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # An engine batch failing wholesale (injected chaos, engine
            # bug) must degrade to a typed 500, never a hung socket.
            return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}
        return status, payload, {}

    def _health(self) -> dict:
        engine_health = self.engine.health()
        # Every count here reads the same registry counters /metrics
        # renders — the registry is the single source (asserted by
        # tests/test_service.py::test_healthz_derived_from_registry).
        admission = {
            "max_queue": self.max_queue,
            "queue_depth": (
                self._coalescer.depth()
                if self._coalescer is not None else 0
            ),
            "deadline_ms": self.deadline_ms,
            "shed": int(self._m_shed.value()),
            "deadline_expired": int(self._m_deadline_expired.value()),
            "disconnects": int(self._m_disconnects.value()),
            "response_failures": int(self._m_response_failures.value()),
            "draining": self.draining,
        }
        out = {
            "status": "draining" if self.draining else "ok",
            "workers": self.workers,
            "worker_id": self.worker_id,
            "requests_served": self.requests_served,
            "engine": engine_health,
            "coalescer": (
                self._coalescer.stats()
                if self._coalescer is not None else {}
            ),
            "admission": admission,
            "error_budget": error_budget(engine_health, admission),
        }
        fleet = self._fleet_health()
        if fleet is not None:
            out["fleet"] = fleet
        return out


def _parse_head(head: bytes) -> Optional[Tuple[str, str, dict]]:
    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, target, _version = request_line.split(" ", 2)
    except ValueError:
        return None
    headers = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            return None
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


def _deadline_ms(
    headers: dict, default_ms: Optional[float]
) -> Optional[float]:
    """Effective request deadline: server default, client-tightened.

    A client may *tighten* the server deadline via ``X-Deadline-Ms``
    but never extend it — the server bound is the operator's SLA.
    """
    raw = headers.get("x-deadline-ms")
    if raw is None:
        return default_ms
    try:
        requested = float(raw)
    except ValueError:
        raise ValueError("X-Deadline-Ms must be a number")
    if not requested > 0:
        raise ValueError("X-Deadline-Ms must be positive")
    if default_ms is None:
        return requested
    return min(requested, default_ms)


def _build_request(
    kind: str, query: str, body: bytes
) -> ServiceRequest:
    """Merge query-string and JSON-body parameters into a request."""
    params = {
        key: values[-1]
        for key, values in parse_qs(query, keep_blank_values=True).items()
    }
    if body:
        try:
            decoded = json.loads(body)
        except ValueError:
            raise ValueError("body is not valid JSON")
        if not isinstance(decoded, dict):
            raise ValueError("JSON body must be an object")
        params.update(decoded)
    benchmark = params.get("benchmark")
    if not benchmark or not isinstance(benchmark, str):
        raise ValueError("missing required parameter 'benchmark'")
    try:
        cores = int(params.get("cores", 4))
        scale = float(params.get("scale", 1.0))
    except (TypeError, ValueError):
        raise ValueError("'cores' must be an int and 'scale' a float")
    # Bounds double as a resource guard: scale drives workload
    # expansion, so inf/NaN or absurd values must not reach a worker.
    if not 1 <= cores <= _MAX_CORES:
        raise ValueError(f"'cores' must be in [1, {_MAX_CORES}]")
    if not 0.0 < scale <= _MAX_SCALE:  # False for NaN too
        raise ValueError(f"'scale' must be in (0, {_MAX_SCALE}]")
    configs = params.get("configs", ())
    if isinstance(configs, str):
        configs = tuple(c for c in configs.split(",") if c)
    elif isinstance(configs, (list, tuple)):
        configs = tuple(str(c) for c in configs)
    else:
        raise ValueError("'configs' must be a list or comma string")
    return ServiceRequest(
        kind=kind,
        benchmark=benchmark,
        config=str(params.get("config", "base")),
        cores=cores,
        scale=scale,
        configs=configs,
    )


class BackgroundServer:
    """A service on a daemon thread — the harness tests and the load
    generator boot the real server with, on an ephemeral port.

    Usage::

        with BackgroundServer(engine=engine) as server:
            client = ServiceClient(port=server.port)

    ``boot_timeout`` / ``join_timeout`` bound how long :meth:`start`
    waits for the server thread to come up and :meth:`stop` waits for
    it to exit; both raise a :class:`RuntimeError` naming the failure
    instead of silently proceeding.
    """

    def __init__(
        self,
        engine: Optional[PredictionEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_queue: int = 64,
        deadline_ms: Optional[float] = None,
        drain_timeout: float = 5.0,
        boot_timeout: float = 30.0,
        join_timeout: float = 10.0,
        worker_id: int = 0,
    ) -> None:
        self.service = PredictionService(
            engine=engine, host=host, port=port, workers=workers,
            max_queue=max_queue, deadline_ms=deadline_ms,
            drain_timeout=drain_timeout, worker_id=worker_id,
        )
        self.boot_timeout = boot_timeout
        self.join_timeout = join_timeout
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._drain_on_stop = True
        self._error: Optional[BaseException] = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=self.boot_timeout):
            raise RuntimeError(
                f"service thread {self._thread.name!r} failed to "
                f"become ready within boot_timeout="
                f"{self.boot_timeout:.1f}s (still "
                f"{'alive' if self._thread.is_alive() else 'dead'})"
            )
        if self._error is not None:
            raise RuntimeError(
                f"service failed to start: {self._error}"
            ) from self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface boot failures to start()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.service.start()
        self.port = self.service.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.stop(drain=self._drain_on_stop)

    def stop(self, drain: bool = True) -> None:
        """Stop the server thread (graceful drain unless ``drain=False``)."""
        self._drain_on_stop = drain
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=self.join_timeout)
            if self._thread.is_alive():
                raise RuntimeError(
                    f"service thread {self._thread.name!r} failed to "
                    f"stop within join_timeout={self.join_timeout:.1f}s"
                )
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = ["BackgroundServer", "PredictionService"]
