"""Asyncio HTTP/JSON front end of the prediction service.

Stdlib only: ``asyncio.start_server`` plus a small HTTP/1.1
keep-alive parser — no web framework, so the service runs anywhere the
reproduction runs.  The event loop owns parsing and routing; engine
work happens on a thread pool behind the
:class:`~repro.service.batching.Coalescer`, which deduplicates
identical in-flight requests (single-flight) and ships distinct ones
to the engine in micro-batches.

Endpoints::

    GET  /healthz                         liveness + engine/coalescer stats
    GET  /v1/profiles                     resident + persisted profiles
    GET|POST /v1/predict                  RPPM prediction
    GET|POST /v1/compare                  prediction vs. simulation
    GET|POST /v1/sweep                    one profile, many design points

Parameters come from the query string or a JSON body (body wins):
``benchmark`` (required), ``config`` (default ``base``), ``cores``
(default 4), ``scale`` (default 1.0) and, for sweep, ``configs`` (comma
list / JSON array; default: all Table IV points).
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.batching import Coalescer
from repro.service.engine import PredictionEngine, ServiceRequest

#: Upper bound on request head + body sizes (this is a compute service,
#: not a file store).
_MAX_HEAD = 64 * 1024
_MAX_BODY = 1024 * 1024
#: Parameter guards: a single request must not be able to commission an
#: arbitrarily large workload expansion on an engine worker.
_MAX_CORES = 1024
_MAX_SCALE = 100.0


class PredictionService:
    """One engine + coalescer + asyncio HTTP server."""

    def __init__(
        self,
        engine: Optional[PredictionEngine] = None,
        host: str = "127.0.0.1",
        port: int = 8000,
        workers: int = 2,
    ) -> None:
        self.engine = engine if engine is not None else PredictionEngine()
        self.host = host
        self.port = port
        self.workers = max(1, workers)
        self.requests_served = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._coalescer: Optional[Coalescer] = None
        self._connections: set = set()

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-engine",
        )
        self._coalescer = Coalescer(
            self.engine.handle_batch,
            self._executor,
            max_workers=self.workers,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=_MAX_HEAD,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Shake off idle keep-alive connections so their handler tasks
        # exit before the event loop is torn down.
        for writer in list(self._connections):
            writer.close()
        await asyncio.sleep(0)
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    def run(self) -> None:
        """Blocking entry point for ``python -m repro serve``."""

        async def _main():
            await self.start()
            print(
                f"repro service listening on "
                f"http://{self.host}:{self.port} "
                f"({self.workers} engine workers)",
                flush=True,
            )
            await self._server.serve_forever()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass

    # -- HTTP ---------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    asyncio.LimitOverrunError,
                ):
                    break
                request = _parse_head(head)
                if request is None:
                    await self._respond(
                        writer, 400, {"error": "malformed request"},
                        close=True,
                    )
                    break
                method, target, headers = request
                length = int(headers.get("content-length", "0") or "0")
                if length > _MAX_BODY:
                    await self._respond(
                        writer, 413, {"error": "body too large"},
                        close=True,
                    )
                    break
                body = b""
                if length:
                    try:
                        body = await reader.readexactly(length)
                    except asyncio.IncompleteReadError:
                        break
                status, payload = await self._route(method, target, body)
                self.requests_served += 1
                keep = headers.get("connection", "").lower() != "close"
                await self._respond(
                    writer, status, payload, close=not keep
                )
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass  # event-loop teardown mid-request
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (
                ConnectionResetError, BrokenPipeError, OSError,
                asyncio.CancelledError,
            ):
                pass

    async def _respond(
        self, writer, status: int, payload: dict, close: bool
    ) -> None:
        body = json.dumps(payload).encode()
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error",
        }.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            f"\r\n"
        ).encode()
        writer.write(head + body)
        await writer.drain()

    # -- routing ------------------------------------------------------------

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, dict]:
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self._health()
        if path == "/v1/profiles":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self.engine.profiles()
        if path in ("/v1/predict", "/v1/compare", "/v1/sweep"):
            if method not in ("GET", "POST"):
                return 405, {"error": "use GET or POST"}
            try:
                request = _build_request(path.rsplit("/", 1)[1],
                                         parts.query, body)
            except ValueError as exc:
                return 400, {"error": str(exc)}
            return await self._coalescer.submit(request.key(), request)
        return 404, {"error": f"no route for {path}"}

    def _health(self) -> dict:
        return {
            "status": "ok",
            "workers": self.workers,
            "requests_served": self.requests_served,
            "engine": self.engine.health(),
            "coalescer": (
                self._coalescer.stats()
                if self._coalescer is not None else {}
            ),
        }


def _parse_head(head: bytes) -> Optional[Tuple[str, str, dict]]:
    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, target, _version = request_line.split(" ", 2)
    except ValueError:
        return None
    headers = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            return None
        headers[name.strip().lower()] = value.strip()
    return method.upper(), target, headers


def _build_request(
    kind: str, query: str, body: bytes
) -> ServiceRequest:
    """Merge query-string and JSON-body parameters into a request."""
    params = {
        key: values[-1]
        for key, values in parse_qs(query, keep_blank_values=True).items()
    }
    if body:
        try:
            decoded = json.loads(body)
        except ValueError:
            raise ValueError("body is not valid JSON")
        if not isinstance(decoded, dict):
            raise ValueError("JSON body must be an object")
        params.update(decoded)
    benchmark = params.get("benchmark")
    if not benchmark or not isinstance(benchmark, str):
        raise ValueError("missing required parameter 'benchmark'")
    try:
        cores = int(params.get("cores", 4))
        scale = float(params.get("scale", 1.0))
    except (TypeError, ValueError):
        raise ValueError("'cores' must be an int and 'scale' a float")
    # Bounds double as a resource guard: scale drives workload
    # expansion, so inf/NaN or absurd values must not reach a worker.
    if not 1 <= cores <= _MAX_CORES:
        raise ValueError(f"'cores' must be in [1, {_MAX_CORES}]")
    if not 0.0 < scale <= _MAX_SCALE:  # False for NaN too
        raise ValueError(f"'scale' must be in (0, {_MAX_SCALE}]")
    configs = params.get("configs", ())
    if isinstance(configs, str):
        configs = tuple(c for c in configs.split(",") if c)
    elif isinstance(configs, (list, tuple)):
        configs = tuple(str(c) for c in configs)
    else:
        raise ValueError("'configs' must be a list or comma string")
    return ServiceRequest(
        kind=kind,
        benchmark=benchmark,
        config=str(params.get("config", "base")),
        cores=cores,
        scale=scale,
        configs=configs,
    )


class BackgroundServer:
    """A service on a daemon thread — the harness tests and the load
    generator boot the real server with, on an ephemeral port.

    Usage::

        with BackgroundServer(engine=engine) as server:
            client = ServiceClient(port=server.port)
    """

    def __init__(
        self,
        engine: Optional[PredictionEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
    ) -> None:
        self.service = PredictionService(
            engine=engine, host=host, port=port, workers=workers
        )
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._error: Optional[BaseException] = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        if self._error is not None:
            raise RuntimeError(
                f"service failed to start: {self._error}"
            ) from self._error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface boot failures to start()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.service.start()
        self.port = self.service.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.service.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = ["BackgroundServer", "PredictionService"]
