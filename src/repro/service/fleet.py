"""Pre-fork serving fleet: N worker processes, one port, one store.

``repro serve --workers N`` runs N independent event loops — each a
full :class:`~repro.service.server.PredictionService` with its own
engine, thread pool and admission plane — accepting on a *single*
port.  Two sharing mechanisms make the fleet cheaper than N cold
services:

* **Kernel accept balancing** via ``SO_REUSEPORT`` (Linux): every
  worker binds its own listening socket on the shared port and the
  kernel spreads incoming connections across them.  The parent never
  touches a connection; it only discovers the port with a bound,
  *non-listening* probe socket (a bound-but-not-listening TCP socket
  is invisible to the listener hash, so it receives no traffic) and
  keeps that probe open so the port cannot be reused out from under a
  respawning worker.  On platforms without ``SO_REUSEPORT`` the
  parent binds one listening socket and ships it to each child over
  the multiprocessing fd-passing channel — correctness is identical,
  balancing degrades to accept-queue order.
* **A shared artifact plane**: workers exchange warm profiles, traces
  and ILP tables through the content-addressed store instead of
  recomputing per process.  Boot-time warm-fill goes through the
  work queue (:mod:`repro.experiments.workqueue`) so N workers fill
  the store once, not N times, and the store's generation stamp lets
  resident engine LRUs notice a prune made by any sibling.

The supervisor mirrors ``experiments.workqueue.WorkerSupervisor``:
poll-and-respawn of dead workers (the SIGKILL chaos scenario), a
SIGTERM fan-out for graceful drain, and a kill escalation when a
child outstays ``drain_timeout``.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import signal
import socket
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.obs import get_logger
from repro.obs.logging import ensure_configured

_log = get_logger("repro.fleet")

#: (benchmark, scale) pairs every booting worker asks the work queue
#: to materialize in the shared store — the hot presets a cold fleet
#: would otherwise each compute inline.
DEFAULT_WARM_PROFILES: Tuple[Tuple[str, float], ...] = (
    ("rodinia.nn", 0.5),
)


def reuse_port_supported() -> bool:
    """Whether this platform can kernel-balance accepts (Linux)."""
    return hasattr(socket, "SO_REUSEPORT")


def _bind(
    host: str, port: int, reuse_port: bool, listen: bool
) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(256)
    except BaseException:
        sock.close()
        raise
    return sock


def _warm_fill(store, presets: Sequence[Tuple[str, float]]) -> int:
    """Enqueue missing preset profiles; returns how many were enqueued.

    Queue-routed on purpose: enqueues are content-keyed and idempotent
    and claims are ``O_EXCL``, so when N workers boot together each
    missing profile is computed exactly once fleet-wide, and every
    worker's engine then finds it in the store.
    """
    from repro.experiments.workqueue import Job, WorkQueue
    from repro.experiments.suites import build_workload
    from repro.experiments.store import ProfileStore
    from repro.service.engine import resolve_benchmark

    present = set(store.list_keys("profiles"))
    jobs = []
    for benchmark, scale in presets:
        ref = resolve_benchmark(benchmark)
        spec = build_workload(ref, scale)
        key = ProfileStore.profile_key(
            ref.label, int(spec.seed), scale, 4096
        )
        if key in present:
            continue
        jobs.append(Job(
            kind="profile", suite=ref.suite, benchmark=ref.name,
            scale=scale,
        ))
    if not jobs:
        return 0
    queue = WorkQueue(store.root)
    return queue.enqueue_many(jobs)


def _drain_warm_fill(store, stop: threading.Event) -> None:
    """Background queue drain: compute whatever warm-fill enqueued."""
    from repro.experiments.workqueue import JobExecutor, WorkQueue, Worker

    queue = WorkQueue(store.root)
    worker = Worker(
        queue, JobExecutor(store), drain=True, stop_event=stop
    )
    worker.run()


def _fleet_worker_main(config: Dict[str, object]) -> None:
    """Entry point of one fleet worker process (spawn-safe)."""
    ensure_configured()
    from repro.experiments.store import ProfileStore
    from repro.service.engine import PredictionEngine
    from repro.service.server import PredictionService

    store = None
    if config["store_root"] is not None:
        store = ProfileStore(Path(str(config["store_root"])), strict=False)
    engine = PredictionEngine(store=store)
    warm = tuple(config.get("warm_profiles") or ())
    if store is not None and warm:
        stop = threading.Event()
        try:
            enqueued = _warm_fill(store, warm)
        except Exception as exc:  # warm-fill must never block serving
            _log.warning("fleet.warm_fill_failed", error=str(exc))
            enqueued = 0
        # Always drain: a sibling may have enqueued work we should
        # help with even when our own presets were already present.
        thread = threading.Thread(
            target=_drain_warm_fill, args=(store, stop),
            name="repro-warm-fill", daemon=True,
        )
        thread.start()
        _log.info(
            "fleet.warm_fill",
            worker_id=config["worker_id"], enqueued=enqueued,
        )
    service = PredictionService(
        engine=engine,
        host=str(config["host"]),
        port=int(config["port"]),  # shared fleet port
        workers=int(config["threads"]),
        max_queue=int(config["max_queue"]),
        deadline_ms=config["deadline_ms"],
        drain_timeout=float(config["drain_timeout"]),
        worker_id=int(config["worker_id"]),
        reuse_port=bool(config["reuse_port"]),
        sock=config.get("sock"),
        fleet_state_dir=Path(str(config["state_dir"])),
    )
    # run() installs SIGTERM/SIGINT -> graceful drain handlers.
    service.run()


class ServingFleet:
    """Supervisor for a pre-fork fleet of prediction services."""

    def __init__(
        self,
        store_root: Optional[Path] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        threads: int = 2,
        max_queue: int = 64,
        deadline_ms: Optional[float] = None,
        drain_timeout: float = 5.0,
        respawn: bool = True,
        warm_profiles: Sequence[Tuple[str, float]] = (),
        poll_s: float = 0.1,
    ) -> None:
        self.store_root = (
            Path(store_root) if store_root is not None else None
        )
        self.host = host
        self.port = port
        self.workers = max(1, int(workers))
        self.threads = max(1, int(threads))
        self.max_queue = max_queue
        self.deadline_ms = deadline_ms
        self.drain_timeout = float(drain_timeout)
        self.respawn = respawn
        self.warm_profiles = tuple(warm_profiles)
        self.poll_s = float(poll_s)
        if self.store_root is not None:
            self.state_dir = self.store_root / "fleet"
        else:
            import tempfile

            self.state_dir = Path(
                tempfile.mkdtemp(prefix="repro-fleet-")
            )
        self.reuse_port = reuse_port_supported()
        self.respawns = 0
        self._probe: Optional[socket.socket] = None
        self._listen_sock: Optional[socket.socket] = None
        self._procs: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._ctx = multiprocessing.get_context("spawn")
        self._stopping = threading.Event()
        self._watch_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServingFleet":
        """Bind the shared port and spawn every worker."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        # Sweep stale heartbeats so /healthz never counts a previous
        # fleet's workers against this one.
        for stale in self.state_dir.glob("worker-*.json"):
            with contextlib.suppress(OSError):
                stale.unlink()
        if self.reuse_port:
            # Bound but never listening: reserves the port (and
            # discovers it, when ephemeral) without stealing accepts.
            self._probe = _bind(
                self.host, self.port, reuse_port=True, listen=False
            )
            self.port = self._probe.getsockname()[1]
        else:
            self._listen_sock = _bind(
                self.host, self.port, reuse_port=False, listen=True
            )
            self.port = self._listen_sock.getsockname()[1]
        for worker_id in range(self.workers):
            self._spawn(worker_id)
        _log.info(
            "fleet.started",
            url=f"http://{self.host}:{self.port}",
            workers=self.workers,
            reuse_port=self.reuse_port,
        )
        return self

    def _worker_config(self, worker_id: int) -> Dict[str, object]:
        return {
            "worker_id": worker_id,
            "host": self.host,
            "port": self.port,
            "threads": self.threads,
            "max_queue": self.max_queue,
            "deadline_ms": self.deadline_ms,
            "drain_timeout": self.drain_timeout,
            "store_root": (
                str(self.store_root)
                if self.store_root is not None else None
            ),
            "state_dir": str(self.state_dir),
            "reuse_port": self.reuse_port,
            # The fallback socket rides the multiprocessing fd-passing
            # reducers; None on the SO_REUSEPORT path.
            "sock": self._listen_sock,
            "warm_profiles": self.warm_profiles,
        }

    def _spawn(self, worker_id: int) -> None:
        proc = self._ctx.Process(
            target=_fleet_worker_main,
            args=(self._worker_config(worker_id),),
            name=f"repro-fleet-{worker_id}",
        )
        proc.start()
        self._procs[worker_id] = proc

    def poll(self) -> int:
        """One supervision step: respawn dead workers; returns alive."""
        alive = 0
        for worker_id, proc in list(self._procs.items()):
            if proc.is_alive():
                alive += 1
                continue
            proc.join(timeout=0)
            if self._stopping.is_set() or not self.respawn:
                continue
            _log.warning(
                "fleet.worker_died",
                worker_id=worker_id, exitcode=proc.exitcode,
            )
            self.respawns += 1
            self._spawn(worker_id)
            alive += 1
        return alive

    def watch(self) -> None:
        """Run the respawn loop on a daemon thread (harness mode)."""
        if self._watch_thread is not None:
            return

        def _loop() -> None:
            while not self._stopping.wait(self.poll_s):
                self.poll()

        self._watch_thread = threading.Thread(
            target=_loop, name="repro-fleet-watch", daemon=True
        )
        self._watch_thread.start()

    def alive(self) -> int:
        return sum(1 for p in self._procs.values() if p.is_alive())

    def kill_worker(self, worker_id: int) -> Optional[int]:
        """SIGKILL one worker (chaos hook); returns its pid."""
        proc = self._procs.get(worker_id)
        if proc is None or not proc.is_alive():
            return None
        pid = proc.pid
        proc.kill()
        return pid

    def stop(self, drain: bool = True) -> None:
        """Fan out graceful drain, then escalate to SIGKILL."""
        self._stopping.set()
        if self._watch_thread is not None:
            self._watch_thread.join(timeout=2.0)
            self._watch_thread = None
        for proc in self._procs.values():
            if proc.is_alive():
                with contextlib.suppress(
                    ProcessLookupError, ValueError, AttributeError
                ):
                    proc.terminate()  # SIGTERM -> worker drains
        deadline = time.monotonic() + (
            self.drain_timeout + 5.0 if drain else 1.0
        )
        for proc in self._procs.values():
            remaining = deadline - time.monotonic()
            proc.join(timeout=max(0.1, remaining))
            if proc.is_alive():
                _log.warning(
                    "fleet.kill_escalation", pid=proc.pid
                )
                proc.kill()
                proc.join(timeout=5.0)
        self._procs.clear()
        for sock in (self._probe, self._listen_sock):
            if sock is not None:
                with contextlib.suppress(OSError):
                    sock.close()
        self._probe = None
        self._listen_sock = None
        _log.info("fleet.stopped", respawns=self.respawns)

    def run(self) -> None:
        """Blocking entry point for ``repro serve --workers N``."""
        ensure_configured()
        self.start()
        stopping = self._stopping

        def _signal(_signum, _frame) -> None:
            stopping.set()

        previous = {}
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(ValueError, OSError):
                previous[sig] = signal.signal(sig, _signal)
        try:
            while not stopping.wait(self.poll_s):
                self.poll()
        finally:
            for sig, handler in previous.items():
                with contextlib.suppress(ValueError, OSError):
                    signal.signal(sig, handler)
            self.stop(drain=True)

    def __enter__(self) -> "ServingFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def wait_fleet_ready(
    host: str,
    port: int,
    workers: int,
    timeout_s: float = 60.0,
) -> None:
    """Block until every fleet worker answers ``/healthz``.

    With SO_REUSEPORT the kernel may route every early probe to one
    worker, so readiness is judged by the heartbeat aggregate (visible
    from any worker), not by who answered.
    """
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(host=host, port=port, timeout=5.0, retries=0)
    deadline = time.monotonic() + timeout_s
    last_error: Optional[BaseException] = None
    while time.monotonic() < deadline:
        try:
            health = client.healthz()
        except (ServiceError, OSError) as exc:
            last_error = exc
            time.sleep(0.1)
            continue
        fleet = health.get("fleet") or {}
        if fleet.get("alive", 0) >= workers:
            return
        time.sleep(0.1)
    raise RuntimeError(
        f"fleet on {host}:{port} not ready within {timeout_s:.0f}s "
        f"(last error: {last_error})"
    )


__all__ = [
    "DEFAULT_WARM_PROFILES",
    "ServingFleet",
    "reuse_port_supported",
    "wait_fleet_ready",
]
