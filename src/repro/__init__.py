"""RPPM: Rapid Performance Prediction of Multithreaded Workloads.

Reproduction of De Pestel et al., ISPASS 2019.  Typical use::

    from repro import arch, profile_workload, predict, simulate
    from repro.workloads import rodinia_workload

    spec = rodinia_workload("hotspot", threads=4)
    profile = profile_workload(spec)          # one-time cost
    prediction = predict(profile, arch.BASE)  # any configuration
    golden = simulate(spec, arch.BASE)        # reference simulator
"""

from repro import arch
from repro.core.baselines import predict_crit, predict_main
from repro.core.bottlegraph import Bottlegraph, bottlegraph_from_timeline
from repro.core.cpi_stack import CPIStack
from repro.core.rppm import PredictionResult, predict
from repro.profiler.profiler import profile_workload
from repro.simulator.multicore import simulate

__version__ = "1.0.0"

__all__ = [
    "arch",
    "Bottlegraph",
    "bottlegraph_from_timeline",
    "CPIStack",
    "PredictionResult",
    "predict",
    "predict_crit",
    "predict_main",
    "profile_workload",
    "simulate",
    "__version__",
]
