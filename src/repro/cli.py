"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow (Fig. 1):

* ``profile``  — profile a named benchmark once, write the JSON profile.
* ``predict``  — predict a profile (or benchmark) on a design point.
* ``simulate`` — run the golden-reference simulator.
* ``compare``  — predict *and* simulate, report the error and stacks.
* ``report``   — regenerate a paper artifact (table1/table3/figure4/
  figure5/table5/figure6/ablations) and print it.  Profiling,
  prediction and simulation inputs prefetch over ``--jobs N`` worker
  processes (default: CPU count) and persist in the on-disk artifact
  store (``REPRO_CACHE_DIR``), so re-running a report — or running a
  second report over the same suite — is nearly free.
* ``bench``    — measure profiling throughput (vectorized vs seed
  scalar engines, reuse-distance and ILP scoreboard) and write
  ``BENCH_profiler.json``; ``--check`` exits non-zero when a speedup
  falls below the committed floor (the CI perf smoke test).
* ``list``     — list benchmarks and design points.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from repro.arch.presets import TABLE_IV, table_iv_config
from repro.core.rppm import predict
from repro.profiler.profile import WorkloadProfile
from repro.profiler.profiler import profile_workload
from repro.simulator.multicore import simulate
from repro.workloads.generator import expand
from repro.workloads.parsec import PARSEC, parsec_workload
from repro.workloads.rodinia import RODINIA, rodinia_workload


def _build_workload(name: str, scale: float):
    """Resolve ``suite.benchmark`` (or bare benchmark) to a spec."""
    if "." in name:
        suite, bench = name.split(".", 1)
    elif name in RODINIA:
        suite, bench = "rodinia", name
    elif name in PARSEC:
        suite, bench = "parsec", name
    else:
        raise SystemExit(
            f"unknown benchmark {name!r}; see `python -m repro list`"
        )
    if suite == "rodinia":
        return rodinia_workload(bench, scale=scale)
    if suite == "parsec":
        return parsec_workload(bench, scale=scale)
    raise SystemExit(f"unknown suite {suite!r}")


def _load_profile(args) -> WorkloadProfile:
    if args.profile_json:
        with open(args.profile_json) as fh:
            return WorkloadProfile.from_dict(json.load(fh))
    spec = _build_workload(args.benchmark, args.scale)
    return profile_workload(spec)


def _stack_line(stack) -> str:
    return "  ".join(
        f"{name}={value:.3f}" for name, value in stack.cpi().items()
    )


def cmd_list(args) -> int:
    print("rodinia:", " ".join(sorted(RODINIA)))
    print("parsec:", " ".join(PARSEC))
    print("design points:", " ".join(TABLE_IV))
    return 0


def cmd_profile(args) -> int:
    spec = _build_workload(args.benchmark, args.scale)
    t0 = time.perf_counter()
    profile = profile_workload(spec)
    dt = time.perf_counter() - t0
    payload = profile.to_dict()
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh)
        print(f"wrote {args.output} ({dt:.2f}s, "
              f"{profile.n_instructions:,} micro-ops)")
    else:
        json.dump(payload, sys.stdout)
    return 0


def cmd_predict(args) -> int:
    profile = _load_profile(args)
    config = table_iv_config(args.config, cores=args.cores)
    result = predict(profile, config)
    seconds = config.cycles_to_seconds(result.total_cycles)
    print(f"{profile.name} on {config.name}: "
          f"{result.total_cycles:,.0f} cycles "
          f"({seconds * 1e6:.1f} us @ {config.core.frequency_ghz} GHz)")
    for t in result.threads:
        print(f"  thread {t.thread_id}: active {t.active_cycles:,.0f} "
              f"idle {t.idle_cycles:,.0f}")
    print("  CPI stack:", _stack_line(result.average_stack()))
    return 0


def cmd_simulate(args) -> int:
    spec = _build_workload(args.benchmark, args.scale)
    config = table_iv_config(args.config, cores=args.cores)
    result = simulate(expand(spec), config)
    seconds = config.cycles_to_seconds(result.total_cycles)
    print(f"{result.workload} on {config.name}: "
          f"{result.total_cycles:,.0f} cycles "
          f"({seconds * 1e6:.1f} us), "
          f"{result.invalidations} invalidations")
    print("  CPI stack:", _stack_line(result.average_stack()))
    return 0


def cmd_compare(args) -> int:
    spec = _build_workload(args.benchmark, args.scale)
    trace = expand(spec)
    profile = profile_workload(trace)
    config = table_iv_config(args.config, cores=args.cores)
    pred = predict(profile, config)
    sim = simulate(trace, config)
    err = pred.total_cycles / sim.total_cycles - 1.0
    print(f"{trace.name} on {config.name}:")
    print(f"  RPPM     : {pred.total_cycles:,.0f} cycles")
    print(f"  simulated: {sim.total_cycles:,.0f} cycles")
    print(f"  error    : {err:+.1%}")
    print("  RPPM stack:", _stack_line(pred.average_stack()))
    print("  sim  stack:", _stack_line(sim.average_stack()))
    return 0


def cmd_report(args) -> int:
    from repro.experiments.suites import shared_cache
    cache = shared_cache(scale=args.scale)
    jobs = args.jobs
    artifact = args.artifact
    if artifact == "table1":
        from repro.experiments.accumulation import (
            render_table1, run_table1,
        )
        print(render_table1(run_table1()))
    elif artifact == "table3":
        from repro.experiments.sync_counts import (
            render_table3, run_table3,
        )
        print(render_table3(run_table3(cache=cache, jobs=jobs)))
    elif artifact == "figure4":
        from repro.experiments.accuracy import (
            render_figure4, run_figure4,
        )
        print(render_figure4(run_figure4(cache=cache, jobs=jobs)))
    elif artifact == "figure5":
        from repro.experiments.cpi_stacks import (
            render_figure5, run_figure5,
        )
        print(render_figure5(run_figure5(cache=cache, jobs=jobs)))
    elif artifact == "table5":
        from repro.experiments.design_space import (
            render_table5, run_table5,
        )
        print(render_table5(run_table5(cache=cache, jobs=jobs)))
    elif artifact == "figure6":
        from repro.experiments.bottlegraphs import (
            render_figure6, run_figure6,
        )
        print(render_figure6(run_figure6(cache=cache, jobs=jobs)))
    elif artifact == "ablations":
        from repro.experiments.ablations import (
            render_ablations, run_ablations,
        )
        print(render_ablations(run_ablations(cache=cache, jobs=jobs)))
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown artifact {artifact!r}")
    return 0


def cmd_bench(args) -> int:
    from repro.experiments.bench import (
        check_bench, render_bench, run_profiler_bench,
    )
    result = run_profiler_bench(
        quick=args.quick, scale=args.scale, output=args.output
    )
    print(render_bench(result))
    if args.output:
        print(f"wrote {args.output}")
    if args.check:
        failures = check_bench(result)
        for line in failures:
            print(f"CHECK FAILED: {line}", file=sys.stderr)
        if failures:
            return 1
        print("bench --check: all committed floors cleared")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RPPM reproduction toolchain (ISPASS 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and design points")

    def add_common(p, benchmark=True):
        if benchmark:
            p.add_argument("benchmark",
                           help="benchmark, e.g. rodinia.hotspot")
        p.add_argument("--scale", type=float, default=1.0,
                       help="workload scale factor (default 1.0)")
        p.add_argument("--config", choices=TABLE_IV, default="base",
                       help="Table IV design point (default: base)")
        p.add_argument("--cores", type=int, default=4,
                       help="core count (default 4)")

    p = sub.add_parser("profile", help="profile a benchmark to JSON")
    p.add_argument("benchmark")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("-o", "--output", help="output file (default stdout)")

    p = sub.add_parser("predict", help="predict from a profile")
    p.add_argument("benchmark", nargs="?", default=None)
    p.add_argument("--profile-json",
                   help="use a stored profile instead of re-profiling")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--config", choices=TABLE_IV, default="base")
    p.add_argument("--cores", type=int, default=4)

    p = sub.add_parser("simulate", help="run the reference simulator")
    add_common(p)

    p = sub.add_parser("compare", help="predict and simulate")
    add_common(p)

    p = sub.add_parser("report", help="regenerate a paper artifact")
    p.add_argument("artifact", choices=[
        "table1", "table3", "figure4", "figure5", "table5", "figure6",
        "ablations",
    ])
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for profiling/simulation "
                        "prefetch (default: CPU count; 1 = serial)")

    p = sub.add_parser(
        "bench", help="measure profiling throughput (BENCH trajectory)"
    )
    p.add_argument("--quick", action="store_true",
                   help="small benchmark subset, fewer repetitions")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("-o", "--output", default="BENCH_profiler.json",
                   help="JSON record path (default BENCH_profiler.json)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero if any engine speedup falls "
                        "below its committed floor (CI perf smoke)")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "predict" and not (
        args.benchmark or args.profile_json
    ):
        raise SystemExit("predict needs a benchmark or --profile-json")
    handlers = {
        "list": cmd_list,
        "profile": cmd_profile,
        "predict": cmd_predict,
        "simulate": cmd_simulate,
        "compare": cmd_compare,
        "report": cmd_report,
        "bench": cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
