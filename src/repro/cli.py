"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow (Fig. 1):

* ``profile``  — profile a named benchmark once, write the JSON profile.
* ``predict``  — predict a profile (or benchmark) on a design point.
* ``simulate`` — run the golden-reference simulator.
* ``compare``  — predict *and* simulate, report the error and stacks.
* ``report``   — regenerate a paper artifact (table1/table3/figure4/
  figure5/table5/figure6/ablations) and print it.  Profiling,
  prediction and simulation inputs prefetch over ``--jobs N`` worker
  processes (default: CPU count) and persist in the on-disk artifact
  store (``REPRO_CACHE_DIR``), so re-running a report — or running a
  second report over the same suite — is nearly free.
* ``bench``    — measure profiling throughput (vectorized vs seed
  scalar engines, reuse-distance and ILP scoreboard) and write
  ``BENCH_profiler.json``, then serving throughput through the real
  HTTP stack into ``BENCH_service.json``; ``--check`` exits non-zero
  when a speedup or the serving rate falls below the committed floor
  (the CI perf smoke test).
* ``serve``    — run the prediction service (asyncio HTTP/JSON, see
  :mod:`repro.service`): ``/v1/predict``, ``/v1/compare``,
  ``/v1/sweep``, ``/v1/profiles``, ``/healthz``.
* ``store``    — inspect (``stats``) or garbage-collect (``prune``)
  the on-disk artifact store, including the content-addressed
  ``traces`` kind the trace cache persists.
* ``work``     — the crash-safe distributed work queue over the store
  (:mod:`repro.experiments.workqueue`): ``enqueue`` a suite's jobs,
  ``run`` a supervised worker fleet (``--workers N``; workers on any
  host sharing the store directory cooperate via lease files and
  survive SIGKILL), ``stats`` the queue state.
* ``list``     — list benchmarks and design points.

``predict`` and ``compare`` render through the same payload builders
the service returns (:mod:`repro.service.engine`), so a service
response re-rendered locally is byte-identical to the CLI output.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from repro.arch.presets import TABLE_IV, table_iv_config
from repro.core.rppm import predict
from repro.core.session import Session
from repro.experiments.suites import build_workload
from repro.profiler.profile import WorkloadProfile
from repro.profiler.profiler import profile_workload
from repro.service.engine import (
    PredictionEngine,
    ServiceError,
    format_compare,
    format_prediction,
    prediction_payload,
    resolve_benchmark,
)
from repro.simulator.multicore import simulate
from repro.workloads.parsec import PARSEC
from repro.workloads.rodinia import RODINIA


def _build_workload(name: str, scale: float):
    """Resolve ``suite.benchmark`` (or bare benchmark) to a spec."""
    try:
        ref = resolve_benchmark(name)
    except ValueError as exc:
        raise SystemExit(str(exc))
    return build_workload(ref, scale)


def _load_profile(args) -> WorkloadProfile:
    if args.profile_json:
        with open(args.profile_json) as fh:
            return WorkloadProfile.from_dict(json.load(fh))
    spec = _build_workload(args.benchmark, args.scale)
    # One-shot input for a single prediction: in-memory caches only.
    return profile_workload(spec, session=Session.ephemeral())


def cmd_list(args) -> int:
    print("rodinia:", " ".join(sorted(RODINIA)))
    print("parsec:", " ".join(PARSEC))
    print("design points:", " ".join(TABLE_IV))
    return 0


def cmd_profile(args) -> int:
    spec = _build_workload(args.benchmark, args.scale)
    # The documented entry point to the cache plane: expansions and
    # ILP tables persist under the default store root, so repeat
    # profiling of the same (benchmark, scale) is mostly cache hits.
    session = Session.from_store()
    t0 = time.perf_counter()
    profile = profile_workload(spec, session=session)
    dt = time.perf_counter() - t0
    payload = profile.to_dict()
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(payload, fh)
        print(f"wrote {args.output} ({dt:.2f}s, "
              f"{profile.n_instructions:,} micro-ops)")
    else:
        json.dump(payload, sys.stdout)
    return 0


def cmd_predict(args) -> int:
    if args.profile_json:
        profile = _load_profile(args)
        config = table_iv_config(args.config, cores=args.cores)
        payload = prediction_payload(predict(profile, config), config)
    else:
        try:
            payload = PredictionEngine().predict(
                args.benchmark, args.config, args.cores, args.scale
            )
        except ServiceError as exc:
            raise SystemExit(str(exc))
    print(format_prediction(payload))
    return 0


def cmd_simulate(args) -> int:
    spec = _build_workload(args.benchmark, args.scale)
    config = table_iv_config(args.config, cores=args.cores)
    result = simulate(spec, config, session=Session.from_store())
    seconds = config.cycles_to_seconds(result.total_cycles)
    stack = "  ".join(
        f"{name}={value:.3f}"
        for name, value in result.average_stack().cpi().items()
    )
    print(f"{result.workload} on {config.name}: "
          f"{result.total_cycles:,.0f} cycles "
          f"({seconds * 1e6:.1f} us), "
          f"{result.invalidations} invalidations")
    print("  CPI stack:", stack)
    return 0


def cmd_compare(args) -> int:
    try:
        payload = PredictionEngine().compare(
            args.benchmark, args.config, args.cores, args.scale
        )
    except ServiceError as exc:
        raise SystemExit(str(exc))
    print(format_compare(payload))
    return 0


def cmd_report(args) -> int:
    from repro.experiments.suites import shared_cache
    cache = shared_cache(scale=args.scale)
    jobs = args.jobs
    artifact = args.artifact
    if artifact == "table1":
        from repro.experiments.accumulation import (
            render_table1, run_table1,
        )
        print(render_table1(run_table1()))
    elif artifact == "table3":
        from repro.experiments.sync_counts import (
            render_table3, run_table3,
        )
        print(render_table3(run_table3(cache=cache, jobs=jobs)))
    elif artifact == "figure4":
        from repro.experiments.accuracy import (
            render_figure4, run_figure4,
        )
        print(render_figure4(run_figure4(cache=cache, jobs=jobs)))
    elif artifact == "figure5":
        from repro.experiments.cpi_stacks import (
            render_figure5, run_figure5,
        )
        print(render_figure5(run_figure5(cache=cache, jobs=jobs)))
    elif artifact == "table5":
        from repro.experiments.design_space import (
            render_table5, run_table5,
        )
        print(render_table5(run_table5(cache=cache, jobs=jobs)))
    elif artifact == "figure6":
        from repro.experiments.bottlegraphs import (
            render_figure6, run_figure6,
        )
        print(render_figure6(run_figure6(cache=cache, jobs=jobs)))
    elif artifact == "ablations":
        from repro.experiments.ablations import (
            render_ablations, run_ablations,
        )
        print(render_ablations(run_ablations(cache=cache, jobs=jobs)))
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown artifact {artifact!r}")
    return 0


def cmd_bench(args) -> int:
    from repro.experiments.bench import (
        check_bench,
        check_service,
        render_bench,
        render_service,
        run_profiler_bench,
        run_service_bench,
    )
    result = run_profiler_bench(
        quick=args.quick, scale=args.scale, output=args.output,
        profile_dump=args.profile_dump,
    )
    print(render_bench(result))
    if args.output:
        print(f"wrote {args.output}")
    if args.profile_dump:
        print(f"wrote {args.profile_dump}")
    failures = check_bench(result) if args.check else []
    if not args.no_service:
        service = run_service_bench(
            quick=args.quick, output=args.service_output
        )
        print(render_service(service))
        if args.service_output:
            print(f"wrote {args.service_output}")
        if args.check:
            failures += check_service(service)
    if args.work_output:
        from repro.experiments.bench import check_work, render_work, \
            run_work_bench
        work = run_work_bench(
            quick=args.quick, output=args.work_output
        )
        print(render_work(work))
        print(f"wrote {args.work_output}")
        if args.check:
            failures += check_work(work)
    if args.check:
        for line in failures:
            print(f"CHECK FAILED: {line}", file=sys.stderr)
        if failures:
            return 1
        print("bench --check: all committed floors cleared")
    return 0


def cmd_store(args) -> int:
    from repro.experiments.store import ProfileStore

    store = ProfileStore(args.root) if args.root else ProfileStore()
    if args.store_command == "stats":
        stats = store.stats()
        print(f"store root: {store.root}")
        if not stats:
            print("  (empty)")
            return 0
        total_n = total_b = 0
        for kind, entry in stats.items():
            print(f"  {kind:<12s} {entry['artifacts']:6d} artifacts  "
                  f"{entry['bytes'] / 2**20:8.1f} MiB")
            total_n += entry["artifacts"]
            total_b += entry["bytes"]
        print(f"  {'total':<12s} {total_n:6d} artifacts  "
              f"{total_b / 2**20:8.1f} MiB")
        quarantine = store.health()["quarantine"]
        if quarantine:
            inventory = ", ".join(
                f"{kind}={n}" for kind, n in sorted(quarantine.items())
            )
            print(f"  quarantine holds corrupt/stale evidence "
                  f"({inventory}); sweep with: "
                  f"repro store prune --kind quarantine")
        return 0
    # prune: refuse to silently wipe the whole store — require either
    # a narrowing filter or the explicit --all.
    if not (args.kind or args.older_than or args.stale_only or args.all):
        raise SystemExit(
            "store prune: pass --kind/--older-than/--stale-only to "
            "narrow the sweep, or --all to remove everything"
        )
    removed = store.prune(
        kinds=args.kind or None,
        older_than_s=(
            args.older_than * 86400.0
            if args.older_than is not None else None
        ),
        stale_only=args.stale_only,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    total_n = total_b = 0
    for kind, entry in removed.items():
        print(f"  {kind:<12s} {verb} {entry['removed']:6d} artifacts  "
              f"{entry['bytes'] / 2**20:8.1f} MiB")
        total_n += entry["removed"]
        total_b += entry["bytes"]
    print(f"  {'total':<12s} {verb} {total_n:6d} artifacts  "
          f"{total_b / 2**20:8.1f} MiB")
    return 0


def cmd_work(args) -> int:
    from repro.experiments.store import ProfileStore
    from repro.experiments.workqueue import (
        WorkQueue, plan_suite_jobs, run_workers,
    )

    store = ProfileStore(args.root) if args.root else ProfileStore()
    if args.work_command == "enqueue":
        from repro.experiments.suites import (
            full_suite, parsec_suite, rodinia_suite,
        )
        refs = {
            "full": full_suite,
            "rodinia": rodinia_suite,
            "parsec": parsec_suite,
        }[args.suite]()
        if args.benchmark:
            wanted = set(args.benchmark)
            refs = [r for r in refs if r.label in wanted
                    or r.name in wanted]
            if not refs:
                raise SystemExit(
                    f"no benchmark matched {sorted(wanted)}"
                )
        jobs = plan_suite_jobs(
            refs,
            scale=args.scale,
            chunk=args.chunk,
            configs=args.config or ["base"],
            cores=args.cores,
            simulate=args.simulate,
            baselines=args.baselines,
        )
        queue = WorkQueue(store.root)
        added = queue.enqueue_many(jobs)
        queue.close()
        print(f"enqueued {added} of {len(jobs)} jobs "
              f"({len(jobs) - added} already pending or done) "
              f"under {queue.root}")
        return 0
    if args.work_command == "run":
        summary = run_workers(
            store.root,
            workers=args.workers,
            lease_s=args.lease,
            heartbeat_s=args.heartbeat,
            drain=not args.no_drain,
            respawn=not args.no_respawn,
            install_signals=True,
        )
        queue_stats = summary["queue"]
        print(f"fleet done: {summary['workers']} workers "
              f"({summary['respawned']} respawned), "
              f"{queue_stats['done']} jobs done, "
              f"{queue_stats['pending']} pending, "
              f"{queue_stats['leased']} leased")
        return 1 if queue_stats["pending"] else 0
    # stats
    queue = WorkQueue(
        store.root, lease_s=args.lease, heartbeat_s=args.heartbeat
    )
    stats = queue.stats()
    print(f"queue root: {queue.root}")
    print(f"  pending {stats['pending']:5d}   leased "
          f"{stats['leased']:5d}   done {stats['done']:5d}")
    for key, meta in sorted(queue.live_leases().items()):
        expired = meta["age_s"] > queue.lease_s
        print(f"  lease {key[:16]}  owner={meta.get('owner', '?')} "
              f"pid={meta.get('pid', '?')} age={meta['age_s']:.1f}s"
              f"{'  EXPIRED' if expired else ''}")
    return 0


def cmd_serve(args) -> int:
    from repro.obs import configure_logging
    from repro.service.engine import default_store
    from repro.service.server import PredictionService

    configure_logging(level=args.log_level, json_mode=args.log_json)
    store = None if args.no_store else default_store()
    if args.workers > 1:
        # Pre-fork fleet: N worker processes on one port, sharing
        # warm artifacts through the content-addressed store.
        from repro.service.fleet import (
            DEFAULT_WARM_PROFILES, ServingFleet,
        )
        warm = (
            () if (args.no_warm_fill or store is None)
            else DEFAULT_WARM_PROFILES
        )
        ServingFleet(
            store_root=store.root if store is not None else None,
            host=args.host,
            port=args.port,
            workers=args.workers,
            threads=args.threads,
            max_queue=args.max_queue,
            deadline_ms=args.deadline_ms,
            drain_timeout=args.drain_timeout,
            warm_profiles=warm,
        ).run()
        return 0
    engine = PredictionEngine(store=store)
    PredictionService(
        engine=engine,
        host=args.host,
        port=args.port,
        workers=args.threads,
        max_queue=args.max_queue,
        deadline_ms=args.deadline_ms,
        drain_timeout=args.drain_timeout,
    ).run()
    return 0


def cmd_obs(args) -> int:
    """``repro obs``: the /metrics snapshot, offline or scraped."""
    if args.url:
        from urllib.request import urlopen

        url = args.url
        if not url.rstrip("/").endswith("/metrics"):
            url = url.rstrip("/") + "/metrics"
        with urlopen(url, timeout=30.0) as response:
            sys.stdout.write(
                response.read().decode("utf-8", errors="replace")
            )
        return 0
    from repro.obs import REGISTRY

    if args.json:
        json.dump(REGISTRY.snapshot(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        sys.stdout.write(REGISTRY.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RPPM reproduction toolchain (ISPASS 2019).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and design points")

    def add_common(p, benchmark=True):
        if benchmark:
            p.add_argument("benchmark",
                           help="benchmark, e.g. rodinia.hotspot")
        p.add_argument("--scale", type=float, default=1.0,
                       help="workload scale factor (default 1.0)")
        p.add_argument("--config", choices=TABLE_IV, default="base",
                       help="Table IV design point (default: base)")
        p.add_argument("--cores", type=int, default=4,
                       help="core count (default 4)")

    p = sub.add_parser("profile", help="profile a benchmark to JSON")
    p.add_argument("benchmark")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("-o", "--output", help="output file (default stdout)")

    p = sub.add_parser("predict", help="predict from a profile")
    p.add_argument("benchmark", nargs="?", default=None)
    p.add_argument("--profile-json",
                   help="use a stored profile instead of re-profiling")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--config", choices=TABLE_IV, default="base")
    p.add_argument("--cores", type=int, default=4)

    p = sub.add_parser("simulate", help="run the reference simulator")
    add_common(p)

    p = sub.add_parser("compare", help="predict and simulate")
    add_common(p)

    p = sub.add_parser("report", help="regenerate a paper artifact")
    p.add_argument("artifact", choices=[
        "table1", "table3", "figure4", "figure5", "table5", "figure6",
        "ablations",
    ])
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for profiling/simulation "
                        "prefetch (default: CPU count; 1 = serial)")

    p = sub.add_parser(
        "bench", help="measure profiling throughput (BENCH trajectory)"
    )
    p.add_argument("--quick", action="store_true",
                   help="small benchmark subset, fewer repetitions")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("-o", "--output", default="BENCH_profiler.json",
                   help="JSON record path (default BENCH_profiler.json)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero if any engine speedup falls "
                        "below its committed floor (CI perf smoke)")
    p.add_argument("--service-output", default="BENCH_service.json",
                   metavar="PATH",
                   help="serving-bench JSON record path "
                        "(default BENCH_service.json)")
    p.add_argument("--no-service", action="store_true",
                   help="skip the serving-throughput bench")
    p.add_argument("--profile-dump", metavar="PATH",
                   help="write a cProfile top-20 of the end-to-end "
                        "suite profiling loop (CI uploads this so the "
                        "next hot spot is identified from CI)")
    p.add_argument("--work-output", default=None, metavar="PATH",
                   help="also run the work-queue chaos scenarios "
                        "(kill-mid-lease, stale takeover, claim race) "
                        "and write their record here, e.g. "
                        "BENCH_work.json (skipped when omitted)")

    p = sub.add_parser(
        "store",
        help="inspect / garbage-collect the on-disk artifact store",
    )
    ssub = p.add_subparsers(dest="store_command", required=True)
    sp = ssub.add_parser(
        "stats", help="per-kind artifact counts and byte totals"
    )
    sp.add_argument("--root", help="store root "
                    "(default: REPRO_CACHE_DIR or ~/.cache/repro)")
    sp = ssub.add_parser(
        "prune", help="remove artifacts (traces, profiles, ...)"
    )
    sp.add_argument("--root", help="store root "
                    "(default: REPRO_CACHE_DIR or ~/.cache/repro)")
    sp.add_argument("--kind", action="append", metavar="KIND",
                    help="restrict to one artifact kind (repeatable), "
                         "e.g. traces; 'queue' sweeps aged done "
                         "markers and orphaned lease files, "
                         "'quarantine' empties the evidence tree")
    sp.add_argument("--older-than", type=float, metavar="DAYS",
                    help="only artifacts older than DAYS days")
    sp.add_argument("--stale-only", action="store_true",
                    help="only artifacts with a stale or unreadable "
                         "schema (already treated as misses)")
    sp.add_argument("--all", action="store_true",
                    help="allow an unfiltered sweep of the whole store")
    sp.add_argument("--dry-run", action="store_true",
                    help="report what would be removed, remove nothing")

    p = sub.add_parser(
        "work",
        help="crash-safe distributed work queue over the store",
    )
    wsub = p.add_subparsers(dest="work_command", required=True)

    def add_work_common(wp):
        wp.add_argument("--root", help="store root (default: "
                        "REPRO_CACHE_DIR or ~/.cache/repro); workers "
                        "on any host sharing this directory cooperate")
        wp.add_argument("--lease", type=float, default=15.0,
                        metavar="S",
                        help="lease length: a worker silent this long "
                             "is dead and its jobs are re-claimed "
                             "(default 15)")
        wp.add_argument("--heartbeat", type=float, default=None,
                        metavar="S",
                        help="lease renewal interval (default: "
                             "lease / 5)")

    wp = wsub.add_parser(
        "enqueue", help="enqueue a suite's jobs by content key"
    )
    wp.add_argument("--root", help="store root (default: "
                    "REPRO_CACHE_DIR or ~/.cache/repro)")
    wp.add_argument("--suite", choices=("full", "rodinia", "parsec"),
                    default="full",
                    help="benchmark suite to plan (default full)")
    wp.add_argument("--benchmark", action="append", metavar="NAME",
                    help="restrict to named benchmark(s), e.g. "
                         "rodinia.hotspot (repeatable)")
    wp.add_argument("--scale", type=float, default=1.0)
    wp.add_argument("--chunk", type=int, default=4096)
    wp.add_argument("--config", action="append", choices=TABLE_IV,
                    metavar="POINT",
                    help="Table IV design point(s) to predict "
                         "(repeatable; default base)")
    wp.add_argument("--cores", type=int, default=4)
    wp.add_argument("--simulate", action="store_true",
                    help="also enqueue reference simulations")
    wp.add_argument("--baselines", action="store_true",
                    help="also enqueue per-chunk reference profiles "
                         "(bench equivalence baselines)")

    wp = wsub.add_parser(
        "run",
        help="run a supervised worker fleet until the queue drains",
    )
    add_work_common(wp)
    wp.add_argument("--workers", type=int, default=2, metavar="N",
                    help="worker processes to supervise (default 2); "
                         "dead workers are respawned, their leases "
                         "re-claimed within one lease period")
    wp.add_argument("--no-drain", action="store_true",
                    help="keep serving new jobs after the queue "
                         "empties (stop with SIGINT/SIGTERM)")
    wp.add_argument("--no-respawn", action="store_true",
                    help="do not respawn workers that die")

    wp = wsub.add_parser(
        "stats", help="queue state: pending / leased / done"
    )
    add_work_common(wp)

    p = sub.add_parser(
        "serve", help="run the prediction service (HTTP/JSON)"
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8000,
                   help="TCP port (default 8000; 0 = ephemeral)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="worker processes (default 1 = in-process; "
                        "N>1 runs a pre-fork fleet on one port via "
                        "SO_REUSEPORT, sharing warm artifacts through "
                        "the store, with a respawning supervisor)")
    p.add_argument("--threads", type=int, default=2, metavar="N",
                   help="engine worker threads per process (default 2)")
    p.add_argument("--no-warm-fill", action="store_true",
                   help="skip the fleet's boot-time warm-fill of "
                        "preset profiles through the work queue")
    p.add_argument("--no-store", action="store_true",
                   help="serve without the on-disk artifact store")
    p.add_argument("--max-queue", type=int, default=64, metavar="N",
                   help="admission bound on queued distinct requests; "
                        "beyond it the server sheds with 429 + "
                        "Retry-After (default 64)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   metavar="MS",
                   help="server-side deadline per request; expiry "
                        "returns 503 (clients may tighten it via "
                        "X-Deadline-Ms, never extend; default: none)")
    p.add_argument("--drain-timeout", type=float, default=5.0,
                   metavar="S",
                   help="max seconds graceful shutdown waits for "
                        "in-flight work before closing connections "
                        "(default 5)")
    p.add_argument("--log-json", action="store_true",
                   help="emit structured logs as one JSON object per "
                        "line instead of human-readable text")
    p.add_argument("--log-level", default="info",
                   choices=("debug", "info", "warning", "error"),
                   help="log verbosity (debug adds a per-request "
                        "access log; default info)")

    p = sub.add_parser(
        "obs",
        help="dump the telemetry snapshot (Prometheus text format)",
    )
    p.add_argument("--url", default=None, metavar="URL",
                   help="scrape a running service's /metrics endpoint "
                        "instead of dumping this process's registry "
                        "(e.g. http://127.0.0.1:8000/metrics)")
    p.add_argument("--json", action="store_true",
                   help="JSON snapshot instead of Prometheus text "
                        "(local registry only)")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "predict" and not (
        args.benchmark or args.profile_json
    ):
        raise SystemExit("predict needs a benchmark or --profile-json")
    handlers = {
        "list": cmd_list,
        "profile": cmd_profile,
        "predict": cmd_predict,
        "simulate": cmd_simulate,
        "compare": cmd_compare,
        "report": cmd_report,
        "bench": cmd_bench,
        "store": cmd_store,
        "work": cmd_work,
        "serve": cmd_serve,
        "obs": cmd_obs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
