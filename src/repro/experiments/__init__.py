"""Reproduction experiments: one module per paper table/figure.

Each experiment module exposes a ``run_*`` function returning plain
dataclasses, so the same code backs the benchmark harness
(``benchmarks/``), the examples and the tests:

========================  ============================================
Paper artifact            Module / entry point
========================  ============================================
Table I                   :func:`repro.experiments.accumulation.run_table1`
Table III                 :func:`repro.experiments.sync_counts.run_table3`
Figure 4                  :func:`repro.experiments.accuracy.run_figure4`
Figure 5                  :func:`repro.experiments.cpi_stacks.run_figure5`
Table V                   :func:`repro.experiments.design_space.run_table5`
Figure 6                  :func:`repro.experiments.bottlegraphs.run_figure6`
========================  ============================================
"""

from repro.experiments.accumulation import run_table1
from repro.experiments.accuracy import WorkloadAccuracy, run_figure4
from repro.experiments.bottlegraphs import run_figure6
from repro.experiments.cpi_stacks import run_figure5
from repro.experiments.design_space import run_table5
from repro.experiments.sync_counts import run_table3

__all__ = [
    "WorkloadAccuracy",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_table1",
    "run_table3",
    "run_table5",
]
