"""Table III: dynamic synchronization event counts (Parsec).

The paper characterizes the Parsec benchmarks by their dynamic
synchronization behaviour: critical-section entries, barrier episodes
and condition-variable operations.  The reproduction counts the same
categories from the profiled synchronization structure and compares
the *shape* (which benchmarks are lock-dominated, barrier-dominated,
condvar-dominated, or synchronization-free) against the paper's
table — absolute counts are scaled down with the instruction budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.suites import (
    BenchmarkRef,
    RunCache,
    parsec_suite,
    shared_cache,
)
from repro.workloads.parsec import PAPER_TABLE_III

#: Table III column names.
CATEGORIES = ("critical_sections", "barriers", "condition_variables")


@dataclass(frozen=True)
class SyncCounts:
    """One benchmark's dynamic synchronization event counts."""

    benchmark: str
    critical_sections: int
    barriers: int
    condition_variables: int

    def as_dict(self) -> Dict[str, int]:
        return {c: getattr(self, c) for c in CATEGORIES}

    def dominant(self) -> str:
        """The dominant category, or 'none' when all are zero."""
        counts = self.as_dict()
        if not any(counts.values()):
            return "none"
        return max(counts, key=counts.get)


@dataclass
class Table3Result:
    rows: List[SyncCounts]

    def row(self, benchmark: str) -> SyncCounts:
        for r in self.rows:
            if r.benchmark == benchmark:
                return r
        raise KeyError(benchmark)


def paper_dominant(benchmark: str) -> str:
    """Dominant category in the paper's Table III (or 'none')."""
    paper = PAPER_TABLE_III[benchmark]
    mapped = {
        "critical_sections": paper["critical_sections"],
        "barriers": paper["barriers"],
        "condition_variables": paper["condvars"],
    }
    if not any(mapped.values()):
        return "none"
    return max(mapped, key=mapped.get)


def run_table3(
    benchmarks: Optional[Sequence[BenchmarkRef]] = None,
    cache: Optional[RunCache] = None,
    jobs: Optional[int] = None,
) -> Table3Result:
    """Count synchronization events over the Parsec suite.

    Profiles prefetch over ``jobs`` worker processes (default: CPU
    count); no predictions or simulations are needed here.
    """
    benchmarks = list(benchmarks) if benchmarks else parsec_suite()
    cache = cache or shared_cache()
    cache.prefetch(benchmarks, workers=jobs)
    rows = []
    for ref in benchmarks:
        counts = cache.profile(ref).sync_event_counts()
        rows.append(
            SyncCounts(
                benchmark=ref.name,
                critical_sections=counts["critical_sections"],
                barriers=counts["barriers"],
                condition_variables=counts["condition_variables"],
            )
        )
    return Table3Result(rows=rows)


def render_table3(result: Table3Result) -> str:
    header = (
        f"{'Benchmark':>16s}  {'CritSect':>9s}  {'Barriers':>9s}  "
        f"{'CondVar':>9s}  {'dominant':>18s}  {'paper':>18s}"
    )
    lines = [header, "-" * len(header)]
    for r in result.rows:
        lines.append(
            f"{r.benchmark:>16s}  {r.critical_sections:>9d}  "
            f"{r.barriers:>9d}  {r.condition_variables:>9d}  "
            f"{r.dominant():>18s}  {paper_dominant(r.benchmark):>18s}"
        )
    return "\n".join(lines)
