"""Thread-count scaling analysis (extension; paper §III future work).

The paper conjectures one thread per core and profiles at the target
thread count.  This extension sweeps thread counts (one profile *per
count*, per the paper's requirement) and reports predicted and
simulated speedup curves — the application-performance-analysis use
case the paper's introduction motivates, and a stepping stone toward
the more-threads-than-cores future work.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.arch.config import MulticoreConfig
from repro.arch.presets import table_iv_config
from repro.core.rppm import predict
from repro.experiments.store import TraceCache
from repro.profiler.profiler import profile_workload
from repro.simulator.multicore import simulate
from repro.workloads.engine import expand as engine_expand
from repro.workloads.rodinia import RODINIA, rodinia_workload

#: Default thread counts (the base machine has four cores).
THREAD_COUNTS = (1, 2, 4)


@dataclass(frozen=True)
class ScalingPoint:
    """Predicted/simulated time at one thread count."""

    threads: int
    predicted_cycles: float
    simulated_cycles: float


@dataclass
class ScalingCurve:
    """Speedup curve of one benchmark across thread counts."""

    benchmark: str
    points: List[ScalingPoint]

    def _base(self, attr: str) -> float:
        one = min(self.points, key=lambda p: p.threads)
        return getattr(one, attr)

    def predicted_speedups(self) -> Dict[int, float]:
        base = self._base("predicted_cycles")
        return {
            p.threads: base / p.predicted_cycles for p in self.points
        }

    def simulated_speedups(self) -> Dict[int, float]:
        base = self._base("simulated_cycles")
        return {
            p.threads: base / p.simulated_cycles for p in self.points
        }

    def max_speedup_error(self) -> float:
        """Worst absolute speedup error across the curve."""
        pred = self.predicted_speedups()
        sim = self.simulated_speedups()
        return max(
            abs(pred[t] - sim[t]) / sim[t] for t in pred
        )


def run_scaling_curve(
    benchmark: str,
    thread_counts: Sequence[int] = THREAD_COUNTS,
    config: Optional[MulticoreConfig] = None,
    scale: float = 1.0,
    session=None,
    *,
    trace_cache: Optional[TraceCache] = None,
) -> ScalingCurve:
    """Predicted and simulated scaling of one Rodinia benchmark.

    Following the paper, each thread count gets its own profile (the
    profile's thread count must equal the prediction's); the *per
    profile* cost is what RPPM amortizes across configurations, not
    across thread counts.

    The sweep is *strong scaling*: the total work is fixed at the
    largest thread count's budget and divided across however many
    threads run, so ideal speedup equals the thread count.

    A :class:`~repro.core.session.Session` shares trace expansions,
    ILP tables and segment precompute across the sweep's points (and,
    store-backed, across runs).

    .. deprecated::
        ``trace_cache=`` is a deprecated shim kept for one release;
        pass a ``session``.
    """
    if trace_cache is not None:
        warnings.warn(
            "run_scaling_curve(trace_cache=...) is deprecated; pass "
            "session=Session(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    if benchmark not in RODINIA:
        raise ValueError(f"unknown Rodinia benchmark {benchmark!r}")
    config = config or table_iv_config("base")
    reference = max(thread_counts)
    points = []
    for threads in thread_counts:
        spec = rodinia_workload(
            benchmark, threads=threads,
            scale=scale * reference / threads,
        )
        # Each point's trace is shared between profiling and
        # simulation via the local below and freed when it rebinds; a
        # session (or caller-supplied TraceCache) additionally shares
        # points across sweeps (and, store-backed, across runs) at the
        # cost of retaining them in its LRU.
        if trace_cache is not None:
            trace = trace_cache.get(spec)
        elif session is not None:
            trace = session.traces.get(spec)
        else:
            trace = engine_expand(spec)
        profile = profile_workload(trace, session=session)
        points.append(
            ScalingPoint(
                threads=threads,
                predicted_cycles=predict(
                    profile, config, session=session
                ).total_cycles,
                simulated_cycles=simulate(
                    trace, config, session=session
                ).total_cycles,
            )
        )
    return ScalingCurve(benchmark=benchmark, points=points)


def render_scaling(curve: ScalingCurve) -> str:
    pred = curve.predicted_speedups()
    sim = curve.simulated_speedups()
    lines = [
        f"scaling of {curve.benchmark}",
        f"{'threads':>8s} {'pred speedup':>13s} {'sim speedup':>12s}",
    ]
    for p in sorted(curve.points, key=lambda p: p.threads):
        lines.append(
            f"{p.threads:>8d} {pred[p.threads]:>13.2f} "
            f"{sim[p.threads]:>12.2f}"
        )
    return "\n".join(lines)
