"""Table V: design-space exploration — predicting the optimum design.

The Rodinia benchmarks are profiled once and predicted on the five
Table IV design points (equal peak operations per second, width 2-6).
For a bound ``x``, RPPM short-lists every design point predicted within
``x`` of its predicted optimum; the short-list is then resolved by
simulation.  The reported *deficiency* is how much slower the
resolved choice is than the true (exhaustively simulated) optimum —
zero whenever the true optimum made the short-list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.presets import TABLE_IV, design_space
from repro.experiments.suites import (
    BenchmarkRef,
    RunCache,
    rodinia_suite,
    shared_cache,
)

#: The paper's Table V bounds.
BOUNDS = (0.0, 0.01, 0.03, 0.05)


@dataclass(frozen=True)
class DesignPointOutcome:
    """Predicted and simulated execution time of one design point."""

    point: str
    predicted_seconds: float
    simulated_seconds: float


@dataclass(frozen=True)
class Table5Row:
    """One benchmark's Table V entries across bounds."""

    benchmark: str
    outcomes: Dict[str, DesignPointOutcome]
    #: bound -> (deficiency, shortlist size), the paper's cell pair.
    cells: Dict[float, "Table5Cell"]


@dataclass(frozen=True)
class Table5Cell:
    deficiency: float
    shortlist: int


@dataclass
class Table5Result:
    rows: List[Table5Row]
    bounds: Sequence[float]

    def average_deficiency(self, bound: float) -> float:
        return float(
            np.mean([r.cells[bound].deficiency for r in self.rows])
        )

    def row(self, benchmark: str) -> Table5Row:
        for r in self.rows:
            if r.benchmark == benchmark:
                return r
        raise KeyError(benchmark)


def _seconds(cycles: float, frequency_ghz: float) -> float:
    return cycles / (frequency_ghz * 1e9)


def run_benchmark_dse(
    ref: BenchmarkRef,
    cache: RunCache,
    bounds: Sequence[float] = BOUNDS,
    cores: int = 4,
) -> Table5Row:
    """Table V's experiment for one benchmark."""
    outcomes: Dict[str, DesignPointOutcome] = {}
    for config in design_space(cores=cores):
        pred = cache.prediction(ref, config)
        sim = cache.simulation(ref, config)
        ghz = config.core.frequency_ghz
        outcomes[config.name] = DesignPointOutcome(
            point=config.name,
            predicted_seconds=_seconds(pred.total_cycles, ghz),
            simulated_seconds=_seconds(sim.total_cycles, ghz),
        )
    true_best = min(o.simulated_seconds for o in outcomes.values())
    pred_best = min(o.predicted_seconds for o in outcomes.values())
    cells: Dict[float, Table5Cell] = {}
    for bound in bounds:
        shortlist = [
            o for o in outcomes.values()
            if o.predicted_seconds <= pred_best * (1.0 + bound)
        ]
        # Simulation resolves the short-list (the paper's methodology):
        # the chosen point is the simulated-best among the short-list.
        chosen = min(shortlist, key=lambda o: o.simulated_seconds)
        cells[bound] = Table5Cell(
            deficiency=chosen.simulated_seconds / true_best - 1.0,
            shortlist=len(shortlist),
        )
    return Table5Row(benchmark=ref.name, outcomes=outcomes, cells=cells)


def run_table5(
    benchmarks: Optional[Sequence[BenchmarkRef]] = None,
    bounds: Sequence[float] = BOUNDS,
    cache: Optional[RunCache] = None,
    cores: int = 4,
    jobs: Optional[int] = None,
) -> Table5Result:
    """Table V over the Rodinia suite (the paper's scope).

    Every (benchmark, design point) prediction and simulation is
    prefetched over ``jobs`` worker processes (default: CPU count)
    before the rows assemble; the profile — and its per-pool ILP
    tables — is shared across all five design points.
    """
    benchmarks = list(benchmarks) if benchmarks else rodinia_suite()
    cache = cache or shared_cache()
    cache.prefetch(
        benchmarks,
        configs=tuple(design_space(cores=cores)),
        workers=jobs,
        simulate=True,
    )
    rows = [
        run_benchmark_dse(ref, cache, bounds=bounds, cores=cores)
        for ref in benchmarks
    ]
    return Table5Result(rows=rows, bounds=tuple(bounds))


def render_table5(result: Table5Result) -> str:
    """Table V as printable text (deficiency and short-list size)."""
    bounds = list(result.bounds)
    header = f"{'Bound':>16s}  " + "  ".join(
        f"{'0%' if b == 0 else f'< {b:.0%}':>10s}" for b in bounds
    )
    lines = [header, "-" * len(header)]
    for row in result.rows:
        cells = "  ".join(
            f"{row.cells[b].deficiency:>7.2%} {row.cells[b].shortlist}"
            for b in bounds
        )
        lines.append(f"{row.benchmark:>16s}  {cells}")
    lines.append("-" * len(header))
    avg = "  ".join(
        f"{result.average_deficiency(b):>7.2%}  " for b in bounds
    )
    lines.append(f"{'average':>16s}  {avg}")
    return "\n".join(lines)


def table_iv_names() -> List[str]:
    """The five design points, for harness labelling."""
    return list(TABLE_IV)
