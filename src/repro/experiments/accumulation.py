"""Table I: accumulating prediction errors in barrier-synchronized apps.

The paper's micro-experiment: a loop of one million iterations is
parallelized over ``n`` threads with a barrier per iteration.  A
hypothetical model predicts each thread's inter-barrier time with zero
*mean* error but a uniform random error within ``+/-bound``.  Because
each epoch's simulated length is the *maximum* over threads while the
prediction errors are independent, the overall prediction error grows
with thread count — for uniform errors the bias of the maximum of
``n`` draws is ``bound * (n-1)/(n+1)``, and the paper's table matches
its one-third (the epoch length is over-estimated only when the
slowest thread's error is positive, which interacts with the true
maximum; Monte Carlo reproduces the exact constants).

Two implementations are provided: a Monte Carlo replication of the
paper's setup (:func:`run_table1`) and the closed-form expectation of
the epoch-maximum bias (:func:`expected_epoch_bias`) used by the tests
to validate the Monte Carlo machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

#: The paper's Table I axes.
THREAD_COUNTS = (1, 2, 4, 8, 16)
ERROR_BOUNDS = (0.01, 0.05, 0.10)


@dataclass(frozen=True)
class Table1Cell:
    """One Table I entry: overall error for (threads, bound)."""

    threads: int
    bound: float
    overall_error: float


@dataclass
class Table1Result:
    """The full Table I grid."""

    cells: List[Table1Cell]
    iterations: int

    def cell(self, threads: int, bound: float) -> Table1Cell:
        for c in self.cells:
            if c.threads == threads and abs(c.bound - bound) < 1e-12:
                return c
        raise KeyError((threads, bound))

    def rows(self) -> List[Tuple[int, List[float]]]:
        """(threads, [error per bound]) rows in Table I layout."""
        out = []
        for t in sorted({c.threads for c in self.cells}):
            out.append((
                t,
                [
                    self.cell(t, b).overall_error
                    for b in sorted({c.bound for c in self.cells})
                ],
            ))
        return out


def expected_epoch_bias(threads: int, bound: float) -> float:
    """Closed-form bias of one epoch's predicted length.

    Every thread's true time is 1; predictions are ``1 + U(-b, +b)``
    i.i.d. per thread.  The simulated epoch length is exactly 1 (all
    threads equal); the predicted epoch length is the *maximum* of the
    ``n`` predictions, whose expectation is ``1 + b (n-1)/(n+1)``.
    """
    if threads < 1:
        raise ValueError("need at least one thread")
    if not 0 <= bound < 1:
        raise ValueError("bound must be a fraction in [0, 1)")
    return bound * (threads - 1) / (threads + 1)


def run_table1(
    thread_counts: Sequence[int] = THREAD_COUNTS,
    bounds: Sequence[float] = ERROR_BOUNDS,
    iterations: int = 100_000,
    jitter: float = 0.0,
    seed: int = 0x7AB1E1,
) -> Table1Result:
    """Monte Carlo replication of the paper's Table I.

    Per iteration every thread's *true* inter-barrier time is ``1``
    (each iteration takes the same amount of time, paper §II-A); the
    model predicts each thread's time with an unbiased uniform error
    within ``+/-bound``.  The reported cell is the relative error of
    total predicted versus total true execution time, where both sides
    take the per-epoch maximum over threads — reproducing the paper's
    constants, which equal ``bound * (n-1)/(n+1)``
    (:func:`expected_epoch_bias`).

    ``jitter`` optionally perturbs the true per-thread times (an
    extension beyond the paper's setup: real threads differ slightly,
    which *dampens* the accumulation because the true maximum absorbs
    part of the prediction spread).
    """
    rng = np.random.default_rng(seed)
    cells: List[Table1Cell] = []
    for bound in bounds:
        for threads in thread_counts:
            true = 1.0 + jitter * bound * rng.uniform(
                -1.0, 1.0, size=(iterations, threads)
            )
            err = bound * rng.uniform(-1.0, 1.0, size=(iterations, threads))
            predicted = true * (1.0 + err)
            true_total = true.max(axis=1).sum()
            pred_total = predicted.max(axis=1).sum()
            cells.append(
                Table1Cell(
                    threads=threads,
                    bound=bound,
                    overall_error=float(pred_total / true_total - 1.0),
                )
            )
    return Table1Result(cells=cells, iterations=iterations)


def render_table1(result: Table1Result) -> str:
    """Table I as printable text (threads x bounds grid)."""
    bounds = sorted({c.bound for c in result.cells})
    header = "#Threads  " + "  ".join(f"{b:>6.0%}" for b in bounds)
    lines = [header, "-" * len(header)]
    for threads, errors in result.rows():
        cells = "  ".join(f"{e:>6.2%}" for e in errors)
        lines.append(f"{threads:>8d}  {cells}")
    return "\n".join(lines)
