"""Profiling-throughput benchmark (the BENCH trajectory).

Measures the components the paper's "rapid" claim rests on:

* the reuse-distance front-end — the *exact* chunk schedules the
  profiler records, replayed through the vectorized whole-trace engine
  (:mod:`repro.profiler.batch`) and the seed scalar collectors
  (:mod:`repro.profiler.reference`) on identical inputs;
* the ILP scoreboard — the *exact* per-pool micro-trace samples the
  profiler retains, replayed through the lockstep batch engine
  (:mod:`repro.profiler.ilp_batch`) and the scalar spec
  (:func:`repro.profiler.ilp.build_ilp_table`), with the resulting
  tables cross-checked for equivalence;
* trace expansion — the full suite expanded through the columnar
  planner/executor engine (:mod:`repro.workloads.engine`) behind a
  content-addressed :class:`~repro.experiments.store.TraceCache`,
  against the preserved per-segment spec
  (:func:`repro.workloads.generator.expand`), with every trace
  cross-checked digest-identical;
* the end-to-end suite wall-clock through
  :func:`repro.profiler.profiler.profile_workload` (warm trace cache —
  the "profile once, reuse everywhere" economy the cache buys).

Results are written as machine-readable ``BENCH_profiler.json`` so the
speedup is tracked across PRs (``python -m repro bench``; the pytest
face lives in ``benchmarks/bench_profiler.py``).  ``python -m repro
bench --check`` additionally enforces the committed
:data:`CHECK_FLOORS` — CI's guard against a silent performance or
equivalence regression.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.store import TraceCache
from repro.experiments.suites import (
    BenchmarkRef,
    build_workload,
    rodinia_suite,
)
from repro.profiler.batch import replay_data, replay_fetch
from repro.profiler.histogram import RDHistogram
from repro.profiler.ilp import build_ilp_table
from repro.profiler.ilp_batch import (
    DISPATCHES_PER_STEP,
    KERNEL_STATS,
    build_ilp_tables,
)
from repro.profiler.locality import PoolLocality
from repro.profiler.profiler import (
    ILP_SAMPLES_PER_POOL,
    ilp_sample,
    profile_workload,
)
from repro.profiler.reference import (
    ScalarFetchLocality,
    ScalarLocalityCollector,
)
from repro.runtime.chunking import chunk_trace
from repro.workloads.engine import EngineStats, ExpansionEngine
from repro.workloads.generator import expand
from repro.workloads.ir import OP_STORE, fetch_lines

#: 4: adds the ``expand`` section (columnar arena engine + trace cache
#: vs the per-segment legacy spec: instr/s, memo / cache hit rates,
#: arena bytes, digest cross-check), commits an expand-speedup floor
#: and raises the suite floor to the warm-trace-cache level.
#: 3: adds the ``kernel`` section (fused flat-grid mega-batching:
#: width buckets, fill ratio, per-step dispatch counts, pools/s) and
#: raises the committed ILP floor to the fused-kernel level.
#: 2: added the ``ilp`` section (batched scoreboard vs scalar spec).
BENCH_SCHEMA = 4
#: Quick-mode subset: three locality personalities plus streamcluster,
#: whose sparse address space exercises the engine's fallback path.
QUICK_BENCHMARKS = ("hotspot", "bfs", "srad", "streamcluster")

#: Committed performance/equivalence floors for ``bench --check``.
#: Conservative relative to measured numbers (collector ~10-14x, fused
#: ILP ~13-16x, warm-cache expand >100x, suite ~3.5-4.5 M instr/s on a
#: developer-class core) to absorb noisy shared runners.
CHECK_FLOORS: Dict[str, float] = {
    "collector_speedup": 5.0,
    "ilp_speedup": 9.0,
    "ilp_max_rel_err": 0.0,
    "expand_speedup": 3.0,
    "suite_min_ips": 1.5e6,
}

#: Committed serving floors: warm-cache ``/v1/predict`` throughput
#: through the real HTTP stack (req/s) and the end-to-end success
#: requirement.  Measured rates on a developer-class core are in the
#: thousands; 200 absorbs noisy shared CI runners.  The overload
#: floors are the robustness contract: under 4x admission overload,
#: every non-success is *explained* (a well-formed 429 shed, a 503
#: with the deadline echoed, or — only when the scenario kills the
#: server — a connection error), no worker hangs, and the server
#: still serves goodput while shedding.
SERVICE_FLOORS: Dict[str, float] = {
    "warm_rps": 200.0,
    "max_error_rate": 0.0,
    "max_unexplained_errors": 0,
    "max_malformed_sheds": 0,
    "max_hung_workers": 0,
}


class SuiteStreams:
    """The access streams of one benchmark, in profiler chunk order."""

    __slots__ = ("label", "n_threads", "data", "fetch")

    def __init__(self, label: str, n_threads: int) -> None:
        self.label = label
        self.n_threads = n_threads
        #: (tid, pool index, line addrs, store mask) per chunk.
        self.data: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
        #: Per thread: (pool index, fetch lines) per chunk.
        self.fetch: List[List[Tuple[int, np.ndarray]]] = [
            [] for _ in range(n_threads)
        ]

    @property
    def n_accesses(self) -> int:
        return sum(len(c[2]) for c in self.data)

    @property
    def n_fetches(self) -> int:
        return sum(len(f[1]) for fs in self.fetch for f in fs)


def expand_suite(
    refs: Sequence[BenchmarkRef],
    scale: float,
    cache: Optional[TraceCache] = None,
) -> List:
    """Expand every benchmark's trace once, for reuse by extractors.

    Routed through ``cache`` (a content-addressed
    :class:`~repro.experiments.store.TraceCache`) when one is given,
    the columnar engine otherwise.
    """
    specs = [build_workload(ref, scale) for ref in refs]
    if cache is None:
        cache = TraceCache()
    return [cache.get(spec) for spec in specs]


def extract_streams(
    refs: Sequence[BenchmarkRef],
    scale: float,
    chunk: int = 4096,
    traces: Optional[Sequence] = None,
) -> List[SuiteStreams]:
    """Expand and chunk benchmarks into replayable access streams.

    Pool attribution is simplified to one pool per thread — the
    throughput of the engines depends on stream content, not on how
    many pools the counts land in.  Pass pre-expanded ``traces``
    (from :func:`expand_suite`) to avoid re-expanding.
    """
    if traces is None:
        traces = expand_suite(refs, scale)
    out = []
    for trace in traces:
        ctrace = chunk_trace(trace, chunk)
        streams = SuiteStreams(ctrace.name, ctrace.n_threads)
        for t in ctrace.threads:
            for seg in t.segments:
                block = seg.block
                mem = block.memory_indices()
                if len(mem):
                    streams.data.append((
                        t.thread_id, t.thread_id,
                        block.addr[mem], block.op[mem] == OP_STORE,
                    ))
                lines = fetch_lines(block)
                if len(lines):
                    streams.fetch[t.thread_id].append(
                        (t.thread_id, lines)
                    )
        out.append(streams)
    return out


def _run_vectorized(streams: List[SuiteStreams]) -> None:
    for s in streams:
        pools = [PoolLocality() for _ in range(s.n_threads)]
        replay_data(s.data, s.n_threads, pools)
        hists = [RDHistogram() for _ in range(s.n_threads)]
        for tid in range(s.n_threads):
            replay_fetch(s.fetch[tid], hists)


def _run_scalar(streams: List[SuiteStreams]) -> None:
    for s in streams:
        collector = ScalarLocalityCollector(s.n_threads)
        pools = [PoolLocality() for _ in range(s.n_threads)]
        for tid, pidx, addrs, stores in s.data:
            collector.process(tid, addrs, stores, pools[pidx])
        hists = [RDHistogram() for _ in range(s.n_threads)]
        for tid in range(s.n_threads):
            fetcher = ScalarFetchLocality()
            for pidx, lines in s.fetch[tid]:
                fetcher.process(lines, hists[pidx])


def extract_ilp_pools(
    refs: Sequence[BenchmarkRef],
    scale: float,
    chunk: int = 4096,
    traces: Optional[Sequence] = None,
) -> List[List[Tuple[np.ndarray, np.ndarray]]]:
    """Per-pool micro-trace samples, as the profiler retains them.

    Pools follow the profiler's (thread, code-region) keying; the
    retention policy itself (segment-length gate, truncation) is
    :func:`repro.profiler.profiler.ilp_sample` — shared with the
    profiler, so the ILP engines replay exactly the workload
    ``profile_workload`` would hand them.  Pass pre-expanded
    ``traces`` (from :func:`expand_suite`) to avoid re-expanding.
    """
    if traces is None:
        traces = expand_suite(refs, scale)
    pools: List[List[Tuple[np.ndarray, np.ndarray]]] = []
    for trace in traces:
        ctrace = chunk_trace(trace, chunk)
        per_pool: Dict[Tuple[int, int], List] = {}
        for t in ctrace.threads:
            for seg in t.segments:
                sample = ilp_sample(seg.block)
                if sample is None:
                    continue
                key = (t.thread_id, int(seg.block.iline[0]))
                samples = per_pool.setdefault(key, [])
                if len(samples) < ILP_SAMPLES_PER_POOL:
                    samples.append(sample)
        pools.extend(v for v in per_pool.values() if v)
    return pools


def _run_ilp_batch(pools) -> List:
    return build_ilp_tables(pools)


def _run_ilp_scalar(pools) -> List:
    return [build_ilp_table(samples) for samples in pools]


def _table_rel_err(batch_tables, scalar_tables) -> float:
    """Worst relative disagreement across all table fields."""
    worst = 0.0
    for b, s in zip(batch_tables, scalar_tables):
        for attr in ("ilp", "branch_loads", "load_par"):
            a = getattr(b, attr)
            r = getattr(s, attr)
            denom = np.maximum(np.abs(r), 1e-12)
            worst = max(worst, float(np.max(np.abs(a - r) / denom)))
    return worst


def _interleaved(fn_a, fn_b, reps: int) -> Tuple[float, float]:
    """Median times of two competitors measured back to back.

    Alternating the runs (instead of timing each in its own block)
    exposes both to the same background-load environment, and the
    median resists the one-off stalls that a min-of or a single
    measurement would turn into a skewed ratio.
    """
    times_a, times_b = [], []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn_a()
        times_a.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        times_b.append(time.perf_counter() - t0)
    return (
        float(np.median(times_a)), float(np.median(times_b))
    )


def _kernel_delta(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Fused-kernel counter movement between two snapshots."""
    delta = {
        key: after[key] - before[key]
        for key in (
            "pools", "samples", "buckets", "batches", "steps",
            "dispatches", "grid_slots", "occupied_slots",
        )
    }
    delta["bucket_fill"] = (
        delta["occupied_slots"] / delta["grid_slots"]
        if delta["grid_slots"] else 1.0
    )
    return delta


def _write_profile_dump(profiler, path: str) -> None:
    """Write a cProfile top-20 (cumulative and self time) to ``path``.

    The CI perf-smoke job uploads this artifact so the next profiling
    hot spot is identified from CI output, not from a local rerun.
    """
    import pstats

    with open(path, "w") as fh:
        stats = pstats.Stats(profiler, stream=fh)
        stats.sort_stats("cumulative")
        fh.write("== suite profiling: top 20 by cumulative time ==\n")
        stats.print_stats(20)
        fh.write("\n== suite profiling: top 20 by self time ==\n")
        stats.sort_stats("tottime")
        stats.print_stats(20)


def run_profiler_bench(
    quick: bool = False,
    scale: float = 1.0,
    reps: Optional[int] = None,
    output: Optional[str] = None,
    profile_dump: Optional[str] = None,
) -> Dict:
    """Measure profiling throughput; optionally write the JSON record.

    ``quick`` restricts the suite to :data:`QUICK_BENCHMARKS` and
    lowers the repetition count — a smoke-test sized run for CI and
    the ``--quick`` CLI flag.  The full mode replays the entire
    Rodinia suite (the paper's Table II set).  ``profile_dump`` writes
    a cProfile summary of the end-to-end suite loop to the given path.
    """
    refs = rodinia_suite()
    if quick:
        keep = set(QUICK_BENCHMARKS)
        refs = [r for r in refs if r.name in keep]
    if reps is None:
        reps = 2 if quick else 3

    # -- trace expansion: columnar engine + cache vs legacy spec ------------
    # A private engine/cache pair so the memo and hit-rate counters in
    # the record reflect exactly this run, not earlier process history.
    engine = ExpansionEngine(stats=EngineStats())
    tcache = TraceCache(engine=engine)
    specs = [build_workload(ref, scale) for ref in refs]
    t0 = time.perf_counter()
    traces = [tcache.get(s) for s in specs]  # cold: arenas + memo fill
    expand_cold_s = time.perf_counter() - t0
    expand_instr = sum(t.n_instructions for t in traces)
    # Equivalence: every engine trace must digest-identical the
    # preserved per-segment spec (the expand analogue of the ILP
    # engines' max_rel_err cross-check).
    digest_mismatches = sum(
        1 for s, t in zip(specs, traces)
        if expand(s).content_digest() != t.content_digest()
    )
    expand_warm_s, expand_legacy_s = _interleaved(
        lambda: [tcache.get(s) for s in specs],  # content-addressed hits
        lambda: [expand(s) for s in specs],  # legacy re-expansion
        reps,
    )
    engine_stats = engine.stats.snapshot()
    cache_stats = tcache.stats()

    streams = extract_streams(refs, scale, traces=traces)
    accesses = sum(s.n_accesses for s in streams)
    fetches = sum(s.n_fetches for s in streams)

    _run_vectorized(streams)  # warm-up: page in streams and code paths
    vec_s, scalar_s = _interleaved(
        lambda: _run_vectorized(streams),
        lambda: _run_scalar(streams),
        reps,
    )

    pools = extract_ilp_pools(refs, scale, traces=traces)
    n_samples = sum(len(p) for p in pools)
    del traces  # the suite loop below re-resolves through the cache
    kernel_before = KERNEL_STATS.snapshot()
    batch_tables = _run_ilp_batch(pools)  # warm-up + equivalence input
    kernel = _kernel_delta(kernel_before, KERNEL_STATS.snapshot())
    scalar_tables = _run_ilp_scalar(pools)
    ilp_err = _table_rel_err(batch_tables, scalar_tables)
    ilp_batch_s, ilp_scalar_s = _interleaved(
        lambda: _run_ilp_batch(pools),
        lambda: _run_ilp_scalar(pools),
        reps,
    )

    # End-to-end suite loop: trace resolution through the warm
    # content-addressed cache (the steady state every production call
    # site now runs in) + profiling.  This is the number the raised
    # suite_min_ips floor gates — expansion amortized, as the paper's
    # "profile once" economy intends.
    t0 = time.perf_counter()
    instructions = 0
    for spec in specs:
        trace = tcache.get(spec)
        profile = profile_workload(trace)
        instructions += profile.n_instructions
    suite_s = time.perf_counter() - t0

    if profile_dump:
        # A *separate* instrumented rerun: cProfile tracing costs
        # ~20%, which must not contaminate the timed number the
        # suite_min_ips floor gates.
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        for spec in specs:
            profile_workload(tcache.get(spec))
        profiler.disable()
        _write_profile_dump(profiler, profile_dump)

    total = accesses + fetches
    result = {
        "schema": BENCH_SCHEMA,
        "mode": "quick" if quick else "full",
        "scale": scale,
        "benchmarks": [r.label for r in refs],
        "collector": {
            "data_accesses": int(accesses),
            "fetches": int(fetches),
            "vectorized_s": vec_s,
            "scalar_s": scalar_s,
            "vectorized_aps": total / vec_s,
            "scalar_aps": total / scalar_s,
            "speedup": scalar_s / vec_s,
        },
        "ilp": {
            "pools": len(pools),
            "samples": int(n_samples),
            "batch_s": ilp_batch_s,
            "scalar_s": ilp_scalar_s,
            "speedup": ilp_scalar_s / ilp_batch_s,
            "max_rel_err": ilp_err,
        },
        "kernel": {
            "buckets": int(kernel["buckets"]),
            "bucket_fill": kernel["bucket_fill"],
            "steps": int(kernel["steps"]),
            "dispatches": int(kernel["dispatches"]),
            "dispatches_per_step": DISPATCHES_PER_STEP,
            "pools_per_s": len(pools) / ilp_batch_s,
        },
        "expand": {
            "instructions": int(expand_instr),
            "legacy_s": expand_legacy_s,
            "cold_s": expand_cold_s,
            "warm_s": expand_warm_s,
            "legacy_ips": expand_instr / expand_legacy_s,
            "cold_ips": expand_instr / expand_cold_s,
            "warm_ips": expand_instr / expand_warm_s,
            "speedup": expand_legacy_s / expand_warm_s,
            "speedup_cold": expand_legacy_s / expand_cold_s,
            "memo_hit_rate": engine_stats["memo_hit_rate"],
            "cache_hit_rate": (
                cache_stats["hits"]
                / (cache_stats["hits"] + cache_stats["misses"])
                if cache_stats["hits"] + cache_stats["misses"] else 0.0
            ),
            "arena_bytes": int(engine_stats["arena_bytes"]),
            "digest_mismatches": int(digest_mismatches),
        },
        "suite": {
            "wall_clock_s": suite_s,
            "instructions": int(instructions),
            "ips": instructions / suite_s,
        },
    }
    if output:
        with open(output, "w") as fh:
            json.dump(result, fh, indent=2)
    return result


def run_service_bench(
    quick: bool = False,
    output: Optional[str] = "BENCH_service.json",
    duration_s: Optional[float] = None,
    concurrency: int = 8,
    scale: float = 0.5,
    overload: bool = True,
) -> Dict:
    """Measure warm-cache serving throughput AND overload behavior.

    Boots the asyncio HTTP server on an ephemeral port (memory-only
    engine, so the record reflects this build, not a previous run's
    disk cache), drives it with the closed-loop load generator, then
    runs the chaos/overload scenarios (stampede, slow engine, kill
    mid-burst) against dedicated servers.  Writes the schema-2
    ``BENCH_service.json`` record: ``{"warm": ..., "overload": ...}``.
    """
    from repro.service.engine import PredictionEngine
    from repro.service.loadgen import (
        SERVICE_BENCH_SCHEMA, run_loadgen, run_overload_scenarios,
    )
    from repro.service.server import BackgroundServer

    if duration_s is None:
        duration_s = 1.5 if quick else 4.0
    engine = PredictionEngine(store=None)
    with BackgroundServer(engine=engine, workers=2) as server:
        warm = run_loadgen(
            "127.0.0.1", server.port,
            benchmark="rodinia.nn", config="base", scale=scale,
            duration_s=duration_s, concurrency=concurrency,
        )
    record = {
        "schema": SERVICE_BENCH_SCHEMA,
        "mode": "quick" if quick else "full",
        "warm": warm,
        "overload": (
            run_overload_scenarios(quick=quick, scale=scale)
            if overload else {}
        ),
    }
    if output:
        with open(output, "w") as fh:
            json.dump(record, fh, indent=2)
    return record


def _check_scenario(name: str, rec: Dict) -> List[str]:
    """Floors shared by every overload scenario record."""
    failures = []
    if rec["unexplained_errors"] > SERVICE_FLOORS[
        "max_unexplained_errors"
    ]:
        failures.append(
            f"{name}: {rec['unexplained_errors']} unexplained errors "
            f"(budget is 0 — every failure must be a typed shed, "
            f"deadline 503, or expected connection drop)"
        )
    malformed = rec["malformed_shed"] + rec["malformed_503"]
    if malformed > SERVICE_FLOORS["max_malformed_sheds"]:
        failures.append(
            f"{name}: {malformed} malformed refusals (429 without "
            f"Retry-After or 503 without a deadline/drain reason)"
        )
    if rec["hung_workers"] > SERVICE_FLOORS["max_hung_workers"]:
        failures.append(
            f"{name}: {rec['hung_workers']} loadgen workers failed "
            f"to join — a request hung instead of failing fast"
        )
    return failures


def check_service(record: Dict) -> List[str]:
    """Validate a serving record against :data:`SERVICE_FLOORS`."""
    failures = []
    warm = record["warm"]
    rps = warm["throughput_rps"]
    if rps < SERVICE_FLOORS["warm_rps"]:
        failures.append(
            f"service warm-cache throughput {rps:.0f} req/s below "
            f"committed floor {SERVICE_FLOORS['warm_rps']:.0f} req/s"
        )
    total = warm["attempts"]
    error_rate = warm["errors"] / total if total else 1.0
    if error_rate > SERVICE_FLOORS["max_error_rate"]:
        failures.append(
            f"service error rate {error_rate:.2%} above tolerance "
            f"{SERVICE_FLOORS['max_error_rate']:.0%}"
        )
    failures.extend(_check_scenario("warm", warm))
    for name, rec in record.get("overload", {}).items():
        failures.extend(_check_scenario(name, rec))
    stampede = record.get("overload", {}).get("stampede")
    if stampede is not None:
        if stampede["shed"] == 0:
            failures.append(
                "stampede: admission control never shed under 4x "
                "overload — the queue bound is not being enforced"
            )
        if stampede["ok"] == 0:
            failures.append(
                "stampede: zero goodput while overloaded — shedding "
                "must protect service, not replace it"
            )
    slow = record.get("overload", {}).get("slow_engine")
    if slow is not None and slow["unavailable"] == 0:
        failures.append(
            "slow_engine: no deadline 503s despite the engine "
            "running ~10x past the deadline"
        )
    return failures


def render_service(record: Dict) -> str:
    """Human-readable summary of a serving record."""
    warm = record["warm"]
    lat = warm["latency_ms"]
    lines = [
        f"service bench ({record.get('mode', '?')}, "
        f"{warm['benchmark']} on {warm['config']}, "
        f"concurrency={warm['concurrency']})",
        f"  warm /v1/predict     : {warm['throughput_rps']:8.0f} "
        f"req/s  (p50 {lat['p50']:.2f} ms, p99 {lat['p99']:.2f} ms, "
        f"{warm['errors']} errors)",
        f"  result-cache hit rate: {warm['cache_hit_rate']:8.1%}  "
        f"({warm['single_flight_collapsed']} single-flight "
        f"collapses)",
    ]
    for name, rec in record.get("overload", {}).items():
        refused = (
            rec["shed"] + rec["unavailable"] + rec["malformed_shed"]
            + rec["malformed_503"]
        )
        lines.append(
            f"  overload {name:<12}: {rec['ok']:5d} ok, "
            f"{refused} refused, {rec['connection_errors']} conn "
            f"drops, {rec['unexplained_errors']} unexplained, "
            f"{rec['hung_workers']} hung"
        )
    return "\n".join(lines)


def check_bench(result: Dict) -> List[str]:
    """Validate a bench record against :data:`CHECK_FLOORS`.

    Returns human-readable failure lines (empty when everything
    clears its floor) — the substance of ``bench --check``.
    """
    failures = []
    collector = result["collector"]["speedup"]
    if collector < CHECK_FLOORS["collector_speedup"]:
        failures.append(
            f"reuse-distance speedup {collector:.2f}x below committed "
            f"floor {CHECK_FLOORS['collector_speedup']:.1f}x"
        )
    ilp = result["ilp"]["speedup"]
    if ilp < CHECK_FLOORS["ilp_speedup"]:
        failures.append(
            f"fused ILP kernel speedup {ilp:.2f}x below committed "
            f"floor {CHECK_FLOORS['ilp_speedup']:.1f}x"
        )
    err = result["ilp"]["max_rel_err"]
    if err > CHECK_FLOORS["ilp_max_rel_err"]:
        failures.append(
            f"ILP batch/scalar divergence {err:.2e} breaks the "
            f"bit-identity contract (max_rel_err must be 0)"
        )
    exp = result["expand"]["speedup"]
    if exp < CHECK_FLOORS["expand_speedup"]:
        failures.append(
            f"warm-cache expand speedup {exp:.2f}x below committed "
            f"floor {CHECK_FLOORS['expand_speedup']:.1f}x"
        )
    mismatches = result["expand"]["digest_mismatches"]
    if mismatches > 0:
        failures.append(
            f"{mismatches} engine-expanded trace(s) diverge from the "
            f"legacy generator spec (digests must be identical)"
        )
    # The suite floor is an absolute throughput: at toy --scale values
    # fixed per-workload costs dominate and would fail it spuriously,
    # so it is enforced only at the committed scale (CI runs 1.0).
    ips = result["suite"]["ips"]
    if result.get("scale", 1.0) >= 1.0 and ips < CHECK_FLOORS[
        "suite_min_ips"
    ]:
        failures.append(
            f"suite profiling throughput {ips / 1e6:.2f} M instr/s "
            f"below committed floor "
            f"{CHECK_FLOORS['suite_min_ips'] / 1e6:.1f} M instr/s"
        )
    return failures


def render_bench(result: Dict) -> str:
    """Human-readable summary of a bench record."""
    c = result["collector"]
    i = result["ilp"]
    k = result["kernel"]
    e = result["expand"]
    s = result["suite"]
    return "\n".join([
        f"profiler bench ({result['mode']}, scale={result['scale']}, "
        f"{len(result['benchmarks'])} benchmarks)",
        f"  reuse-distance engine: {c['vectorized_aps'] / 1e6:6.2f} M "
        f"accesses/s vectorized vs {c['scalar_aps'] / 1e6:5.2f} M "
        f"scalar  ({c['speedup']:.1f}x)",
        f"  fused ILP kernel     : {i['pools']} pools / {i['samples']} "
        f"samples in {i['batch_s']:.2f}s fused vs "
        f"{i['scalar_s']:.2f}s scalar  ({i['speedup']:.1f}x, "
        f"max rel err {i['max_rel_err']:.1e})",
        f"  mega-batching        : {k['buckets']} width buckets, "
        f"{k['bucket_fill']:.1%} fill, {k['steps']} steps x "
        f"{k['dispatches_per_step']} dispatches "
        f"({k['pools_per_s']:.0f} pools/s)",
        f"  trace-arena expand   : {e['instructions']:,} micro-ops, "
        f"{e['warm_ips'] / 1e6:.1f} M instr/s warm cache vs "
        f"{e['legacy_ips'] / 1e6:.1f} M legacy  "
        f"({e['speedup']:.0f}x warm, {e['speedup_cold']:.1f}x cold, "
        f"memo {e['memo_hit_rate']:.0%}, "
        f"arenas {e['arena_bytes'] / 2**20:.0f} MiB, "
        f"{e['digest_mismatches']} digest mismatches)",
        f"  suite profiling      : {s['instructions']:,} micro-ops in "
        f"{s['wall_clock_s']:.2f}s ({s['ips'] / 1e6:.2f} M instr/s)",
    ])
