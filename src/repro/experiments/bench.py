"""Profiling-throughput benchmark (the BENCH trajectory).

Measures the components the paper's "rapid" claim rests on:

* the reuse-distance front-end — the *exact* chunk schedules the
  profiler records, replayed through the vectorized whole-trace engine
  (:mod:`repro.profiler.batch`) and the seed scalar collectors
  (:mod:`repro.profiler.reference`) on identical inputs;
* the ILP scoreboard — the *exact* per-pool micro-trace samples the
  profiler retains, replayed through the lockstep batch engine
  (:mod:`repro.profiler.ilp_batch`) and the scalar spec
  (:func:`repro.profiler.ilp.build_ilp_table`), with the resulting
  tables cross-checked for equivalence;
* trace expansion — the full suite expanded through the columnar
  planner/executor engine (:mod:`repro.workloads.engine`) behind a
  content-addressed :class:`~repro.experiments.store.TraceCache`,
  against the preserved per-segment spec
  (:func:`repro.workloads.generator.expand`), with every trace
  cross-checked digest-identical;
* the DES replay — the *exact* chunk-granular synchronization
  programs the profiler schedules, replayed through the batched
  scheduler (:func:`repro.runtime.scheduler.run_schedule_batched`)
  and the event-at-a-time spec, with every timeline cross-checked
  digest-identical; plus the whole profiler fast path
  (:func:`repro.profiler.profiler.profile_workload`) against the
  preserved per-chunk spec
  (:func:`~repro.profiler.profiler.profile_workload_reference`), with
  every profile cross-checked for equality;
* the end-to-end suite wall-clock through
  :func:`repro.profiler.profiler.profile_workload` with a warm
  :class:`~repro.core.session.Session` (trace + prep + branch + ILP
  memos — the "profile once, reuse everywhere" economy the cache
  plane buys), with the cold first pass reported alongside.

Results are written as machine-readable ``BENCH_profiler.json`` so the
speedup is tracked across PRs (``python -m repro bench``; the pytest
face lives in ``benchmarks/bench_profiler.py``).  ``python -m repro
bench --check`` additionally enforces the committed
:data:`CHECK_FLOORS` — CI's guard against a silent performance or
equivalence regression.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.session import Session
from repro.experiments.store import TraceCache
from repro.experiments.suites import (
    BenchmarkRef,
    build_workload,
    rodinia_suite,
)
from repro.obs.tracing import (
    enabled as obs_enabled,
    set_enabled as set_obs_enabled,
)
from repro.profiler.batch import replay_data, replay_fetch
from repro.profiler.histogram import RDHistogram
from repro.profiler.ilp import build_ilp_table
from repro.profiler.ilp_batch import (
    DISPATCHES_PER_STEP,
    KERNEL_STATS,
    build_ilp_tables,
)
from repro.profiler.locality import PoolLocality
from repro.profiler.profiler import (
    ILP_SAMPLES_PER_POOL,
    ilp_sample,
    profile_workload,
    profile_workload_reference,
)
from repro.profiler.reference import (
    ScalarFetchLocality,
    ScalarLocalityCollector,
)
from repro.runtime.chunking import chunk_trace
from repro.runtime.scheduler import run_schedule, run_schedule_batched
from repro.workloads.engine import EngineStats, ExpansionEngine
from repro.workloads.generator import expand
from repro.workloads.ir import OP_STORE, fetch_lines

#: 5: adds the ``replay`` section (batched DES scheduler vs the
#: event-at-a-time spec with timeline-digest cross-check, and the
#: vectorized profiler fast path vs the per-chunk reference with a
#: profile-equality cross-check), routes the suite loop through a warm
#: :class:`~repro.core.session.Session`, reports the cold pass
#: separately, commits replay floors and raises the suite floor to
#: the session-warm level.
#: 4: adds the ``expand`` section (columnar arena engine + trace cache
#: vs the per-segment legacy spec: instr/s, memo / cache hit rates,
#: arena bytes, digest cross-check), commits an expand-speedup floor
#: and raises the suite floor to the warm-trace-cache level.
#: 3: adds the ``kernel`` section (fused flat-grid mega-batching:
#: width buckets, fill ratio, per-step dispatch counts, pools/s) and
#: raises the committed ILP floor to the fused-kernel level.
#: 6: adds the ``obs`` section (always-on span instrumentation vs
#: ``REPRO_OBS=off`` on the warm suite loop) and commits the
#: obs-overhead ceiling.
#: 2: added the ``ilp`` section (batched scoreboard vs scalar spec).
BENCH_SCHEMA = 6
#: Quick-mode subset: three locality personalities plus streamcluster,
#: whose sparse address space exercises the engine's fallback path.
QUICK_BENCHMARKS = ("hotspot", "bfs", "srad", "streamcluster")

#: Committed performance/equivalence floors for ``bench --check``.
#: Conservative relative to measured numbers (collector ~10-14x, fused
#: ILP ~13-16x, warm-cache expand >100x, profiler fast path ~2-3x
#: over the per-chunk reference, suite ~10-14 M instr/s session-warm
#: on a developer-class core) to absorb noisy shared runners.
#:
#: ``replay_speedup`` is a *cost-neutrality guard*, not a speedup
#: claim: on the suite's symmetric lockstep threads, chunk end times
#: tie with the heap top, so strides rarely admit more than one
#: segment and the batched scheduler's value is the exact
#: interleaving (``order``) it hands the vectorized emitters — it
#: must merely stay within ~2x of the event-at-a-time spec.  Stride
#: elision pays off on single-thread and asymmetric programs (an
#: unbounded stride when the queue is empty).
CHECK_FLOORS: Dict[str, float] = {
    "collector_speedup": 5.0,
    "ilp_speedup": 9.0,
    "ilp_max_rel_err": 0.0,
    "expand_speedup": 3.0,
    "replay_speedup": 0.5,
    "profiler_speedup": 1.5,
    "suite_min_ips": 4.0e6,
    #: Ceiling, not floor: always-on span instrumentation may cost at
    #: most this fraction of warm-suite wall clock vs REPRO_OBS=off.
    "obs_max_overhead": 0.05,
}

#: Committed serving floors: warm-cache ``/v1/predict`` throughput
#: through the real HTTP stack (req/s) and the end-to-end success
#: requirement.  Measured rates on a developer-class core are in the
#: thousands; 200 absorbs noisy shared CI runners.  The overload
#: floors are the robustness contract: under 4x admission overload,
#: every non-success is *explained* (a well-formed 429 shed, a 503
#: with the deadline echoed, or — only when the scenario kills the
#: server — a connection error), no worker hangs, and the server
#: still serves goodput while shedding.
SERVICE_FLOORS: Dict[str, float] = {
    "warm_rps": 200.0,
    "max_error_rate": 0.0,
    "max_unexplained_errors": 0,
    "max_malformed_sheds": 0,
    "max_hung_workers": 0,
    #: Pre-fork fleet floors, committed at a >=4-core reference and
    #: derated by ``min(4, cpus)/4`` (the ``cpus`` recorded in the
    #: fleet section): 4 workers cannot beat 1 on a 1-core host, so a
    #: shared CI runner is held to what its silicon can physically do
    #: (see :func:`_fleet_floor_scale`).  The cold-mix scaling ratio
    #: also never derates below 0.6 — whatever the host, adding
    #: workers must not *collapse* throughput.
    "fleet_cold_scaling_x": 2.5,
    "fleet_warm_rps": 6000.0,
    "fleet_min_cold_scaling_x": 0.6,
    "fleet_min_respawns": 1,
}


def _fleet_floor_scale(cpus: int) -> float:
    """Fraction of the 4-core reference floors this host is held to."""
    return min(4, max(1, int(cpus))) / 4.0

#: Committed work-queue robustness floors (``BENCH_work.json``): the
#: distributed-runner contract under chaos.  A SIGKILL'd worker's
#: leases must be re-claimed within two lease periods (one period of
#: remaining lease validity plus the survivors' scan cadence and CI
#: scheduler slack), nothing may be lost or double-computed, every
#: claim race must elect exactly one winner, a zombie owner must never
#: publish over a successor, and the fleet-built report must render
#: bit-identical to a single-process run.
WORK_FLOORS: Dict[str, float] = {
    "max_reclaim_lease_periods": 2.0,
    "max_lost_jobs": 0,
    "max_duplicate_effects": 0,
    "max_claim_winners": 1,
    "max_zombie_publications": 0,
    "min_report_identical": 1,
    "max_survivors_hung": 0,
}


class SuiteStreams:
    """The access streams of one benchmark, in profiler chunk order."""

    __slots__ = ("label", "n_threads", "data", "fetch")

    def __init__(self, label: str, n_threads: int) -> None:
        self.label = label
        self.n_threads = n_threads
        #: (tid, pool index, line addrs, store mask) per chunk.
        self.data: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
        #: Per thread: (pool index, fetch lines) per chunk.
        self.fetch: List[List[Tuple[int, np.ndarray]]] = [
            [] for _ in range(n_threads)
        ]

    @property
    def n_accesses(self) -> int:
        return sum(len(c[2]) for c in self.data)

    @property
    def n_fetches(self) -> int:
        return sum(len(f[1]) for fs in self.fetch for f in fs)


def expand_suite(
    refs: Sequence[BenchmarkRef],
    scale: float,
    cache: Optional[TraceCache] = None,
) -> List:
    """Expand every benchmark's trace once, for reuse by extractors.

    Routed through ``cache`` (a content-addressed
    :class:`~repro.experiments.store.TraceCache`) when one is given,
    the columnar engine otherwise.
    """
    specs = [build_workload(ref, scale) for ref in refs]
    if cache is None:
        cache = TraceCache()
    return [cache.get(spec) for spec in specs]


def extract_streams(
    refs: Sequence[BenchmarkRef],
    scale: float,
    chunk: int = 4096,
    traces: Optional[Sequence] = None,
) -> List[SuiteStreams]:
    """Expand and chunk benchmarks into replayable access streams.

    Pool attribution is simplified to one pool per thread — the
    throughput of the engines depends on stream content, not on how
    many pools the counts land in.  Pass pre-expanded ``traces``
    (from :func:`expand_suite`) to avoid re-expanding.
    """
    if traces is None:
        traces = expand_suite(refs, scale)
    out = []
    for trace in traces:
        ctrace = chunk_trace(trace, chunk)
        streams = SuiteStreams(ctrace.name, ctrace.n_threads)
        for t in ctrace.threads:
            for seg in t.segments:
                block = seg.block
                mem = block.memory_indices()
                if len(mem):
                    streams.data.append((
                        t.thread_id, t.thread_id,
                        block.addr[mem], block.op[mem] == OP_STORE,
                    ))
                lines = fetch_lines(block)
                if len(lines):
                    streams.fetch[t.thread_id].append(
                        (t.thread_id, lines)
                    )
        out.append(streams)
    return out


def _run_vectorized(streams: List[SuiteStreams]) -> None:
    for s in streams:
        pools = [PoolLocality() for _ in range(s.n_threads)]
        replay_data(s.data, s.n_threads, pools)
        hists = [RDHistogram() for _ in range(s.n_threads)]
        for tid in range(s.n_threads):
            replay_fetch(s.fetch[tid], hists)


def _run_scalar(streams: List[SuiteStreams]) -> None:
    for s in streams:
        collector = ScalarLocalityCollector(s.n_threads)
        pools = [PoolLocality() for _ in range(s.n_threads)]
        for tid, pidx, addrs, stores in s.data:
            collector.process(tid, addrs, stores, pools[pidx])
        hists = [RDHistogram() for _ in range(s.n_threads)]
        for tid in range(s.n_threads):
            fetcher = ScalarFetchLocality()
            for pidx, lines in s.fetch[tid]:
                fetcher.process(lines, hists[pidx])


def extract_ilp_pools(
    refs: Sequence[BenchmarkRef],
    scale: float,
    chunk: int = 4096,
    traces: Optional[Sequence] = None,
) -> List[List[Tuple[np.ndarray, np.ndarray]]]:
    """Per-pool micro-trace samples, as the profiler retains them.

    Pools follow the profiler's (thread, code-region) keying; the
    retention policy itself (segment-length gate, truncation) is
    :func:`repro.profiler.profiler.ilp_sample` — shared with the
    profiler, so the ILP engines replay exactly the workload
    ``profile_workload`` would hand them.  Pass pre-expanded
    ``traces`` (from :func:`expand_suite`) to avoid re-expanding.
    """
    if traces is None:
        traces = expand_suite(refs, scale)
    pools: List[List[Tuple[np.ndarray, np.ndarray]]] = []
    for trace in traces:
        ctrace = chunk_trace(trace, chunk)
        per_pool: Dict[Tuple[int, int], List] = {}
        for t in ctrace.threads:
            for seg in t.segments:
                sample = ilp_sample(seg.block)
                if sample is None:
                    continue
                key = (t.thread_id, int(seg.block.iline[0]))
                samples = per_pool.setdefault(key, [])
                if len(samples) < ILP_SAMPLES_PER_POOL:
                    samples.append(sample)
        pools.extend(v for v in per_pool.values() if v)
    return pools


def _run_ilp_batch(pools) -> List:
    return build_ilp_tables(pools)


def _run_ilp_scalar(pools) -> List:
    return [build_ilp_table(samples) for samples in pools]


def extract_replay_programs(
    traces: Sequence,
    chunk: int = 4096,
) -> List[Tuple[List[List], List[List[float]]]]:
    """Chunk-granular sync programs, as the profiler schedules them.

    Each trace becomes ``(programs, durations)``: one event list per
    thread (NONE for all but the final chunk of each segment, the
    original synchronization event on the last) and one duration per
    chunk — instruction counts, the same unit-cost convention the
    profiler's functional replay uses to interleave chunks.
    """
    cases = []
    for trace in traces:
        ctrace = chunk_trace(trace, chunk)
        programs = [
            [seg.event for seg in t.segments] for t in ctrace.threads
        ]
        durations = [
            [float(seg.block.n_instructions) for seg in t.segments]
            for t in ctrace.threads
        ]
        cases.append((programs, durations))
    return cases


def _run_replay_batched(cases) -> List:
    return [
        run_schedule_batched(programs, durations)
        for programs, durations in cases
    ]


def _run_replay_spec(cases) -> List:
    results = []
    for programs, durations in cases:
        def execute(tid, idx, start, durs=durations):
            return durs[tid][idx]

        results.append(run_schedule(programs, execute))
    return results


def _table_rel_err(batch_tables, scalar_tables) -> float:
    """Worst relative disagreement across all table fields."""
    worst = 0.0
    for b, s in zip(batch_tables, scalar_tables):
        for attr in ("ilp", "branch_loads", "load_par"):
            a = getattr(b, attr)
            r = getattr(s, attr)
            denom = np.maximum(np.abs(r), 1e-12)
            worst = max(worst, float(np.max(np.abs(a - r) / denom)))
    return worst


def _interleaved(fn_a, fn_b, reps: int) -> Tuple[float, float]:
    """Median times of two competitors measured back to back.

    Alternating the runs (instead of timing each in its own block)
    exposes both to the same background-load environment, and the
    median resists the one-off stalls that a min-of or a single
    measurement would turn into a skewed ratio.
    """
    times_a, times_b = [], []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn_a()
        times_a.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        times_b.append(time.perf_counter() - t0)
    return (
        float(np.median(times_a)), float(np.median(times_b))
    )


def _kernel_delta(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Fused-kernel counter movement between two snapshots."""
    delta = {
        key: after[key] - before[key]
        for key in (
            "pools", "samples", "buckets", "batches", "steps",
            "dispatches", "grid_slots", "occupied_slots",
        )
    }
    delta["bucket_fill"] = (
        delta["occupied_slots"] / delta["grid_slots"]
        if delta["grid_slots"] else 1.0
    )
    return delta


def _write_profile_dump(profiler, path: str) -> None:
    """Write a cProfile top-20 (cumulative and self time) to ``path``.

    The CI perf-smoke job uploads this artifact so the next profiling
    hot spot is identified from CI output, not from a local rerun.
    """
    import pstats

    with open(path, "w") as fh:
        stats = pstats.Stats(profiler, stream=fh)
        stats.sort_stats("cumulative")
        fh.write("== suite profiling: top 20 by cumulative time ==\n")
        stats.print_stats(20)
        fh.write("\n== suite profiling: top 20 by self time ==\n")
        stats.sort_stats("tottime")
        stats.print_stats(20)


def run_profiler_bench(
    quick: bool = False,
    scale: float = 1.0,
    reps: Optional[int] = None,
    output: Optional[str] = None,
    profile_dump: Optional[str] = None,
) -> Dict:
    """Measure profiling throughput; optionally write the JSON record.

    ``quick`` restricts the suite to :data:`QUICK_BENCHMARKS` and
    lowers the repetition count — a smoke-test sized run for CI and
    the ``--quick`` CLI flag.  The full mode replays the entire
    Rodinia suite (the paper's Table II set).  ``profile_dump`` writes
    a cProfile summary of the end-to-end suite loop to the given path.
    """
    refs = rodinia_suite()
    if quick:
        keep = set(QUICK_BENCHMARKS)
        refs = [r for r in refs if r.name in keep]
    if reps is None:
        reps = 2 if quick else 3

    # -- trace expansion: columnar engine + cache vs legacy spec ------------
    # A private session (own engine, own caches, no store) so every
    # memo and hit-rate counter in the record reflects exactly this
    # run, not earlier process history or another run's disk cache.
    engine = ExpansionEngine(stats=EngineStats())
    session = Session(engine=engine)
    tcache = session.traces
    specs = [build_workload(ref, scale) for ref in refs]
    t0 = time.perf_counter()
    traces = [tcache.get(s) for s in specs]  # cold: arenas + memo fill
    expand_cold_s = time.perf_counter() - t0
    expand_instr = sum(t.n_instructions for t in traces)
    # Equivalence: every engine trace must digest-identical the
    # preserved per-segment spec (the expand analogue of the ILP
    # engines' max_rel_err cross-check).
    digest_mismatches = sum(
        1 for s, t in zip(specs, traces)
        if expand(s).content_digest() != t.content_digest()
    )
    expand_warm_s, expand_legacy_s = _interleaved(
        lambda: [tcache.get(s) for s in specs],  # content-addressed hits
        lambda: [expand(s) for s in specs],  # legacy re-expansion
        reps,
    )
    engine_stats = engine.stats.snapshot()
    cache_stats = tcache.stats()

    streams = extract_streams(refs, scale, traces=traces)
    accesses = sum(s.n_accesses for s in streams)
    fetches = sum(s.n_fetches for s in streams)

    _run_vectorized(streams)  # warm-up: page in streams and code paths
    vec_s, scalar_s = _interleaved(
        lambda: _run_vectorized(streams),
        lambda: _run_scalar(streams),
        reps,
    )

    pools = extract_ilp_pools(refs, scale, traces=traces)
    n_samples = sum(len(p) for p in pools)
    replay_cases = extract_replay_programs(traces)
    del traces  # the suite loop below re-resolves through the cache
    kernel_before = KERNEL_STATS.snapshot()
    batch_tables = _run_ilp_batch(pools)  # warm-up + equivalence input
    kernel = _kernel_delta(kernel_before, KERNEL_STATS.snapshot())
    scalar_tables = _run_ilp_scalar(pools)
    ilp_err = _table_rel_err(batch_tables, scalar_tables)
    ilp_batch_s, ilp_scalar_s = _interleaved(
        lambda: _run_ilp_batch(pools),
        lambda: _run_ilp_scalar(pools),
        reps,
    )

    # -- DES replay: batched scheduler vs event-at-a-time spec --------------
    # The exact chunk-granular programs the profiler schedules, with
    # every timeline cross-checked digest-identical.
    batched_results = _run_replay_batched(replay_cases)  # warm-up
    spec_results = _run_replay_spec(replay_cases)
    replay_mismatches = sum(
        1 for b, s in zip(batched_results, spec_results)
        if b.timeline.digest() != s.timeline.digest()
    )
    replay_events = sum(
        len(p) for programs, _ in replay_cases for p in programs
    )
    replay_strides = sum(len(r.order) for r in batched_results)
    del batched_results, spec_results
    replay_batched_s, replay_spec_s = _interleaved(
        lambda: _run_replay_batched(replay_cases),
        lambda: _run_replay_spec(replay_cases),
        reps,
    )

    # -- end-to-end suite loop through the session cache plane --------------
    # Cold pass first: the trace cache is warm (expansion amortized
    # above) but the session's prep/branch/ILP memos are empty — the
    # cost of profiling a benchmark the first time.
    t0 = time.perf_counter()
    instructions = 0
    for spec in specs:
        trace = tcache.get(spec)
        profile = profile_workload(trace, session=session)
        instructions += profile.n_instructions
    suite_cold_s = time.perf_counter() - t0

    # Equivalence: the fast path must reproduce the per-chunk
    # reference profile exactly, benchmark for benchmark.
    profile_mismatches = sum(
        1 for spec in specs
        if profile_workload(tcache.get(spec), session=session).to_dict()
        != profile_workload_reference(tcache.get(spec)).to_dict()
    )

    # Steady state: every memo warm — the number the raised
    # suite_min_ips floor gates, and the regime every production call
    # site (service, suites, scaling curves) now runs in.  The
    # reference competitor is timed back to back on the same traces.
    def _suite_fast() -> None:
        for spec in specs:
            profile_workload(tcache.get(spec), session=session)

    suite_s, suite_reference_s = _interleaved(
        _suite_fast,
        lambda: [
            profile_workload_reference(tcache.get(s)) for s in specs
        ],
        reps,
    )
    prep_stats = session.prep.stats()
    prep_lookups = prep_stats["hits"] + prep_stats["misses"]

    # Observability overhead: the same warm suite loop with span
    # instrumentation on vs off (what ``REPRO_OBS=off`` disables).
    # The committed ceiling keeps always-on telemetry at <= 5% of
    # suite throughput — stage-granular spans, never per-chunk.
    obs_prev = obs_enabled()

    def _suite_obs_on() -> None:
        set_obs_enabled(True)
        _suite_fast()

    def _suite_obs_off() -> None:
        set_obs_enabled(False)
        _suite_fast()

    try:
        obs_on_s, obs_off_s = _interleaved(
            _suite_obs_on, _suite_obs_off, max(3, reps)
        )
    finally:
        set_obs_enabled(obs_prev)

    if profile_dump:
        # A *separate* instrumented rerun: cProfile tracing costs
        # ~20%, which must not contaminate the timed number the
        # suite_min_ips floor gates.
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        for spec in specs:
            profile_workload(tcache.get(spec), session=session)
        profiler.disable()
        _write_profile_dump(profiler, profile_dump)

    total = accesses + fetches
    result = {
        "schema": BENCH_SCHEMA,
        "mode": "quick" if quick else "full",
        "scale": scale,
        "benchmarks": [r.label for r in refs],
        "collector": {
            "data_accesses": int(accesses),
            "fetches": int(fetches),
            "vectorized_s": vec_s,
            "scalar_s": scalar_s,
            "vectorized_aps": total / vec_s,
            "scalar_aps": total / scalar_s,
            "speedup": scalar_s / vec_s,
        },
        "ilp": {
            "pools": len(pools),
            "samples": int(n_samples),
            "batch_s": ilp_batch_s,
            "scalar_s": ilp_scalar_s,
            "speedup": ilp_scalar_s / ilp_batch_s,
            "max_rel_err": ilp_err,
        },
        "kernel": {
            "buckets": int(kernel["buckets"]),
            "bucket_fill": kernel["bucket_fill"],
            "steps": int(kernel["steps"]),
            "dispatches": int(kernel["dispatches"]),
            "dispatches_per_step": DISPATCHES_PER_STEP,
            "pools_per_s": len(pools) / ilp_batch_s,
        },
        "expand": {
            "instructions": int(expand_instr),
            "legacy_s": expand_legacy_s,
            "cold_s": expand_cold_s,
            "warm_s": expand_warm_s,
            "legacy_ips": expand_instr / expand_legacy_s,
            "cold_ips": expand_instr / expand_cold_s,
            "warm_ips": expand_instr / expand_warm_s,
            "speedup": expand_legacy_s / expand_warm_s,
            "speedup_cold": expand_legacy_s / expand_cold_s,
            "memo_hit_rate": engine_stats["memo_hit_rate"],
            "cache_hit_rate": (
                cache_stats["hits"]
                / (cache_stats["hits"] + cache_stats["misses"])
                if cache_stats["hits"] + cache_stats["misses"] else 0.0
            ),
            "arena_bytes": int(engine_stats["arena_bytes"]),
            "digest_mismatches": int(digest_mismatches),
        },
        "replay": {
            "programs": len(replay_cases),
            "events": int(replay_events),
            "strides": int(replay_strides),
            "batched_s": replay_batched_s,
            "spec_s": replay_spec_s,
            "speedup": replay_spec_s / replay_batched_s,
            "digest_mismatches": int(replay_mismatches),
            "profiler_fast_s": suite_s,
            "profiler_reference_s": suite_reference_s,
            "profiler_speedup": suite_reference_s / suite_s,
            "profile_mismatches": int(profile_mismatches),
            "prep_hit_rate": (
                prep_stats["hits"] / prep_lookups if prep_lookups
                else 0.0
            ),
        },
        "suite": {
            "wall_clock_s": suite_s,
            "cold_s": suite_cold_s,
            "instructions": int(instructions),
            "ips": instructions / suite_s,
            "cold_ips": instructions / suite_cold_s,
        },
        "obs": {
            "instrumented_s": obs_on_s,
            "disabled_s": obs_off_s,
            "overhead_frac": obs_on_s / obs_off_s - 1.0,
            "max_overhead_frac": CHECK_FLOORS["obs_max_overhead"],
        },
    }
    if output:
        with open(output, "w") as fh:
            json.dump(result, fh, indent=2)
    return result


def run_service_bench(
    quick: bool = False,
    output: Optional[str] = "BENCH_service.json",
    duration_s: Optional[float] = None,
    concurrency: int = 8,
    scale: float = 0.5,
    overload: bool = True,
    fleet: bool = True,
) -> Dict:
    """Measure warm-cache serving throughput AND overload behavior.

    Boots the asyncio HTTP server on an ephemeral port (memory-only
    engine, so the record reflects this build, not a previous run's
    disk cache), drives it with the closed-loop load generator, runs
    the chaos/overload scenarios (stampede, slow engine, kill
    mid-burst) against dedicated servers, then the pre-fork fleet
    sweep (aggregate rps at N=1/2/4 over a shared store + the
    SIGKILL-respawn chaos scenario).  Writes the schema-3
    ``BENCH_service.json`` record:
    ``{"warm": ..., "overload": ..., "fleet": ...}``.

    The fleet sweep spawns real worker processes, so the caller's
    ``__main__`` module must be import-safe (pytest and ``python -m
    repro`` both are).
    """
    from repro.service.engine import PredictionEngine
    from repro.service.loadgen import (
        SERVICE_BENCH_SCHEMA, run_fleet_bench, run_loadgen,
        run_overload_scenarios,
    )
    from repro.service.server import BackgroundServer

    if duration_s is None:
        duration_s = 1.5 if quick else 4.0
    engine = PredictionEngine(store=None)
    with BackgroundServer(engine=engine, workers=2) as server:
        warm = run_loadgen(
            "127.0.0.1", server.port,
            benchmark="rodinia.nn", config="base", scale=scale,
            duration_s=duration_s, concurrency=concurrency,
        )
    record = {
        "schema": SERVICE_BENCH_SCHEMA,
        "mode": "quick" if quick else "full",
        "warm": warm,
        "overload": (
            run_overload_scenarios(quick=quick, scale=scale)
            if overload else {}
        ),
    }
    if fleet:
        record["fleet"] = run_fleet_bench(
            quick=quick, scale=scale, concurrency=concurrency,
        )
    if output:
        with open(output, "w") as fh:
            json.dump(record, fh, indent=2)
    return record


def _check_scenario(name: str, rec: Dict) -> List[str]:
    """Floors shared by every overload scenario record."""
    failures = []
    if rec["unexplained_errors"] > SERVICE_FLOORS[
        "max_unexplained_errors"
    ]:
        failures.append(
            f"{name}: {rec['unexplained_errors']} unexplained errors "
            f"(budget is 0 — every failure must be a typed shed, "
            f"deadline 503, or expected connection drop)"
        )
    malformed = rec["malformed_shed"] + rec["malformed_503"]
    if malformed > SERVICE_FLOORS["max_malformed_sheds"]:
        failures.append(
            f"{name}: {malformed} malformed refusals (429 without "
            f"Retry-After or 503 without a deadline/drain reason)"
        )
    if rec["hung_workers"] > SERVICE_FLOORS["max_hung_workers"]:
        failures.append(
            f"{name}: {rec['hung_workers']} loadgen workers failed "
            f"to join — a request hung instead of failing fast"
        )
    return failures


def check_service(record: Dict) -> List[str]:
    """Validate a serving record against :data:`SERVICE_FLOORS`."""
    failures = []
    warm = record["warm"]
    rps = warm["throughput_rps"]
    if rps < SERVICE_FLOORS["warm_rps"]:
        failures.append(
            f"service warm-cache throughput {rps:.0f} req/s below "
            f"committed floor {SERVICE_FLOORS['warm_rps']:.0f} req/s"
        )
    total = warm["attempts"]
    error_rate = warm["errors"] / total if total else 1.0
    if error_rate > SERVICE_FLOORS["max_error_rate"]:
        failures.append(
            f"service error rate {error_rate:.2%} above tolerance "
            f"{SERVICE_FLOORS['max_error_rate']:.0%}"
        )
    failures.extend(_check_scenario("warm", warm))
    for name, rec in record.get("overload", {}).items():
        failures.extend(_check_scenario(name, rec))
    stampede = record.get("overload", {}).get("stampede")
    if stampede is not None:
        if stampede["shed"] == 0:
            failures.append(
                "stampede: admission control never shed under 4x "
                "overload — the queue bound is not being enforced"
            )
        if stampede["ok"] == 0:
            failures.append(
                "stampede: zero goodput while overloaded — shedding "
                "must protect service, not replace it"
            )
    slow = record.get("overload", {}).get("slow_engine")
    if slow is not None and slow["unavailable"] == 0:
        failures.append(
            "slow_engine: no deadline 503s despite the engine "
            "running ~10x past the deadline"
        )
    failures.extend(check_fleet(record.get("fleet")))
    return failures


def check_fleet(fleet: Optional[Dict]) -> List[str]:
    """Per-worker-scaling floors over the ``fleet`` record section.

    The scaling and aggregate-rps floors are committed at a 4-core
    reference and derated by the benched host's ``cpus`` — a 1-core
    runner cannot parallelize 4 processes, but it must still not
    *lose* throughput to the fleet machinery, and zero-unexplained /
    respawn floors hold everywhere.
    """
    if not fleet:
        return []
    failures = []
    scale_f = _fleet_floor_scale(fleet.get("cpus", 1))
    scaling_floor = max(
        SERVICE_FLOORS["fleet_min_cold_scaling_x"],
        SERVICE_FLOORS["fleet_cold_scaling_x"] * scale_f,
    )
    scaling = fleet.get("cold_scaling_x", 0.0)
    if scaling < scaling_floor:
        failures.append(
            f"fleet: cold-mix scaling {scaling:.2f}x below floor "
            f"{scaling_floor:.2f}x (reference "
            f"{SERVICE_FLOORS['fleet_cold_scaling_x']:.1f}x at >=4 "
            f"cores, derated for {fleet.get('cpus', 1)} cpu(s))"
        )
    warm_floor = SERVICE_FLOORS["fleet_warm_rps"] * scale_f
    warm_rps = fleet.get("warm_aggregate_rps", 0.0)
    if warm_rps < warm_floor:
        failures.append(
            f"fleet: warm aggregate {warm_rps:.0f} req/s below floor "
            f"{warm_floor:.0f} req/s (reference "
            f"{SERVICE_FLOORS['fleet_warm_rps']:.0f} at >=4 cores, "
            f"derated for {fleet.get('cpus', 1)} cpu(s))"
        )
    for n, rec in fleet.get("workers", {}).items():
        for profile in ("warm", "cold"):
            failures.extend(
                _check_scenario(f"fleet[N={n}] {profile}", rec[profile])
            )
            if rec[profile]["ok"] == 0:
                failures.append(
                    f"fleet[N={n}] {profile}: zero successful requests"
                )
    chaos = fleet.get("chaos")
    if chaos is not None:
        failures.extend(_check_scenario("fleet kill_worker", chaos))
        if chaos["respawns"] < SERVICE_FLOORS["fleet_min_respawns"]:
            failures.append(
                "fleet kill_worker: the supervisor never respawned "
                "the SIGKILL'd worker"
            )
        if not chaos.get("post_kill_ok"):
            failures.append(
                "fleet kill_worker: no successful request after the "
                "kill — the fleet did not keep serving"
            )
    return failures


def render_service(record: Dict) -> str:
    """Human-readable summary of a serving record."""
    warm = record["warm"]
    lat = warm["latency_ms"]
    lines = [
        f"service bench ({record.get('mode', '?')}, "
        f"{warm['benchmark']} on {warm['config']}, "
        f"concurrency={warm['concurrency']})",
        f"  warm /v1/predict     : {warm['throughput_rps']:8.0f} "
        f"req/s  (p50 {lat['p50']:.2f} ms, p99 {lat['p99']:.2f} ms, "
        f"{warm['errors']} errors)",
        f"  result-cache hit rate: {warm['cache_hit_rate']:8.1%}  "
        f"({warm['single_flight_collapsed']} single-flight "
        f"collapses)",
    ]
    for name, rec in record.get("overload", {}).items():
        refused = (
            rec["shed"] + rec["unavailable"] + rec["malformed_shed"]
            + rec["malformed_503"]
        )
        lines.append(
            f"  overload {name:<12}: {rec['ok']:5d} ok, "
            f"{refused} refused, {rec['connection_errors']} conn "
            f"drops, {rec['unexplained_errors']} unexplained, "
            f"{rec['hung_workers']} hung"
        )
    fleet = record.get("fleet")
    if fleet:
        lines.append(
            f"  fleet ({fleet['cpus']} cpu(s), floors derated x"
            f"{_fleet_floor_scale(fleet['cpus']):.2f}):"
        )
        for n, rec in sorted(
            fleet.get("workers", {}).items(), key=lambda kv: int(kv[0])
        ):
            lines.append(
                f"    N={n}: warm {rec['warm']['goodput_rps']:7.0f} "
                f"req/s  cold {rec['cold']['goodput_rps']:7.0f} req/s"
                f"  ({len(rec['cold'].get('workers', {}))} worker(s) "
                f"served)"
            )
        lines.append(
            f"    cold scaling {fleet.get('cold_scaling_x', 0):.2f}x, "
            f"warm aggregate {fleet.get('warm_aggregate_rps', 0):.0f} "
            f"req/s"
        )
        chaos = fleet.get("chaos")
        if chaos:
            lines.append(
                f"    kill_worker: {chaos['ok']} ok, "
                f"{chaos['connection_errors']} conn drops, "
                f"{chaos['unexplained_errors']} unexplained, "
                f"{chaos['respawns']} respawn(s), post-kill "
                f"{'ok' if chaos.get('post_kill_ok') else 'FAILED'}"
            )
    return "\n".join(lines)


def run_work_bench(
    quick: bool = False,
    output: Optional[str] = "BENCH_work.json",
) -> Dict:
    """Run the work-queue chaos scenarios and record the results.

    Kill-mid-lease (real SIGKILL of a spawned worker holding live
    leases), stale-lease takeover, and the duplicate-claim race —
    the crash-safety substance behind ``repro work``.  Writes the
    schema-1 ``BENCH_work.json`` record.

    The kill scenario spawns real worker processes, so the caller's
    ``__main__`` module must be import-safe (pytest and ``python -m
    repro`` both are).
    """
    from repro.experiments.workqueue import (
        WORK_BENCH_SCHEMA, run_work_scenarios,
    )

    record = {
        "schema": WORK_BENCH_SCHEMA,
        "mode": "quick" if quick else "full",
        "scenarios": run_work_scenarios(quick=quick),
    }
    if output:
        with open(output, "w") as fh:
            json.dump(record, fh, indent=2)
    return record


def check_work(record: Dict) -> List[str]:
    """Validate a work-queue record against :data:`WORK_FLOORS`."""
    failures = []
    scenarios = record.get("scenarios", {})
    kill = scenarios.get("kill_mid_lease")
    if kill is not None:
        if not kill["killed"]:
            failures.append(
                "kill_mid_lease: the victim worker was never killed "
                "— the scenario did not exercise the crash path"
            )
        if kill["reclaim_lease_periods"] > WORK_FLOORS[
            "max_reclaim_lease_periods"
        ]:
            failures.append(
                f"kill_mid_lease: stolen leases re-claimed after "
                f"{kill['reclaim_lease_periods']:.2f} lease periods, "
                f"above the committed "
                f"{WORK_FLOORS['max_reclaim_lease_periods']:.1f}"
            )
        if kill["lost_jobs"] > WORK_FLOORS["max_lost_jobs"]:
            failures.append(
                f"kill_mid_lease: {kill['lost_jobs']} job(s) never "
                f"completed — a SIGKILL lost work"
            )
        if kill["duplicate_effects"] > WORK_FLOORS[
            "max_duplicate_effects"
        ]:
            failures.append(
                f"kill_mid_lease: {kill['duplicate_effects']} "
                f"double-computed key(s) — idempotence is broken"
            )
        if kill["report_identical"] < WORK_FLOORS[
            "min_report_identical"
        ]:
            failures.append(
                "kill_mid_lease: the fleet-built report differs from "
                "the single-process run (must be bit-identical)"
            )
        if kill["survivors_hung"] > WORK_FLOORS["max_survivors_hung"]:
            failures.append(
                f"kill_mid_lease: {kill['survivors_hung']} surviving "
                f"worker(s) failed to drain and exit"
            )
    stale = scenarios.get("stale_takeover")
    if stale is not None:
        if stale["takeover_claims"] < 1:
            failures.append(
                "stale_takeover: an expired lease was never "
                "re-claimed — takeover is broken"
            )
        if stale["zombie_published"] > WORK_FLOORS[
            "max_zombie_publications"
        ]:
            failures.append(
                "stale_takeover: a zombie owner published a "
                "completion over the new owner"
            )
        if stale["lost_jobs"] > WORK_FLOORS["max_lost_jobs"]:
            failures.append(
                f"stale_takeover: {stale['lost_jobs']} job(s) lost"
            )
    race = scenarios.get("duplicate_claim_race")
    if race is not None:
        if race["max_winners"] > WORK_FLOORS["max_claim_winners"]:
            failures.append(
                f"duplicate_claim_race: {race['max_winners']} "
                f"claimers won the same key in one round (exactly "
                f"one O_EXCL winner is the contract)"
            )
        if race["min_winners"] < 1:
            failures.append(
                "duplicate_claim_race: a round elected no winner — "
                "a claimable job was skipped by every claimer"
            )
    return failures


def render_work(record: Dict) -> str:
    """Human-readable summary of a work-queue chaos record."""
    scenarios = record.get("scenarios", {})
    lines = [f"work-queue chaos ({record.get('mode', '?')})"]
    kill = scenarios.get("kill_mid_lease")
    if kill is not None:
        lines.append(
            f"  kill mid-lease       : victim held "
            f"{kill['victim_held_leases']} lease(s), re-claimed in "
            f"{kill['reclaim_s']:.2f}s "
            f"({kill['reclaim_lease_periods']:.2f} lease periods); "
            f"{kill['done']}/{kill['jobs']} jobs done, "
            f"{kill['lost_jobs']} lost, "
            f"{kill['duplicate_effects']} duplicate effects, report "
            f"{'identical' if kill['report_identical'] else 'DIVERGED'}"
        )
    stale = scenarios.get("stale_takeover")
    if stale is not None:
        lines.append(
            f"  stale-lease takeover : {stale['takeover_claims']} "
            f"takeover(s), zombie published "
            f"{stale['zombie_published']}, survivor published "
            f"{stale['survivor_published']}"
        )
    race = scenarios.get("duplicate_claim_race")
    if race is not None:
        lines.append(
            f"  duplicate-claim race : {race['rounds']} rounds x "
            f"{race['claimers']} claimers, winners per round "
            f"{race['min_winners']}..{race['max_winners']}"
        )
    return "\n".join(lines)


def check_bench(result: Dict) -> List[str]:
    """Validate a bench record against :data:`CHECK_FLOORS`.

    Returns human-readable failure lines (empty when everything
    clears its floor) — the substance of ``bench --check``.
    """
    failures = []
    collector = result["collector"]["speedup"]
    if collector < CHECK_FLOORS["collector_speedup"]:
        failures.append(
            f"reuse-distance speedup {collector:.2f}x below committed "
            f"floor {CHECK_FLOORS['collector_speedup']:.1f}x"
        )
    ilp = result["ilp"]["speedup"]
    if ilp < CHECK_FLOORS["ilp_speedup"]:
        failures.append(
            f"fused ILP kernel speedup {ilp:.2f}x below committed "
            f"floor {CHECK_FLOORS['ilp_speedup']:.1f}x"
        )
    err = result["ilp"]["max_rel_err"]
    if err > CHECK_FLOORS["ilp_max_rel_err"]:
        failures.append(
            f"ILP batch/scalar divergence {err:.2e} breaks the "
            f"bit-identity contract (max_rel_err must be 0)"
        )
    exp = result["expand"]["speedup"]
    if exp < CHECK_FLOORS["expand_speedup"]:
        failures.append(
            f"warm-cache expand speedup {exp:.2f}x below committed "
            f"floor {CHECK_FLOORS['expand_speedup']:.1f}x"
        )
    mismatches = result["expand"]["digest_mismatches"]
    if mismatches > 0:
        failures.append(
            f"{mismatches} engine-expanded trace(s) diverge from the "
            f"legacy generator spec (digests must be identical)"
        )
    replay = result["replay"]
    if replay["speedup"] < CHECK_FLOORS["replay_speedup"]:
        failures.append(
            f"batched DES replay at {replay['speedup']:.2f}x of the "
            f"spec scheduler, below the "
            f"{CHECK_FLOORS['replay_speedup']:.1f}x cost-neutrality "
            f"guard"
        )
    if replay["digest_mismatches"] > 0:
        failures.append(
            f"{replay['digest_mismatches']} batched replay(s) diverge "
            f"from the event-at-a-time scheduler spec (timeline "
            f"digests must be identical)"
        )
    if replay["profiler_speedup"] < CHECK_FLOORS["profiler_speedup"]:
        failures.append(
            f"profiler fast-path speedup {replay['profiler_speedup']:.2f}x "
            f"below committed floor "
            f"{CHECK_FLOORS['profiler_speedup']:.1f}x"
        )
    if replay["profile_mismatches"] > 0:
        failures.append(
            f"{replay['profile_mismatches']} fast-path profile(s) "
            f"diverge from the per-chunk reference (profiles must be "
            f"identical)"
        )
    # The suite floor is an absolute throughput: at toy --scale values
    # fixed per-workload costs dominate and would fail it spuriously,
    # so it is enforced only at the committed scale (CI runs 1.0).
    ips = result["suite"]["ips"]
    if result.get("scale", 1.0) >= 1.0 and ips < CHECK_FLOORS[
        "suite_min_ips"
    ]:
        failures.append(
            f"suite profiling throughput {ips / 1e6:.2f} M instr/s "
            f"below committed floor "
            f"{CHECK_FLOORS['suite_min_ips'] / 1e6:.1f} M instr/s"
        )
    # Obs overhead is a ratio of two timed loops: at toy --scale the
    # fixed span cost dominates a tiny workload, so (like the absolute
    # suite floor) it is enforced only at the committed scale.
    obs = result.get("obs")
    if obs is not None and result.get("scale", 1.0) >= 1.0:
        if obs["overhead_frac"] > CHECK_FLOORS["obs_max_overhead"]:
            failures.append(
                f"observability overhead {obs['overhead_frac']:+.1%} "
                f"(instrumented vs REPRO_OBS=off) above committed "
                f"ceiling {CHECK_FLOORS['obs_max_overhead']:.0%}"
            )
    return failures


def render_bench(result: Dict) -> str:
    """Human-readable summary of a bench record."""
    c = result["collector"]
    i = result["ilp"]
    k = result["kernel"]
    e = result["expand"]
    r = result["replay"]
    s = result["suite"]
    o = result["obs"]
    return "\n".join([
        f"profiler bench ({result['mode']}, scale={result['scale']}, "
        f"{len(result['benchmarks'])} benchmarks)",
        f"  reuse-distance engine: {c['vectorized_aps'] / 1e6:6.2f} M "
        f"accesses/s vectorized vs {c['scalar_aps'] / 1e6:5.2f} M "
        f"scalar  ({c['speedup']:.1f}x)",
        f"  fused ILP kernel     : {i['pools']} pools / {i['samples']} "
        f"samples in {i['batch_s']:.2f}s fused vs "
        f"{i['scalar_s']:.2f}s scalar  ({i['speedup']:.1f}x, "
        f"max rel err {i['max_rel_err']:.1e})",
        f"  mega-batching        : {k['buckets']} width buckets, "
        f"{k['bucket_fill']:.1%} fill, {k['steps']} steps x "
        f"{k['dispatches_per_step']} dispatches "
        f"({k['pools_per_s']:.0f} pools/s)",
        f"  trace-arena expand   : {e['instructions']:,} micro-ops, "
        f"{e['warm_ips'] / 1e6:.1f} M instr/s warm cache vs "
        f"{e['legacy_ips'] / 1e6:.1f} M legacy  "
        f"({e['speedup']:.0f}x warm, {e['speedup_cold']:.1f}x cold, "
        f"memo {e['memo_hit_rate']:.0%}, "
        f"arenas {e['arena_bytes'] / 2**20:.0f} MiB, "
        f"{e['digest_mismatches']} digest mismatches)",
        f"  batched DES replay   : {r['events']:,} events in "
        f"{r['batched_s'] * 1e3:.1f} ms batched vs "
        f"{r['spec_s'] * 1e3:.1f} ms spec  ({r['speedup']:.1f}x, "
        f"{r['digest_mismatches']} digest mismatches)",
        f"  profiler fast path   : {r['profiler_fast_s']:.2f}s vs "
        f"{r['profiler_reference_s']:.2f}s per-chunk reference  "
        f"({r['profiler_speedup']:.1f}x, {r['profile_mismatches']} "
        f"profile mismatches, prep memo {r['prep_hit_rate']:.0%})",
        f"  suite profiling      : {s['instructions']:,} micro-ops in "
        f"{s['wall_clock_s']:.2f}s warm ({s['ips'] / 1e6:.2f} M "
        f"instr/s; cold {s['cold_ips'] / 1e6:.2f} M)",
        f"  obs overhead         : "
        f"{o['overhead_frac']:+.1%} instrumented vs REPRO_OBS=off "
        f"({o['instrumented_s']:.2f}s vs {o['disabled_s']:.2f}s, "
        f"ceiling {o['max_overhead_frac']:.0%})",
    ])
