"""Crash-safe distributed work queue over the content-addressed store.

``report --jobs N`` used to be a single-host ``ProcessPoolExecutor``
that died with its parent and silently lost work on a worker crash.
This module replaces that coupling with a filesystem-backed queue
living under the artifact-store root: any number of worker processes —
on one host or on many hosts sharing the store directory — claim jobs
via atomic lease files and execute them *idempotently*, so at-least-
once delivery composes with content addressing to give exactly-once
**effects**.  A worker SIGKILL'd at any instant loses nothing: its
leases expire one lease period after its last heartbeat and survivors
re-claim the jobs; every result publishes through the store's
fsync+rename path, so a crash leaves at worst an orphan ``*.tmp``.

Layout (all under ``<store root>/queue/``)::

    jobs/p<prio>-<key>.json   pending job specs (atomic writes);
                              priority orders profiles before the
                              predictions/simulations that read them
    leases/<key>.lease        exclusive claims: created with
                              O_CREAT|O_EXCL, owner/pid/host/token in
                              the body, liveness in the mtime (renewed
                              by heartbeats)
    done/<key>.json           completion markers, also O_EXCL — the
                              second completer of a key is *counted*
                              (``completed_duplicate``), never trusted
    events/<owner>.jsonl      per-worker append-only event logs (no
                              write races); the chaos scenarios and
                              ``repro work stats`` read them back

The lease protocol, in full:

* **claim** — ``os.open(lease, O_CREAT|O_EXCL)``: the filesystem
  elects exactly one winner per key no matter how many claimers race
  (the ``queue.claim`` fault point widens that race in tests).
* **heartbeat** — a side thread renews the lease mtime every
  ``heartbeat_s`` and re-reads the owner token; a missing or foreign
  token means the lease was taken over, and the worker *abandons* the
  job — it may finish computing (idempotent, harmless) but never
  publishes a completion over the new owner.
* **expiry / takeover** — a lease older than ``lease_s`` is dead by
  contract (the owner missed every heartbeat).  Takeover renames the
  lease to a claimant-unique name — one winner even when many
  survivors notice the same corpse — then unlinks it and claims
  freshly via O_EXCL (the ``queue.lease`` fault point sits in that
  window).
* **complete** — write the ``done/`` marker (O_EXCL), unlink the job
  file, then release the lease only after re-verifying the owner
  token.  A crash between any two steps is safe: the artifact is
  already in the store, so the next claimer's execution is a no-op.

Telemetry: every process exports ``repro_work_*`` gauges (jobs
claimed / completed / re-claimed / expired, heartbeats, abandons)
through :data:`repro.obs.REGISTRY` plus a
``repro_work_lease_age_seconds`` histogram of lease ages observed at
heartbeat and completion time.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.store import ProfileStore, fingerprint
from repro.obs import REGISTRY, get_logger
from repro.testing.faults import FAULTS

#: Queue artifact schema; bump when the job payload layout changes.
QUEUE_SCHEMA = 1

#: ``BENCH_work.json`` record schema (the chaos-scenario results).
WORK_BENCH_SCHEMA = 1

#: Default lease length: a worker that misses every heartbeat for this
#: long is dead by contract and its jobs are up for takeover.
DEFAULT_LEASE_S = 15.0

#: Default heartbeat interval (and idle re-scan period): a live worker
#: renews its lease several times per lease period, so a lease only
#: ever *looks* expired when the owner really stopped heartbeating.
DEFAULT_HEARTBEAT_S = 3.0

#: Job kinds, in claim-priority order: profiles first, because the
#: prediction/simulation jobs behind them read the profile artifact
#: (any worker *can* compute a missing profile itself — idempotent —
#: but ordering avoids redundant work).
JOB_KINDS = ("profile", "predict", "simulate", "bench-baseline")
_PRIORITY = {"profile": 0, "predict": 1, "simulate": 1,
             "bench-baseline": 2}

_log = get_logger("repro.work")

#: Lease ages (seconds since claim) observed at heartbeat/completion.
LEASE_AGE = REGISTRY.histogram(
    "repro_work_lease_age_seconds",
    "Age of live leases observed at heartbeat and completion",
)


class QueueCounters:
    """Thread-safe per-process accounting for queue operations.

    The authoritative struct behind the ``repro_work_*`` gauges (the
    obs plane projects it at scrape time, never copies it).  Worker
    processes each carry their own instance; cross-process truth lives
    in the queue directories and event logs, which
    :meth:`WorkQueue.stats` reads back.
    """

    _FIELDS = (
        "enqueued",
        "claimed",
        "claim_errors",
        "completed",
        "completed_noop",
        "completed_duplicate",
        "expired",
        "reclaimed",
        "heartbeats",
        "heartbeat_failures",
        "abandoned",
        "released",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {f: 0 for f in self._FIELDS}

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counts[name] += by

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


#: Process-wide counters shared by every WorkQueue in this process.
WORK_COUNTERS = QueueCounters()


def _collect_work_metrics(m) -> None:
    """Scrape-time projection of :data:`WORK_COUNTERS` into gauges."""
    for name, value in WORK_COUNTERS.snapshot().items():
        m.gauge(
            f"repro_work_{name}",
            f"Work-queue {name.replace('_', ' ')} in this process",
        ).set(value)


REGISTRY.register_collector("workqueue", _collect_work_metrics)


@dataclass(frozen=True)
class Job:
    """One idempotent unit of work, addressed by its content key.

    Everything is JSON-scalar so a job file round-trips bit-exactly;
    configurations travel as Table IV design-point names plus a core
    count (the identity every report artifact uses), never as pickled
    objects — a queue shared between hosts must not care which build
    enqueued a job.
    """

    kind: str  # one of JOB_KINDS
    suite: str  # "rodinia" | "parsec"
    benchmark: str
    scale: float = 1.0
    chunk: int = 4096
    config: Optional[str] = None  # Table IV point (predict/simulate)
    cores: int = 4

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.kind in ("predict", "simulate") and not self.config:
            raise ValueError(f"{self.kind} jobs need a config name")

    @property
    def key(self) -> str:
        """Content address: the canonical job structure, hashed."""
        return fingerprint({
            "kind": "workqueue-job",
            "schema": QUEUE_SCHEMA,
            "job": dataclasses.asdict(self),
        })

    @property
    def priority(self) -> int:
        return _PRIORITY[self.kind]

    @property
    def label(self) -> str:
        tail = f":{self.config}" if self.config else ""
        return f"{self.kind}:{self.suite}.{self.benchmark}{tail}"

    def to_payload(self) -> Dict[str, Any]:
        return {"schema": QUEUE_SCHEMA, "job": dataclasses.asdict(self)}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Job":
        if payload.get("schema") != QUEUE_SCHEMA:
            raise ValueError("stale work-queue job schema")
        return cls(**payload["job"])


@dataclass
class Lease:
    """One successful claim: the job, its paths, and our identity."""

    job: Job
    path: Path  # the lease file
    job_path: Path
    owner: str
    token: str
    acquired: float  # time.monotonic() at claim
    #: Set by the heartbeat (or a failed ownership re-check): the lease
    #: was taken over and this worker must not publish a completion.
    lost: bool = False

    @property
    def age_s(self) -> float:
        return time.monotonic() - self.acquired


def _default_owner() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class WorkQueue:
    """Filesystem-backed job queue under ``<store root>/queue/``.

    Every operation is multi-writer safe by construction: enqueues go
    through atomic temp+rename writes, claims through ``O_EXCL`` lease
    creates, takeovers through a rename that only one claimant can
    win, completions through ``O_EXCL`` done markers.  A process dying
    at any instant leaves either a pending job (re-claimable once its
    lease expires) or a completed one — never a lost or half-done job.
    """

    def __init__(
        self,
        root: os.PathLike,
        lease_s: float = DEFAULT_LEASE_S,
        heartbeat_s: Optional[float] = None,
        owner: Optional[str] = None,
    ) -> None:
        base = Path(root)
        #: Accept either a store root or the queue directory itself.
        self.root = base if base.name == "queue" else base / "queue"
        self.lease_s = float(lease_s)
        self.heartbeat_s = (
            float(heartbeat_s) if heartbeat_s is not None
            else max(0.05, self.lease_s / 5.0)
        )
        self.owner = owner if owner is not None else _default_owner()
        #: Claimant-unique token: distinguishes two claims by the same
        #: owner string and names the takeover rename target.
        self._token_seq = 0
        self.counters = WORK_COUNTERS
        self._events_fd: Optional[int] = None

    # -- paths --------------------------------------------------------------

    @property
    def jobs_dir(self) -> Path:
        return self.root / "jobs"

    @property
    def leases_dir(self) -> Path:
        return self.root / "leases"

    @property
    def done_dir(self) -> Path:
        return self.root / "done"

    @property
    def events_dir(self) -> Path:
        return self.root / "events"

    def _job_path(self, job: Job) -> Path:
        return self.jobs_dir / f"p{job.priority}-{job.key}.json"

    def _lease_path(self, key: str) -> Path:
        return self.leases_dir / f"{key}.lease"

    def _done_path(self, key: str) -> Path:
        return self.done_dir / f"{key}.json"

    @staticmethod
    def _key_of(job_path: Path) -> str:
        return job_path.stem.split("-", 1)[1]

    # -- event log ----------------------------------------------------------

    def _log_event(self, event: str, key: str, **extra: Any) -> None:
        """Append one event line to this owner's log (best effort).

        One ``os.write`` per line on an ``O_APPEND`` descriptor —
        atomic for these line sizes on every local filesystem, and
        per-owner files mean no cross-process interleaving at all.
        """
        line = json.dumps({
            "ts": time.time(), "event": event, "key": key,
            "owner": self.owner, **extra,
        }, sort_keys=True) + "\n"
        try:
            if self._events_fd is None:
                self.events_dir.mkdir(parents=True, exist_ok=True)
                self._events_fd = os.open(
                    self.events_dir / f"{self.owner}.jsonl",
                    os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                    0o644,
                )
            os.write(self._events_fd, line.encode())
        except OSError:
            pass  # telemetry is best-effort by construction

    def read_events(self) -> List[Dict[str, Any]]:
        """Every event from every worker's log, oldest first."""
        events: List[Dict[str, Any]] = []
        try:
            logs = sorted(self.events_dir.glob("*.jsonl"))
        except OSError:
            return events
        for path in logs:
            try:
                lines = path.read_text().splitlines()
            except OSError:
                continue
            for line in lines:
                try:
                    events.append(json.loads(line))
                except ValueError:
                    continue  # torn tail line of a killed writer
        events.sort(key=lambda e: e.get("ts", 0.0))
        return events

    # -- enqueue ------------------------------------------------------------

    def enqueue(self, job: Job) -> bool:
        """Make ``job`` pending; returns False when already queued/done.

        Atomic (temp + rename) so a concurrent claimer never reads a
        torn job file; re-enqueueing a completed or pending job is a
        counted no-op, which makes enqueue itself idempotent — any
        number of hosts can submit the same suite.
        """
        path = self._job_path(job)
        if path.exists() or self._done_path(job.key).exists():
            return False
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{self.owner}-{os.getpid()}")
        data = json.dumps(job.to_payload(), sort_keys=True).encode()
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.counters.bump("enqueued")
        self._log_event("enqueue", job.key, label=job.label)
        return True

    def enqueue_many(self, jobs: Sequence[Job]) -> int:
        return sum(1 for job in jobs if self.enqueue(job))

    # -- inventory ----------------------------------------------------------

    def _pending_paths(self) -> List[Path]:
        """Pending job files, priority-then-key order (claim order)."""
        try:
            return sorted(
                p for p in self.jobs_dir.iterdir()
                if p.suffix == ".json"
            )
        except OSError:
            return []

    def pending(self) -> int:
        return len(self._pending_paths())

    def live_leases(self) -> Dict[str, Dict[str, Any]]:
        """Owner metadata of every lease file, keyed by job key."""
        out: Dict[str, Dict[str, Any]] = {}
        try:
            paths = sorted(self.leases_dir.glob("*.lease"))
        except OSError:
            return out
        for path in paths:
            meta: Dict[str, Any] = {}
            try:
                st = path.stat()
                meta = json.loads(path.read_text() or "{}")
            except (OSError, ValueError):
                # Freshly created (body not yet written) or vanished.
                try:
                    st = path.stat()
                except OSError:
                    continue
            meta["age_s"] = max(0.0, time.time() - st.st_mtime)
            out[path.stem] = meta
        return out

    def done_count(self) -> int:
        try:
            return sum(
                1 for p in self.done_dir.iterdir()
                if p.suffix == ".json"
            )
        except OSError:
            return 0

    def drained(self) -> bool:
        return self.pending() == 0

    def stats(self) -> Dict[str, Any]:
        """Cross-process queue state (filesystem truth) + counters."""
        return {
            "pending": self.pending(),
            "leased": len(self.live_leases()),
            "done": self.done_count(),
            "lease_s": self.lease_s,
            "heartbeat_s": self.heartbeat_s,
            "counters": self.counters.snapshot(),
        }

    # -- claim / lease lifecycle --------------------------------------------

    def _read_job(self, job_path: Path) -> Optional[Job]:
        try:
            return Job.from_payload(json.loads(job_path.read_text()))
        except (OSError, ValueError, TypeError):
            return None

    def _next_token(self) -> str:
        self._token_seq += 1
        return f"{self.owner}:{os.getpid()}:{self._token_seq}"

    def try_claim(self, job_path: Path) -> Optional[Lease]:
        """One claim attempt on one job file (non-blocking).

        Returns a live :class:`Lease` on the O_EXCL win, ``None`` when
        the job is done, claimed by a live owner, or lost to a racer.
        An expired lease is taken over first (rename-steal), then
        contested through the same O_EXCL create as a fresh claim.
        """
        key = self._key_of(job_path)
        done_path = self._done_path(key)
        if done_path.exists():
            # A completer crashed between the done marker and the job
            # unlink; finish the cleanup for it.
            try:
                os.unlink(job_path)
            except OSError:
                pass
            return None
        lease_path = self._lease_path(key)
        token = self._next_token()
        try:
            FAULTS.fire("queue.claim")
        except OSError:
            self.counters.bump("claim_errors")
            return None
        try:
            self.leases_dir.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                lease_path,
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                0o644,
            )
        except FileExistsError:
            if self._maybe_takeover(lease_path, key):
                return self.try_claim(job_path)  # contest the freed key
            return None
        except OSError:
            self.counters.bump("claim_errors")
            return None
        try:
            body = json.dumps({
                "owner": self.owner,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "token": token,
                "claimed_at": time.time(),
            }, sort_keys=True).encode()
            os.write(fd, body)
        finally:
            os.close(fd)
        job = self._read_job(job_path)
        if job is None:
            # The job file vanished (completed or pruned) between the
            # scan and the claim: release the orphan lease.
            try:
                os.unlink(lease_path)
            except OSError:
                pass
            return None
        self.counters.bump("claimed")
        self._log_event("claim", key, label=job.label, token=token)
        return Lease(
            job=job, path=lease_path, job_path=job_path,
            owner=self.owner, token=token, acquired=time.monotonic(),
        )

    def _maybe_takeover(self, lease_path: Path, key: str) -> bool:
        """Steal ``lease_path`` if it expired; True when freed.

        The rename to a claimant-unique name is the election: however
        many survivors notice the same expired lease, exactly one
        rename succeeds, and only that winner unlinks the corpse.  The
        caller then re-contests the key through the normal O_EXCL
        claim (a third claimer may still win it — any winner is fine).
        """
        try:
            st = lease_path.stat()
        except OSError:
            return True  # already freed; contest it
        age = time.time() - st.st_mtime
        if age <= self.lease_s:
            return False
        self.counters.bump("expired")
        try:
            FAULTS.fire("queue.lease")
        except OSError:
            return False
        steal = lease_path.with_suffix(
            f".steal-{os.getpid()}-{self._token_seq}"
        )
        try:
            os.rename(lease_path, steal)
        except OSError:
            return True  # lost the election; the key is (being) freed
        try:
            os.unlink(steal)
        except OSError:
            pass
        self.counters.bump("reclaimed")
        self._log_event("steal", key, expired_age_s=round(age, 3))
        _log.warning(
            "work.lease_takeover", key=key[:12],
            expired_age_s=round(age, 3), lease_s=self.lease_s,
        )
        return True

    def claim_next(self) -> Optional[Lease]:
        """Claim the first claimable pending job, or ``None``."""
        for job_path in self._pending_paths():
            lease = self.try_claim(job_path)
            if lease is not None:
                return lease
        return None

    def heartbeat(self, lease: Lease) -> bool:
        """Renew ``lease``; False (and ``lease.lost``) on takeover.

        Re-reads the owner token before touching the mtime, so a
        worker that lost its lease can never resurrect the file a
        survivor is about to claim — it learns it is a zombie instead.
        """
        if lease.lost:
            return False
        try:
            FAULTS.fire("queue.heartbeat")
            body = json.loads(lease.path.read_text() or "{}")
            if body.get("token") != lease.token:
                raise FileNotFoundError(lease.path)
            os.utime(lease.path)
        except (OSError, ValueError):
            lease.lost = True
            self.counters.bump("heartbeat_failures")
            self._log_event("heartbeat_lost", lease.job.key)
            return False
        self.counters.bump("heartbeats")
        LEASE_AGE.observe(lease.age_s)
        return True

    def complete(self, lease: Lease, computed: bool) -> bool:
        """Publish completion of ``lease.job``; False when abandoned.

        Order matters for crash safety: done marker first (O_EXCL —
        the second completer of a key is counted, not trusted), then
        the job file, then the lease (only after re-verifying the
        token, so a zombie never unlinks a successor's lease).  The
        job's artifacts are already durable in the store before this
        is called.
        """
        key = lease.job.key
        if lease.lost:
            self.counters.bump("abandoned")
            self._log_event("abandon", key, computed=computed)
            return False
        LEASE_AGE.observe(lease.age_s)
        duplicate = False
        try:
            self.done_dir.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self._done_path(key),
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                0o644,
            )
        except FileExistsError:
            duplicate = True
            self.counters.bump("completed_duplicate")
        except OSError:
            pass  # queue dir unwritable: artifacts are still durable
        else:
            try:
                os.write(fd, json.dumps({
                    "owner": self.owner,
                    "computed": bool(computed),
                    "label": lease.job.label,
                    "ts": time.time(),
                }, sort_keys=True).encode())
            finally:
                os.close(fd)
        try:
            os.unlink(lease.job_path)
        except OSError:
            pass
        self._release_if_owned(lease)
        self.counters.bump(
            "completed" if computed else "completed_noop"
        )
        self._log_event(
            "complete", key, computed=bool(computed),
            duplicate=duplicate, label=lease.job.label,
        )
        return True

    def release(self, lease: Lease) -> None:
        """Voluntarily return a claimed job to the pending pool."""
        self._release_if_owned(lease)
        self.counters.bump("released")
        self._log_event("release", lease.job.key)

    def _release_if_owned(self, lease: Lease) -> None:
        try:
            body = json.loads(lease.path.read_text() or "{}")
            if body.get("token") == lease.token:
                os.unlink(lease.path)
        except (OSError, ValueError):
            pass  # taken over or already gone — not ours to unlink

    def close(self) -> None:
        if self._events_fd is not None:
            try:
                os.close(self._events_fd)
            except OSError:
                pass
            self._events_fd = None


# -- job execution ----------------------------------------------------------


class JobExecutor:
    """Idempotent execution of queue jobs over one shared store.

    One per worker process: a single :class:`~repro.core.session.
    Session` cache plane plus per-(scale, chunk) ``RunCache`` facades,
    so a worker draining many jobs of one suite stays session-warm.
    ``computed`` in the result is derived from the store's write
    counter — a job fully satisfied by existing artifacts performs no
    writes and reports itself as the no-op the queue contract
    promises.
    """

    def __init__(self, store: ProfileStore) -> None:
        from repro.core.session import Session

        self.store = store
        self.session = Session(store=store)
        self._caches: Dict[Tuple[float, int], Any] = {}
        #: Chaos knob: hold the lease this long after each execution
        #: (simulates long jobs so the kill-mid-lease scenario can
        #: reliably SIGKILL a worker *while it owns live leases*).
        self.settle_s = float(
            os.environ.get("REPRO_WORK_SETTLE_S", "0") or 0.0
        )

    def _run_cache(self, scale: float, chunk: int):
        from repro.experiments.suites import RunCache

        key = (scale, chunk)
        cache = self._caches.get(key)
        if cache is None:
            cache = RunCache(
                scale=scale, chunk=chunk, session=self.session
            )
            self._caches[key] = cache
        return cache

    def execute(self, job: Job) -> bool:
        """Run ``job``; returns True when artifacts were written."""
        from repro.arch.presets import table_iv_config
        from repro.experiments.suites import BenchmarkRef

        ref = BenchmarkRef(job.suite, job.benchmark)
        cache = self._run_cache(job.scale, job.chunk)
        before = self.store.counters.snapshot()["writes"]
        if job.kind == "profile":
            cache.profile(ref)
        elif job.kind == "predict":
            cache.prediction(
                ref, table_iv_config(job.config, cores=job.cores)
            )
        elif job.kind == "simulate":
            cache.simulation(
                ref, table_iv_config(job.config, cores=job.cores)
            )
        elif job.kind == "bench-baseline":
            self._baseline(cache, ref)
        if self.settle_s > 0.0:
            time.sleep(self.settle_s)
        return self.store.counters.snapshot()["writes"] > before

    def _baseline(self, cache, ref) -> None:
        """Reference (per-chunk spec) profile, for equivalence audits.

        Stored under the ``baselines`` kind with the profile's own
        store key, so a fleet can cross-check the vectorized pipeline
        against the executable spec without re-running it per audit.
        """
        from repro.profiler.profiler import profile_workload_reference

        key = cache._profile_key(ref)
        if self.store.load_result("baselines", key) is not None:
            return
        profile = profile_workload_reference(
            cache.trace(ref), chunk=cache.chunk
        )
        self.store.save_result("baselines", key, profile.to_dict())


def plan_suite_jobs(
    refs: Sequence[Any],
    scale: float = 1.0,
    chunk: int = 4096,
    configs: Sequence[str] = (),
    cores: int = 4,
    simulate: bool = False,
    baselines: bool = False,
) -> List[Job]:
    """The job set for a suite sweep: profiles, then per-config work."""
    jobs: List[Job] = []
    for ref in refs:
        jobs.append(Job(
            kind="profile", suite=ref.suite, benchmark=ref.name,
            scale=scale, chunk=chunk,
        ))
        for config in configs:
            jobs.append(Job(
                kind="predict", suite=ref.suite, benchmark=ref.name,
                scale=scale, chunk=chunk, config=config, cores=cores,
            ))
            if simulate:
                jobs.append(Job(
                    kind="simulate", suite=ref.suite,
                    benchmark=ref.name, scale=scale, chunk=chunk,
                    config=config, cores=cores,
                ))
        if baselines:
            jobs.append(Job(
                kind="bench-baseline", suite=ref.suite,
                benchmark=ref.name, scale=scale, chunk=chunk,
            ))
    return jobs


# -- worker loop ------------------------------------------------------------


class Worker:
    """One claim-execute-complete loop over a :class:`WorkQueue`.

    While a job runs, a daemon heartbeat thread renews the lease every
    ``heartbeat_s``; a renewal that fails (takeover, injected fault,
    unlinked lease) marks the lease lost, and the completion path then
    abandons instead of publishing.  ``drain=True`` exits when the
    queue is empty; otherwise the worker naps ``heartbeat_s`` between
    scans and keeps serving new work — the long-running fleet mode.
    """

    def __init__(
        self,
        queue: WorkQueue,
        executor: Optional[JobExecutor] = None,
        drain: bool = True,
        stop_event: Optional[threading.Event] = None,
    ) -> None:
        self.queue = queue
        if executor is None:
            store_root = queue.root.parent
            executor = JobExecutor(
                ProfileStore(store_root, strict=False)
            )
        self.executor = executor
        self.drain = drain
        self.stop_event = (
            stop_event if stop_event is not None else threading.Event()
        )
        self.jobs_run = 0

    def _heartbeat_loop(self, lease: Lease, done: threading.Event):
        while not done.wait(self.queue.heartbeat_s):
            if not self.queue.heartbeat(lease):
                return

    def run_one(self, lease: Lease) -> bool:
        """Execute one claimed job under heartbeat protection."""
        done = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(lease, done),
            daemon=True,
        )
        beat.start()
        try:
            computed = self.executor.execute(lease.job)
        except Exception:
            # A failed execution is not a completed job: release the
            # lease so another worker (or a retry here) re-claims it.
            done.set()
            beat.join(timeout=self.queue.lease_s)
            _log.error(
                "work.job_failed", key=lease.job.key[:12],
                label=lease.job.label,
            )
            self.queue.release(lease)
            return False
        done.set()
        beat.join(timeout=self.queue.lease_s)
        self.queue.complete(lease, computed)
        self.jobs_run += 1
        return True

    def run(self) -> int:
        """Serve the queue until drained (or stopped); jobs executed."""
        while not self.stop_event.is_set():
            lease = self.queue.claim_next()
            if lease is not None:
                self.run_one(lease)
                continue
            if self.drain and self.queue.drained():
                break
            # Pending jobs are all leased (or the queue is idle):
            # rescan after a heartbeat period — that cadence also
            # bounds how long an expired lease waits for takeover.
            self.stop_event.wait(self.queue.heartbeat_s)
        self.queue.close()
        return self.jobs_run


def _worker_main(
    store_root: str,
    owner: str,
    lease_s: float,
    heartbeat_s: float,
    drain: bool,
) -> None:
    """Child-process entry point (spawn-safe, signal-graceful)."""
    stop = threading.Event()

    def _graceful(signum, frame):  # pragma: no cover - signal path
        stop.set()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    queue = WorkQueue(
        store_root, lease_s=lease_s, heartbeat_s=heartbeat_s,
        owner=owner,
    )
    Worker(queue, drain=drain, stop_event=stop).run()


class WorkerSupervisor:
    """``repro work run --workers N``: a self-healing worker fleet.

    Spawns N worker processes over one queue, respawns any that die
    unexpectedly (the queue's lease protocol already guarantees their
    jobs are re-claimed — respawn just restores capacity), and drains
    gracefully on SIGINT/SIGTERM, mirroring the serving plane's
    semantics: children get SIGTERM (finish the current job, exit),
    then ``drain_timeout`` to comply before SIGKILL escalation.
    """

    def __init__(
        self,
        queue: WorkQueue,
        workers: int = 2,
        drain: bool = True,
        respawn: bool = True,
        drain_timeout: float = 30.0,
        poll_s: float = 0.1,
    ) -> None:
        self.queue = queue
        self.workers = max(1, int(workers))
        self.drain = drain
        self.respawn = respawn
        self.drain_timeout = drain_timeout
        self.poll_s = poll_s
        self.respawned = 0
        self._stopping = threading.Event()
        self._procs: List[Any] = []

    def _spawn(self, index: int):
        import multiprocessing

        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(
            target=_worker_main,
            args=(
                str(self.queue.root.parent),
                f"{_default_owner()}-w{index}",
                self.queue.lease_s,
                self.queue.heartbeat_s,
                self.drain,
            ),
            name=f"repro-work-{index}",
        )
        proc.start()
        return proc

    def stop(self) -> None:
        self._stopping.set()

    def run(self, install_signals: bool = False) -> Dict[str, Any]:
        """Run the fleet; returns a summary once stopped/drained."""
        if install_signals:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    signal.signal(
                        sig, lambda s, f: self.stop()
                    )
                except ValueError:  # pragma: no cover - non-main thread
                    pass
        self._procs = [self._spawn(i) for i in range(self.workers)]
        try:
            while not self._stopping.is_set():
                alive = 0
                for i, proc in enumerate(self._procs):
                    if proc.is_alive():
                        alive += 1
                        continue
                    if (
                        self.respawn
                        and not self._stopping.is_set()
                        and not (self.drain and self.queue.drained())
                    ):
                        _log.warning(
                            "work.worker_respawn",
                            worker=proc.name,
                            exitcode=proc.exitcode,
                        )
                        self._procs[i] = self._spawn(i)
                        self.respawned += 1
                        alive += 1
                if self.drain and self.queue.drained() and all(
                    not p.is_alive() for p in self._procs
                ):
                    break
                if not alive and not self.respawn:
                    break
                time.sleep(self.poll_s)
        finally:
            self._shutdown()
        return {
            "workers": self.workers,
            "respawned": self.respawned,
            "queue": self.queue.stats(),
        }

    def _shutdown(self) -> None:
        deadline = time.monotonic() + self.drain_timeout
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()  # SIGTERM: finish current job, exit
        for proc in self._procs:
            remaining = max(0.0, deadline - time.monotonic())
            proc.join(timeout=remaining)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - escalation path
                proc.kill()
                proc.join(timeout=5.0)


def run_workers(
    store_root: os.PathLike,
    workers: int = 2,
    lease_s: float = DEFAULT_LEASE_S,
    heartbeat_s: Optional[float] = None,
    drain: bool = True,
    respawn: bool = True,
    install_signals: bool = False,
) -> Dict[str, Any]:
    """Spawn and supervise a worker fleet over one shared store root."""
    queue = WorkQueue(
        store_root, lease_s=lease_s, heartbeat_s=heartbeat_s
    )
    supervisor = WorkerSupervisor(
        queue, workers=workers, drain=drain, respawn=respawn
    )
    return supervisor.run(install_signals=install_signals)


# -- queue-level accounting (cross-process, from the event logs) -------------


def effect_audit(queue: WorkQueue) -> Dict[str, int]:
    """Exactly-once-effects audit over every worker's event log.

    ``duplicate_effects`` counts keys *computed* (artifacts written)
    by more than one completion — the number the chaos floors pin to
    zero: at-least-once claims may race, but content addressing must
    collapse them to one effect.  ``lost_jobs`` is filesystem truth:
    job files still pending after the fleet drained.
    """
    computed_by_key: Dict[str, int] = {}
    completions = 0
    duplicates = 0
    for event in queue.read_events():
        if event.get("event") != "complete":
            continue
        completions += 1
        if event.get("duplicate"):
            duplicates += 1
        if event.get("computed"):
            key = event.get("key", "")
            computed_by_key[key] = computed_by_key.get(key, 0) + 1
    return {
        "completions": completions,
        "duplicate_completions": duplicates,
        "duplicate_effects": sum(
            n - 1 for n in computed_by_key.values() if n > 1
        ),
        "lost_jobs": queue.pending(),
        "done": queue.done_count(),
    }


# -- chaos scenarios (BENCH_work.json substance) -----------------------------


def _scenario_kill_mid_lease(
    quick: bool, workdir: Path
) -> Dict[str, Any]:
    """SIGKILL a worker holding live leases; survivors must finish.

    Three spawned worker processes drain a small suite whose jobs are
    artificially slowed (``REPRO_WORK_SETTLE_S``) so the victim is
    reliably killed *while it owns a lease*.  The floors assert the
    full robustness contract: the stolen jobs are re-claimed within
    the committed number of lease periods, nothing is lost, nothing is
    computed twice, and the finished report renders bit-identical to a
    single-process run against a fresh store.
    """
    import multiprocessing

    from repro.arch.presets import table_iv_config
    from repro.experiments.accuracy import render_figure4, run_figure4
    from repro.experiments.suites import BenchmarkRef, RunCache

    lease_s, heartbeat_s = 2.0, 0.4
    names = ["hotspot", "bfs", "srad"] if quick else [
        "hotspot", "bfs", "srad", "nn", "backprop", "lud",
    ]
    scale = 0.05 if quick else 0.1
    refs = [BenchmarkRef("rodinia", name) for name in names]
    store_root = workdir / "killstore"
    queue = WorkQueue(
        store_root, lease_s=lease_s, heartbeat_s=heartbeat_s,
        owner="chaos-parent",
    )
    jobs = plan_suite_jobs(
        refs, scale=scale, configs=["base"], simulate=True
    )
    queue.enqueue_many(jobs)

    ctx = multiprocessing.get_context("spawn")
    old_settle = os.environ.get("REPRO_WORK_SETTLE_S")
    os.environ["REPRO_WORK_SETTLE_S"] = "0.25"
    try:
        procs = [
            ctx.Process(
                target=_worker_main,
                args=(
                    str(store_root), f"chaos-w{i}", lease_s,
                    heartbeat_s, True,
                ),
                name=f"chaos-w{i}",
            )
            for i in range(3)
        ]
        for proc in procs:
            proc.start()
    finally:
        if old_settle is None:
            os.environ.pop("REPRO_WORK_SETTLE_S", None)
        else:
            os.environ["REPRO_WORK_SETTLE_S"] = old_settle

    # Wait for the victim to own a live lease, then kill it there.
    victim = procs[0]
    victim_keys: List[str] = []
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        victim_keys = [
            key for key, meta in queue.live_leases().items()
            if meta.get("pid") == victim.pid
        ]
        if victim_keys or not victim.is_alive():
            break
        time.sleep(0.02)
    kill_wall = time.time()
    killed = victim.is_alive()
    if killed:
        try:
            os.kill(victim.pid, signal.SIGKILL)
        except OSError:  # pragma: no cover - victim won the race
            killed = False
    victim.join(timeout=30.0)

    for proc in procs[1:]:
        proc.join(timeout=240.0)
    survivors_alive = sum(1 for p in procs[1:] if p.is_alive())
    for proc in procs[1:]:  # pragma: no cover - hang backstop
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=5.0)

    # Reclaim latency: steals of the victim's keys, after the kill.
    steal_ts = [
        event["ts"] for event in queue.read_events()
        if event.get("event") == "steal"
        and event.get("key") in victim_keys
        and event.get("ts", 0.0) >= kill_wall
    ]
    reclaim_s = max(steal_ts) - kill_wall if steal_ts else 0.0
    audit = effect_audit(queue)

    # Bit-identity: the queue-filled store vs a fresh serial run.
    config = table_iv_config("base")
    queue_cache = RunCache(
        scale=scale, store=ProfileStore(store_root, strict=False)
    )
    fleet_report = render_figure4(run_figure4(
        benchmarks=refs, config=config, cache=queue_cache, jobs=1,
    ))
    serial_cache = RunCache(
        scale=scale,
        store=ProfileStore(workdir / "serialstore", strict=False),
    )
    serial_report = render_figure4(run_figure4(
        benchmarks=refs, config=config, cache=serial_cache, jobs=1,
    ))

    return {
        "benchmarks": len(refs),
        "jobs": len(jobs),
        "lease_s": lease_s,
        "heartbeat_s": heartbeat_s,
        "killed": bool(killed),
        "victim_held_leases": len(victim_keys),
        "reclaimed_keys": len(steal_ts),
        "reclaim_s": round(reclaim_s, 3),
        "reclaim_lease_periods": round(reclaim_s / lease_s, 3),
        "survivors_hung": survivors_alive,
        "report_identical": int(fleet_report == serial_report),
        **audit,
    }


def _scenario_stale_takeover(workdir: Path) -> Dict[str, Any]:
    """An expired lease is stolen; the zombie owner must not publish."""
    root = workdir / "stale"
    zombie = WorkQueue(
        root, lease_s=0.5, heartbeat_s=0.1, owner="zombie"
    )
    survivor = WorkQueue(
        root, lease_s=0.5, heartbeat_s=0.1, owner="survivor"
    )
    job = Job(kind="profile", suite="rodinia", benchmark="nn")
    zombie.enqueue(job)
    lease = zombie.try_claim(zombie._job_path(job))
    # Backdate the lease far past expiry: the owner "stopped
    # heartbeating" without actually sleeping the test out.
    past = time.time() - 60.0
    os.utime(lease.path, (past, past))
    stolen = survivor.claim_next()
    zombie_heartbeat_ok = zombie.heartbeat(lease)
    zombie_published = zombie.complete(lease, computed=True)
    survivor_published = (
        survivor.complete(stolen, computed=True)
        if stolen is not None else False
    )
    return {
        "takeover_claims": int(stolen is not None),
        "zombie_heartbeat_ok": int(zombie_heartbeat_ok),
        "zombie_published": int(zombie_published),
        "survivor_published": int(survivor_published),
        "lost_jobs": survivor.pending(),
    }


def _scenario_duplicate_claim_race(
    quick: bool, workdir: Path
) -> Dict[str, Any]:
    """N claimers race one key, repeatedly: exactly one winner each.

    The ``queue.claim`` fault point injects a delay between a
    claimer's decision to claim and its O_EXCL create, widening the
    race window far past anything a real fleet would see.
    """
    from repro.testing.faults import inject

    root = workdir / "race"
    rounds = 10 if quick else 30
    claimers = 8
    winners_per_round: List[int] = []
    with inject("queue.claim", delay_s=0.005):
        for rnd in range(rounds):
            # A fresh key each round (chunk is part of the identity).
            job = Job(
                kind="profile", suite="rodinia", benchmark="bfs",
                chunk=4096 + rnd,
            )
            WorkQueue(root, owner="race-enq").enqueue(job)
            winners: List[Lease] = []
            lock = threading.Lock()
            start = threading.Barrier(claimers)

            def claim(i: int) -> None:
                queue = WorkQueue(root, owner=f"racer-{i}")
                start.wait()
                lease = queue.claim_next()
                if lease is not None:
                    with lock:
                        winners.append(lease)

            threads = [
                threading.Thread(target=claim, args=(i,))
                for i in range(claimers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            winners_per_round.append(len(winners))
            for lease in winners:  # keep later rounds clean
                WorkQueue(root, owner="race-enq").complete(
                    lease, computed=False
                )
    return {
        "rounds": rounds,
        "claimers": claimers,
        "max_winners": max(winners_per_round),
        "min_winners": min(winners_per_round),
        "total_wins": sum(winners_per_round),
    }


def run_work_scenarios(quick: bool = True) -> Dict[str, Any]:
    """All three queue chaos scenarios, for ``BENCH_work.json``."""
    import tempfile

    results: Dict[str, Any] = {}
    with tempfile.TemporaryDirectory(prefix="repro-work-") as tmp:
        workdir = Path(tmp)
        log = get_logger("repro.work.chaos")
        log.info("work.chaos_start", quick=quick)
        results["kill_mid_lease"] = _scenario_kill_mid_lease(
            quick, workdir
        )
        results["stale_takeover"] = _scenario_stale_takeover(workdir)
        results["duplicate_claim_race"] = (
            _scenario_duplicate_claim_race(quick, workdir)
        )
        log.info("work.chaos_done")
    return results


__all__ = [
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_LEASE_S",
    "JOB_KINDS",
    "Job",
    "JobExecutor",
    "Lease",
    "QueueCounters",
    "WORK_COUNTERS",
    "WorkQueue",
    "Worker",
    "WorkerSupervisor",
    "effect_audit",
    "plan_suite_jobs",
    "run_work_scenarios",
    "run_workers",
]
