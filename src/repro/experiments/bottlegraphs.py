"""Figure 6: bottlegraphs — RPPM-predicted vs simulated, per benchmark.

A bottlegraph (Du Bois et al.) stacks one box per thread: height is the
thread's criticality share of execution time, width its average
parallelism while running.  Figure 6 draws the simulated graph on the
right of each axis and RPPM's on the left; the reproduction builds
both from the respective timelines and also classifies each benchmark
into the paper's three balance groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.arch.config import MulticoreConfig
from repro.arch.presets import table_iv_config
from repro.core.bottlegraph import Bottlegraph, bottlegraph_from_timeline
from repro.experiments.suites import (
    BenchmarkRef,
    RunCache,
    parsec_suite,
    shared_cache,
)
from repro.workloads.parsec import BALANCE_CLASS


@dataclass(frozen=True)
class BottlegraphPair:
    """Predicted and simulated bottlegraphs of one benchmark."""

    benchmark: str
    suite: str
    predicted: Bottlegraph
    simulated: Bottlegraph

    def height_error(self) -> float:
        """Mean absolute error of normalized per-thread heights."""
        p = self.predicted.normalized_heights()
        s = self.simulated.normalized_heights()
        n = max(len(p), 1)
        return sum(abs(a - b) for a, b in zip(p, s)) / n

    def classify(
        self, graph: Optional[Bottlegraph] = None, cores: int = 4
    ) -> str:
        """Balance class of a bottlegraph (paper's three groups).

        * ``balanced``: the main thread does almost no work and the
          workers run as wide as the machine (parallelism near the
          core count — the paper's main + four workers group).
        * ``main_works``: the main thread carries a worker-sized (or
          larger) share of the execution.
        * ``imbalanced``: the main thread is idle-ish *and* worker
          parallelism is capped below the core count (the paper's
          main + three workers group).
        """
        g = graph if graph is not None else self.simulated
        heights = g.normalized_heights()
        if not heights or g.total <= 0:
            return "empty"
        main_share = heights[0]
        worker_widths = [w for w in g.widths[1:] if w > 0]
        avg_width = (
            sum(worker_widths) / len(worker_widths) if worker_widths else 0
        )
        workers = max(len(g.heights) - 1, 1)
        if main_share >= 0.9 / (workers + 1):
            return "main_works"
        if avg_width >= cores - 0.5:
            return "balanced"
        return "imbalanced"

    def classes_agree(self) -> bool:
        """Does RPPM predict the same balance class as simulation?"""
        return self.classify(self.predicted) == self.classify(
            self.simulated
        )


@dataclass
class Figure6Result:
    pairs: List[BottlegraphPair]
    config: str

    def pair(self, benchmark: str) -> BottlegraphPair:
        for p in self.pairs:
            if p.benchmark == benchmark:
                return p
        raise KeyError(benchmark)

    def agreement_rate(self) -> float:
        if not self.pairs:
            return 0.0
        return sum(p.classes_agree() for p in self.pairs) / len(self.pairs)


def run_bottlegraph_pair(
    ref: BenchmarkRef, config: MulticoreConfig, cache: RunCache
) -> BottlegraphPair:
    pred = cache.prediction(ref, config)
    sim = cache.simulation(ref, config)
    return BottlegraphPair(
        benchmark=ref.name,
        suite=ref.suite,
        predicted=bottlegraph_from_timeline(pred.timeline),
        simulated=bottlegraph_from_timeline(sim.timeline),
    )


def run_figure6(
    benchmarks: Optional[Sequence[BenchmarkRef]] = None,
    config: Optional[MulticoreConfig] = None,
    cache: Optional[RunCache] = None,
    jobs: Optional[int] = None,
) -> Figure6Result:
    """Figure 6 over the Parsec suite (the paper's scope).

    ``jobs`` bounds the prefetch worker processes (default: CPU count).
    """
    benchmarks = list(benchmarks) if benchmarks else parsec_suite()
    config = config or table_iv_config("base")
    cache = cache or shared_cache()
    cache.prefetch(
        benchmarks, configs=(config,), workers=jobs, simulate=True
    )
    pairs = [
        run_bottlegraph_pair(ref, config, cache) for ref in benchmarks
    ]
    return Figure6Result(pairs=pairs, config=config.name)


def expected_balance_class(benchmark: str) -> str:
    """The paper's Figure 6 grouping for a Parsec benchmark."""
    return BALANCE_CLASS[benchmark]


def render_bottlegraph(graph: Bottlegraph, label: str = "",
                       width: int = 40) -> str:
    """One bottlegraph as ASCII art (widest box at the bottom)."""
    if graph.total <= 0:
        return f"{label}: (empty)"
    lines = [f"{label} (total {graph.total:.0f})"] if label else []
    max_width = max(max(graph.widths), 1.0)
    for tid in reversed(graph.stacking_order()):
        share = graph.heights[tid] / graph.total
        w = graph.widths[tid]
        bar = "#" * max(1, int(round(w / max_width * width)))
        lines.append(
            f"  T{tid}: {share:>6.1%} tall, {w:>4.2f} wide |{bar}"
        )
    return "\n".join(lines)


def render_figure6(result: Figure6Result) -> str:
    lines = [f"Bottlegraphs, RPPM vs simulation ({result.config})"]
    for p in result.pairs:
        lines.append(f"== {p.suite}.{p.benchmark} "
                     f"(paper class: {expected_balance_class(p.benchmark)})")
        lines.append(render_bottlegraph(p.predicted, "  RPPM"))
        lines.append(render_bottlegraph(p.simulated, "  simulation"))
        lines.append(
            f"  height error {p.height_error():.3f}, classes "
            + ("agree" if p.classes_agree() else "DISAGREE")
        )
    lines.append(f"class agreement: {result.agreement_rate():.0%}")
    return "\n".join(lines)
