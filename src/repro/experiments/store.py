"""Versioned on-disk persistence for profiles, predictions, simulations.

The paper's whole premise is that the profile is a *one-time cost*
(Fig. 1): collect once, predict many design points.  This module makes
that literal across processes and across runs — a content-addressed
cache directory keyed by workload identity (suite benchmark, seed,
scale, chunking) and, for predictions/simulations, the configuration
fingerprint.

Layout: ``<root>/<kind>/<key>.<ext>`` where ``kind`` is ``profiles``
(JSON via ``WorkloadProfile.to_dict``), ``ilptables`` (JSON via
``ILPTable.to_dict``, content-addressed by micro-trace sample digest —
the profiling grid is configuration-independent, so one table serves
every design-space point), ``predictions`` or ``simulations`` (pickled
result dataclasses).  Every artifact embeds ``SCHEMA_VERSION``;
stale-version, truncated or otherwise corrupt files are treated as
misses, so a cache survives arbitrary upgrades by silently
recomputing.

Keys are deterministic SHA-256 fingerprints of canonicalized
structures — Python's salted ``hash()`` is useless across processes,
which is exactly where the parallel pipeline needs stable keys.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from enum import Enum
from pathlib import Path
from typing import Any, Optional

from repro.profiler.profile import ILPTable, WorkloadProfile

#: Bump when any persisted artifact's layout or producing algorithm
#: changes incompatibly; old entries then read as cache misses.
#: 2: ILP tables built by the lockstep batch engine (and persisted as
#: their own ``ilptables`` artifact kind).
SCHEMA_VERSION = 2

#: Environment variable overriding the default cache root.
CACHE_ENV = "REPRO_CACHE_DIR"


def _canonical(obj: Any) -> Any:
    """JSON-serializable canonical form of configs/keys (deterministic)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            **{
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def fingerprint(obj: Any) -> str:
    """Stable SHA-256 hex digest of an arbitrary key structure."""
    payload = json.dumps(
        _canonical(obj), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def config_fingerprint(config: Any) -> str:
    """Deterministic digest of an architecture configuration."""
    return fingerprint(config)


def default_root() -> Path:
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class ProfileStore:
    """Content-addressed artifact store under one root directory.

    All loads are *best effort*: a missing, stale-version or corrupt
    file returns ``None`` and the caller recomputes (and usually
    re-saves, healing the cache).  Writes go through a temp file +
    rename so concurrent workers never observe partial artifacts.

    With ``strict=False`` writes are best effort too: an unwritable
    root or a full disk silently degrades the store to a read-only
    (or no-op) cache instead of aborting the computation whose result
    was being saved — the mode :func:`~repro.experiments.suites.
    shared_cache` uses, since a report run must survive a broken
    cache directory.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        strict: bool = True,
    ) -> None:
        self.root = Path(root) if root is not None else default_root()
        self.strict = strict

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def profile_key(
        label: str, seed: int, scale: float, chunk: int
    ) -> str:
        return fingerprint({
            "kind": "profile",
            "schema": SCHEMA_VERSION,
            "label": label,
            "seed": seed,
            "scale": scale,
            "chunk": chunk,
        })

    @staticmethod
    def result_key(
        kind: str, label: str, seed: int, scale: float, config: Any
    ) -> str:
        return fingerprint({
            "kind": kind,
            "schema": SCHEMA_VERSION,
            "label": label,
            "seed": seed,
            "scale": scale,
            "config": _canonical(config),
        })

    # -- plumbing -----------------------------------------------------------

    def _path(self, kind: str, key: str, ext: str) -> Path:
        return self.root / kind / f"{key}.{ext}"

    def list_keys(self, kind: str) -> list:
        """Keys of all persisted artifacts of one kind (best effort).

        Used by the serving layer's ``/v1/profiles`` inventory; a
        missing or unreadable kind directory is an empty store, not an
        error.
        """
        try:
            return sorted(
                p.stem for p in (self.root / kind).iterdir()
                if p.suffix in (".json", ".pkl")
            )
        except OSError:
            return []

    def _write(self, path: Path, data: bytes) -> None:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
        except OSError:
            if self.strict:
                raise
            return
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if self.strict or not isinstance(exc, OSError):
                raise

    # -- profiles (JSON) ----------------------------------------------------

    def save_profile(self, key: str, profile: WorkloadProfile) -> Path:
        path = self._path("profiles", key, "json")
        payload = {
            "schema": SCHEMA_VERSION,
            "profile": profile.to_dict(),
        }
        self._write(path, json.dumps(payload).encode())
        return path

    def load_profile(self, key: str) -> Optional[WorkloadProfile]:
        path = self._path("profiles", key, "json")
        try:
            with open(path, "rb") as fh:
                payload = json.load(fh)
            if payload.get("schema") != SCHEMA_VERSION:
                return None
            return WorkloadProfile.from_dict(payload["profile"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # -- ILP tables (JSON, content-addressed) -------------------------------

    def save_ilp_table(self, key: str, table: ILPTable) -> Path:
        path = self._path("ilptables", key, "json")
        payload = {
            "schema": SCHEMA_VERSION,
            "table": table.to_dict(),
        }
        self._write(path, json.dumps(payload).encode())
        return path

    def load_ilp_table(self, key: str) -> Optional[ILPTable]:
        path = self._path("ilptables", key, "json")
        try:
            with open(path, "rb") as fh:
                payload = json.load(fh)
            if payload.get("schema") != SCHEMA_VERSION:
                return None
            return ILPTable.from_dict(payload["table"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    # -- predictions / simulations (pickle) ---------------------------------

    def save_result(self, kind: str, key: str, result: Any) -> Path:
        path = self._path(kind, key, "pkl")
        payload = pickle.dumps(
            {"schema": SCHEMA_VERSION, "result": result}
        )
        self._write(path, payload)
        return path

    def load_result(self, kind: str, key: str) -> Optional[Any]:
        path = self._path(kind, key, "pkl")
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if payload.get("schema") != SCHEMA_VERSION:
                return None
            return payload["result"]
        except Exception:
            return None
