"""Versioned on-disk persistence for profiles, predictions, simulations.

The paper's whole premise is that the profile is a *one-time cost*
(Fig. 1): collect once, predict many design points.  This module makes
that literal across processes and across runs — a content-addressed
cache directory keyed by workload identity (suite benchmark, seed,
scale, chunking) and, for predictions/simulations, the configuration
fingerprint.

Layout: ``<root>/<kind>/<key>.<ext>`` where ``kind`` is ``profiles``
(JSON via ``WorkloadProfile.to_dict``), ``ilptables`` (JSON via
``ILPTable.to_dict``, content-addressed by micro-trace sample digest —
the profiling grid is configuration-independent, so one table serves
every design-space point), ``traces`` (pickled columnar arenas,
content-addressed by the full workload spec — see :class:`TraceCache`),
``predictions`` or ``simulations`` (pickled result dataclasses).  Every artifact embeds ``SCHEMA_VERSION``;
stale-version, truncated or otherwise corrupt files are treated as
misses, so a cache survives arbitrary upgrades by silently
recomputing.

Keys are deterministic SHA-256 fingerprints of canonicalized
structures — Python's salted ``hash()`` is useless across processes,
which is exactly where the parallel pipeline needs stable keys.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import mmap
import os
import pickle
import struct
import tempfile
import threading
import time
from collections import OrderedDict
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Optional

from repro.profiler.profile import ILPTable, WorkloadProfile
from repro.testing.faults import FAULTS, SimulatedCrash
from repro.workloads.engine import (
    ARENA_MAGIC,
    ExpansionEngine,
    default_engine,
    load_trace_arena,
    pack_trace,
    pack_trace_arena,
    unpack_trace,
)
from repro.workloads.ir import WorkloadTrace
from repro.workloads.spec import WorkloadSpec

#: Bump when any persisted artifact's layout or producing algorithm
#: changes incompatibly; old entries then read as cache misses.
#: 2: ILP tables built by the lockstep batch engine (and persisted as
#: their own ``ilptables`` artifact kind).
SCHEMA_VERSION = 2

#: Environment variable overriding the default cache root.
CACHE_ENV = "REPRO_CACHE_DIR"

#: Store-generation stamp: ``<root>/GENERATION`` holds a monotonically
#: bumped integer.  Resident caches (the serving engine's LRUs) record
#: the generation they were filled under and drop their entries when a
#: newer one appears — the cross-process invalidation contract for a
#: shared artifact plane.  Consumers compare for *inequality* only, so
#: a lost increment under a write race merely delays nothing: any
#: successful bump still changes the value.
GENERATION_FILE = "GENERATION"

#: Store subdirectories that hold coordination state, not artifacts:
#: the work queue (``queue/jobs|leases|done|events``) and the serving
#: fleet's heartbeat files (``fleet/``).
_NON_ARTIFACT_DIRS = frozenset({"quarantine", "queue", "fleet"})


def _canonical(obj: Any) -> Any:
    """JSON-serializable canonical form of configs/keys (deterministic)."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            **{
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def fingerprint(obj: Any) -> str:
    """Stable SHA-256 hex digest of an arbitrary key structure."""
    payload = json.dumps(
        _canonical(obj), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def config_fingerprint(config: Any) -> str:
    """Deterministic digest of an architecture configuration."""
    return fingerprint(config)


def default_root() -> Path:
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class StoreCounters:
    """Thread-safe health accounting for one :class:`ProfileStore`.

    Degradation must be *counted*, never silent: every corrupt or
    stale artifact, dropped write and I/O error lands here, and the
    serving plane surfaces the snapshot through ``/healthz`` and
    ``repro store stats``.  ``corruption_streak`` counts consecutive
    bad loads since the last good one — a rising streak is the
    error-budget signal for a rotting cache directory (bad disk,
    truncated rsync), distinct from a one-off torn write.
    """

    _FIELDS = (
        "writes",
        #: Publishes that replaced an already-published artifact — in a
        #: multi-writer fleet this counts the duplicate computations
        #: the shared store absorbed (last-writer-wins is sound: both
        #: writers produced bit-identical content-addressed artifacts).
        "duplicate_writes",
        "dropped_writes",
        "io_errors",
        "corrupt",
        "schema_stale",
        "quarantined",
        "quarantine_failed",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {f: 0 for f in self._FIELDS}
        self.corruption_streak = 0
        self.max_corruption_streak = 0

    def bump(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counts[name] += by

    def corruption(self) -> None:
        """One bad artifact observed: extend the streak."""
        with self._lock:
            self.corruption_streak += 1
            self.max_corruption_streak = max(
                self.max_corruption_streak, self.corruption_streak
            )

    def healthy_load(self) -> None:
        """One artifact loaded intact: the streak is broken."""
        with self._lock:
            self.corruption_streak = 0

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            out = dict(self._counts)
            out["corruption_streak"] = self.corruption_streak
            out["max_corruption_streak"] = self.max_corruption_streak
            return out


class ProfileStore:
    """Content-addressed artifact store under one root directory.

    All loads are *best effort*: a missing file returns ``None`` and
    the caller recomputes (and usually re-saves, healing the cache).
    A file that *exists but cannot be trusted* — unparseable, failing
    its embedded digest, or carrying a stale schema — is **quarantined**
    (moved to ``<root>/quarantine/<kind>/``) and counted before the
    load reports a miss, so corruption is visible in ``store stats``
    and ``/healthz`` instead of masquerading as cold cache.  Writes go
    through a temp file + rename so concurrent workers never observe
    partial artifacts.

    With ``strict=False`` writes are best effort too: an unwritable
    root or a full disk degrades the store to a read-only (or no-op)
    cache instead of aborting the computation whose result was being
    saved — but every dropped write increments ``dropped_writes`` in
    :attr:`counters` — the mode :func:`~repro.experiments.suites.
    shared_cache` uses, since a report run must survive a broken
    cache directory.

    Chaos fault points (:mod:`repro.testing.faults`): ``store.read``
    fires on every artifact read (error or payload mutation),
    ``store.write`` before every write, ``store.crash`` between the
    temp-file write and the atomic rename — the crash-safety window.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        strict: bool = True,
    ) -> None:
        self.root = Path(root) if root is not None else default_root()
        self.strict = strict
        self.counters = StoreCounters()

    @classmethod
    def open_default(
        cls, root: Optional[os.PathLike] = None
    ) -> "ProfileStore":
        """The canonical durable store: best-effort writes at the
        default root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``).

        Non-strict because cache persistence must never abort the
        computation being cached — an unwritable root degrades to a
        read-only store with ``dropped_writes`` counted.  This is the
        constructor behind :meth:`repro.core.session.Session.from_store`,
        the CLI and the serving engine.
        """
        return cls(root=root, strict=False)

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def profile_key(
        label: str, seed: int, scale: float, chunk: int
    ) -> str:
        return fingerprint({
            "kind": "profile",
            "schema": SCHEMA_VERSION,
            "label": label,
            "seed": seed,
            "scale": scale,
            "chunk": chunk,
        })

    @staticmethod
    def result_key(
        kind: str, label: str, seed: int, scale: float, config: Any
    ) -> str:
        return fingerprint({
            "kind": kind,
            "schema": SCHEMA_VERSION,
            "label": label,
            "seed": seed,
            "scale": scale,
            "config": _canonical(config),
        })

    @staticmethod
    def trace_key(spec: WorkloadSpec) -> str:
        """Content address of an expanded trace: the full spec.

        Expansion is a pure function of the spec (seed included), so
        fingerprinting the canonicalized spec structure — every epoch,
        memory pattern, branch spec and sync event — is exactly the
        identity under which a persisted trace may be reused.
        """
        return fingerprint({
            "kind": "trace",
            "schema": SCHEMA_VERSION,
            "spec": _canonical(spec),
        })

    # -- plumbing -----------------------------------------------------------

    def _path(self, kind: str, key: str, ext: str) -> Path:
        return self.root / kind / f"{key}.{ext}"

    def list_keys(self, kind: str) -> list:
        """Keys of all persisted artifacts of one kind (best effort).

        Used by the serving layer's ``/v1/profiles`` inventory; a
        missing or unreadable kind directory is an empty store, not an
        error.
        """
        try:
            return sorted({
                p.stem for p in (self.root / kind).iterdir()
                if p.suffix in (".json", ".pkl", ".arena")
            })
        except OSError:
            return []

    def _read(self, path: Path) -> Optional[bytes]:
        """Raw artifact bytes, or ``None`` (missing file = plain miss,
        I/O failure = counted miss).  ``store.read`` faults fire here,
        so injected I/O errors and bit flips hit every artifact kind.
        """
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except FileNotFoundError:
            return None
        except OSError:
            self.counters.bump("io_errors")
            return None
        try:
            return FAULTS.fire("store.read", data)
        except FileNotFoundError:
            return None
        except OSError:
            self.counters.bump("io_errors")
            return None

    def _quarantine(self, path: Path, kind: str, reason: str) -> None:
        """Move a bad artifact to ``<root>/quarantine/<kind>/``.

        The load still reports a miss (the caller recomputes and
        re-saves, healing the cache), but the evidence is preserved
        and counted instead of being re-read — and re-mistrusted —
        forever.
        """
        self.counters.bump(
            "schema_stale" if reason == "schema" else "corrupt"
        )
        self.counters.corruption()
        dest = self.root / "quarantine" / kind / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
            self.counters.bump("quarantined")
        except OSError:
            # Fall back to unlinking so a poisoned artifact cannot be
            # served as a repeat corruption on every future load.
            try:
                path.unlink()
            except OSError:
                pass
            self.counters.bump("quarantine_failed")

    def _load(self, kind: str, key: str, ext: str) -> Optional[dict]:
        """Parsed, schema-checked artifact envelope (or ``None``)."""
        path = self._path(kind, key, ext)
        data = self._read(path)
        if data is None:
            return None
        try:
            payload = (
                json.loads(data) if ext == "json" else pickle.loads(data)
            )
            if not isinstance(payload, dict):
                raise ValueError("artifact envelope is not a mapping")
        except Exception:
            self._quarantine(path, kind, "corrupt")
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            self._quarantine(path, kind, "schema")
            return None
        return payload

    def _write(self, path: Path, data: bytes) -> None:
        try:
            data = FAULTS.fire("store.write", data)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
        except OSError:
            if self.strict:
                raise
            self.counters.bump("dropped_writes")
            return
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                # Durability, not just atomicity: without the fsync a
                # power loss after the rename can surface a published
                # artifact whose *data* never reached the platter — a
                # zero-length or torn file at the final path, which
                # atomic rename alone cannot prevent.
                fh.flush()
                try:
                    os.fsync(fh.fileno())
                except OSError:
                    self.counters.bump("io_errors")
            # The crash-safety window: a process dying between the
            # temp-file write and the rename must leave the published
            # path untouched and only an orphan ``*.tmp`` behind.
            FAULTS.fire("store.crash")
            # Best-effort duplicate detection (racy by nature): a
            # publish over an existing artifact means another writer
            # got here first — the cross-process recompute the shared
            # cache is meant to absorb, surfaced as a counter.
            duplicate = path.exists()
            os.replace(tmp, path)
            self._fsync_dir(path.parent)
            self.counters.bump("writes")
            if duplicate:
                self.counters.bump("duplicate_writes")
        except BaseException as exc:
            if isinstance(exc, SimulatedCrash):
                raise  # a real crash runs no cleanup; prune reclaims
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if self.strict or not isinstance(exc, OSError):
                raise
            self.counters.bump("dropped_writes")

    def _fsync_dir(self, directory: Path) -> None:
        """Persist a rename by fsyncing its directory (POSIX).

        The rename itself lives in the directory entry; without this a
        power loss can forget the publication even though the file's
        bytes are safe.  Filesystems that refuse directory fds (or
        non-POSIX hosts) count an ``io_error`` and move on — the write
        is still atomic, merely not power-loss durable.
        """
        if not hasattr(os, "O_DIRECTORY"):  # pragma: no cover
            return
        try:
            fd = os.open(directory, os.O_RDONLY | os.O_DIRECTORY)
        except OSError:
            self.counters.bump("io_errors")
            return
        try:
            os.fsync(fd)
        except OSError:
            self.counters.bump("io_errors")
        finally:
            os.close(fd)

    # -- profiles (JSON) ----------------------------------------------------

    def save_profile(self, key: str, profile: WorkloadProfile) -> Path:
        path = self._path("profiles", key, "json")
        payload = {
            "schema": SCHEMA_VERSION,
            "profile": profile.to_dict(),
        }
        self._write(path, json.dumps(payload).encode())
        return path

    def load_profile(self, key: str) -> Optional[WorkloadProfile]:
        payload = self._load("profiles", key, "json")
        if payload is None:
            return None
        try:
            profile = WorkloadProfile.from_dict(payload["profile"])
        except Exception:
            self._quarantine(
                self._path("profiles", key, "json"), "profiles", "corrupt"
            )
            return None
        self.counters.healthy_load()
        return profile

    # -- ILP tables (JSON, content-addressed) -------------------------------

    def save_ilp_table(self, key: str, table: ILPTable) -> Path:
        path = self._path("ilptables", key, "json")
        payload = {
            "schema": SCHEMA_VERSION,
            "table": table.to_dict(),
        }
        self._write(path, json.dumps(payload).encode())
        return path

    def load_ilp_table(self, key: str) -> Optional[ILPTable]:
        payload = self._load("ilptables", key, "json")
        if payload is None:
            return None
        try:
            table = ILPTable.from_dict(payload["table"])
        except Exception:
            self._quarantine(
                self._path("ilptables", key, "json"), "ilptables",
                "corrupt",
            )
            return None
        self.counters.healthy_load()
        return table

    # -- traces (raw-buffer arena, mmap-loaded; pickle for compat) ----------

    def save_trace(self, key: str, trace: WorkloadTrace) -> Path:
        """Persist a trace in the raw-buffer arena layout.

        The arena is the primary on-disk format: loads mmap it and
        build ``TraceBlock`` views straight over the mapping (no
        pickle copy on the hot read path).  The schema version and
        content digest travel in the arena's metadata header.
        """
        path = self._path("traces", key, "arena")
        payload = pack_trace_arena(trace, meta={
            "schema": SCHEMA_VERSION,
            "digest": trace.content_digest(),
        })
        self._write(path, payload)
        return path

    def save_trace_pickle(self, key: str, trace: WorkloadTrace) -> Path:
        """Persist a trace in the legacy pickle-envelope format.

        Kept as the compatibility format: loads fall back to it, so a
        cache directory written by an older build keeps serving hits.
        """
        path = self._path("traces", key, "pkl")
        payload = pickle.dumps({
            "schema": SCHEMA_VERSION,
            "digest": trace.content_digest(),
            "trace": pack_trace(trace),
        })
        self._write(path, payload)
        return path

    def load_trace(self, key: str) -> Optional[WorkloadTrace]:
        """Load a trace: mmap-backed arena first, pickle fallback."""
        trace = self._load_trace_arena(key)
        if trace is not None:
            return trace
        payload = self._load("traces", key, "pkl")
        if payload is None:
            return None
        try:
            trace = unpack_trace(payload["trace"])
            trace.validate()
            # Structural validation cannot see array corruption; the
            # embedded digest can.  A mismatch (bit rot, truncated
            # copy of the cache dir) quarantines and re-expands.
            if trace.content_digest() != payload.get("digest"):
                raise ValueError("trace content digest mismatch")
        except Exception:
            self._quarantine(
                self._path("traces", key, "pkl"), "traces", "corrupt"
            )
            return None
        self.counters.healthy_load()
        return trace

    def _load_trace_arena(self, key: str) -> Optional[WorkloadTrace]:
        """Zero-copy arena load: mmap + ``TraceBlock`` views over it.

        The mapping is read-only (``ACCESS_READ``), so every column
        comes out ``writeable=False`` — a consumer mutating a view
        raises instead of corrupting the mapping other processes
        share.  The digest check pages the columns in once but copies
        nothing; the mapping stays alive through the arrays' ``.base``
        chain after the file descriptor closes.
        """
        path = self._path("traces", key, "arena")
        try:
            fh = open(path, "rb")
        except FileNotFoundError:
            return None
        except OSError:
            self.counters.bump("io_errors")
            return None
        try:
            with fh:
                # Error-type ``store.read`` faults apply to this path
                # too (payload-mutation faults cannot touch a shared
                # read-only mapping and pass through).
                FAULTS.fire("store.read", b"")
                buf = mmap.mmap(
                    fh.fileno(), 0, access=mmap.ACCESS_READ
                )
        except FileNotFoundError:
            return None
        except OSError:
            self.counters.bump("io_errors")
            return None
        except ValueError:  # zero-length file cannot be mapped
            self._quarantine(path, "traces", "corrupt")
            return None
        try:
            meta, trace = load_trace_arena(buf)
            if meta.get("schema") != SCHEMA_VERSION:
                self._quarantine(path, "traces", "schema")
                return None
            trace.validate()
            if trace.content_digest() != meta.get("digest"):
                raise ValueError("trace content digest mismatch")
        except Exception:
            self._quarantine(path, "traces", "corrupt")
            return None
        self.counters.healthy_load()
        return trace

    # -- predictions / simulations (pickle) ---------------------------------

    def save_result(self, kind: str, key: str, result: Any) -> Path:
        path = self._path(kind, key, "pkl")
        payload = pickle.dumps(
            {"schema": SCHEMA_VERSION, "result": result}
        )
        self._write(path, payload)
        return path

    def load_result(self, kind: str, key: str) -> Optional[Any]:
        payload = self._load(kind, key, "pkl")
        if payload is None:
            return None
        try:
            result = payload["result"]
        except KeyError:
            self._quarantine(
                self._path(kind, key, "pkl"), kind, "corrupt"
            )
            return None
        self.counters.healthy_load()
        return result

    # -- inventory / garbage collection -------------------------------------

    def _artifacts(self, kind: str) -> list:
        try:
            return sorted(
                p for p in (self.root / kind).iterdir()
                if p.suffix in (".json", ".pkl", ".arena")
            )
        except OSError:
            return []

    def kinds(self) -> list:
        """Artifact kinds present under the store root.

        ``quarantine`` (bad-artifact evidence), ``queue`` (work-queue
        coordination state) and ``fleet`` (serving-fleet heartbeats)
        are not artifact kinds — they are excluded here and reported
        separately by :meth:`stats` / :meth:`health`.
        """
        try:
            return sorted(
                d.name for d in self.root.iterdir()
                if d.is_dir() and d.name not in _NON_ARTIFACT_DIRS
            )
        except OSError:
            return []

    @staticmethod
    def _dir_stats(directory: Path) -> Dict[str, int]:
        """File count + byte total of one directory (race tolerant)."""
        count = 0
        nbytes = 0
        try:
            entries = list(directory.iterdir())
        except OSError:
            entries = []
        for path in entries:
            try:
                if not path.is_file():
                    continue
                nbytes += path.stat().st_size
            except OSError:
                continue  # unlinked by a concurrent writer/prune
            count += 1
        return {"artifacts": count, "bytes": nbytes}

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-kind artifact counts and byte totals (best effort).

        Quarantined artifacts appear as ``quarantine/<kind>`` entries
        so a rotting cache is visible from ``repro store stats``;
        work-queue state (jobs, leases, done markers) appears as
        ``queue/<sub>`` entries and fleet heartbeats as ``fleet`` so
        coordination debris is just as visible.
        """
        out: Dict[str, Dict[str, int]] = {}
        for kind in self.kinds():
            count = 0
            nbytes = 0
            for path in self._artifacts(kind):
                try:
                    nbytes += path.stat().st_size
                except OSError:
                    continue
                count += 1
            out[kind] = {"artifacts": count, "bytes": nbytes}
        try:
            qdirs = sorted(
                d for d in (self.root / "quarantine").iterdir()
                if d.is_dir()
            )
        except OSError:
            qdirs = []
        for qdir in qdirs:
            out[f"quarantine/{qdir.name}"] = self._dir_stats(qdir)
        for sub in ("jobs", "leases", "done", "events"):
            qdir = self.root / "queue" / sub
            if qdir.is_dir():
                out[f"queue/{sub}"] = self._dir_stats(qdir)
        fleet_dir = self.root / "fleet"
        if fleet_dir.is_dir():
            out["fleet"] = self._dir_stats(fleet_dir)
        return out

    def health(self) -> Dict[str, Any]:
        """Counter snapshot + quarantine inventory for ``/healthz``."""
        out: Dict[str, Any] = self.counters.snapshot()
        out["generation"] = self.generation()
        out["quarantine"] = {
            kind.split("/", 1)[1]: entry["artifacts"]
            for kind, entry in self.stats().items()
            if kind.startswith("quarantine/")
        }
        return out

    # -- generation stamp ---------------------------------------------------

    def generation(self) -> int:
        """The store's current generation stamp (0 when unstamped)."""
        try:
            raw = (self.root / GENERATION_FILE).read_text().strip()
            return int(raw) if raw else 0
        except (OSError, ValueError):
            return 0

    def bump_generation(self) -> int:
        """Advance the generation stamp (atomic temp-file + rename).

        Called when persisted artifacts change under resident caches
        (a prune, an out-of-band store rewrite): engines polling
        :meth:`generation` drop their LRUs on the next check.  A lost
        increment under a concurrent bump is harmless — consumers
        compare for inequality, and any successful bump changes the
        value they saw.
        """
        gen = self.generation() + 1
        path = self.root / GENERATION_FILE
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=GENERATION_FILE, suffix=".tmp"
            )
            with os.fdopen(fd, "w") as fh:
                fh.write(str(gen))
                fh.flush()
                try:
                    os.fsync(fh.fileno())
                except OSError:
                    self.counters.bump("io_errors")
            os.replace(tmp, path)
            self._fsync_dir(path.parent)
        except OSError:
            if self.strict:
                raise
            self.counters.bump("dropped_writes")
        return gen

    def _artifact_schema(self, path: Path) -> Optional[int]:
        """Embedded schema of one artifact; None when unreadable."""
        try:
            with open(path, "rb") as fh:
                if path.suffix == ".arena":
                    if fh.read(len(ARENA_MAGIC)) != ARENA_MAGIC:
                        return None
                    (hlen,) = struct.unpack("<Q", fh.read(8))
                    header = pickle.loads(fh.read(hlen))
                    payload = header.get("meta", {})
                elif path.suffix == ".json":
                    payload = json.load(fh)
                else:
                    payload = pickle.load(fh)
            schema = payload.get("schema")
            return schema if isinstance(schema, int) else None
        except Exception:
            return None

    def prune(
        self,
        kinds: Optional[list] = None,
        older_than_s: Optional[float] = None,
        stale_only: bool = False,
        dry_run: bool = False,
    ) -> Dict[str, Dict[str, int]]:
        """Garbage-collect artifacts; returns per-kind removal stats.

        ``kinds`` restricts the sweep (default: every kind present;
        pass ``"quarantine"`` explicitly to empty the quarantine tree
        — the default sweep preserves it as evidence — and ``"queue"``
        to sweep aged work-queue debris, see :meth:`prune_queue`).
        ``older_than_s`` keeps artifacts younger than the cutoff;
        ``stale_only`` removes only artifacts whose embedded schema is
        not the current :data:`SCHEMA_VERSION` (or that cannot be read
        at all) — the entries every load already treats as misses.
        ``dry_run`` reports what would be removed without unlinking.

        Orphaned ``*.tmp`` files left behind by crashed writers are
        swept from every visited kind regardless of ``stale_only`` —
        they are unreachable debris by construction.  The whole sweep
        tolerates concurrent writers: a file vanishing between
        ``iterdir()`` and ``stat()``/``unlink()`` is skipped, not an
        error.

        A sweep that actually removed artifacts bumps the store
        generation (see :meth:`bump_generation`), so resident engine
        LRUs across the fleet drop entries derived from the pruned
        artifacts on their next generation check.
        """
        now = time.time()
        out: Dict[str, Dict[str, int]] = {}
        for kind in kinds if kinds is not None else self.kinds():
            if kind == "quarantine":
                out[kind] = self._prune_tree(
                    self.root / "quarantine", older_than_s, dry_run, now
                )
                continue
            if kind == "queue":
                out.update(self.prune_queue(
                    older_than_s=older_than_s, dry_run=dry_run
                ))
                continue
            removed = 0
            nbytes = 0
            kind_dir = self.root / kind
            try:
                tmp_files = sorted(kind_dir.glob("*.tmp"))
            except OSError:
                tmp_files = []
            for path in list(self._artifacts(kind)) + tmp_files:
                orphan = path.suffix == ".tmp"
                try:
                    st = path.stat()
                except OSError:
                    continue  # lost a race with a concurrent prune
                if older_than_s is not None and (
                    now - st.st_mtime
                ) < older_than_s:
                    continue
                if stale_only and not orphan and self._artifact_schema(
                    path
                ) == SCHEMA_VERSION:
                    continue
                if not dry_run:
                    try:
                        path.unlink()
                    except FileNotFoundError:
                        continue  # a concurrent writer renamed it away
                    except OSError:
                        continue
                removed += 1
                nbytes += st.st_size
            out[kind] = {"removed": removed, "bytes": nbytes}
        # Queue debris is coordination state, not artifacts — sweeping
        # it invalidates nothing resident.
        if not dry_run and any(
            entry["removed"] for kind, entry in out.items()
            if not kind.startswith("queue/")
        ):
            self.bump_generation()
        return out

    def prune_queue(
        self,
        older_than_s: Optional[float] = None,
        dry_run: bool = False,
    ) -> Dict[str, Dict[str, int]]:
        """Sweep aged work-queue debris under ``<root>/queue/``.

        Two classes of debris accumulate under a long-lived queue:

        * **aged done markers** (``done/<key>.json``) — the
          exactly-once dedup record; safe to drop once old enough that
          nothing will re-enqueue the job (a re-run then simply
          recomputes into the content-addressed store);
        * **orphaned leases** (``leases/<key>.lease``) — left behind
          when a worker died after its job file was consumed (or the
          job was completed by a successor): a lease with *no matching
          job file* can never be released by the normal protocol.

        Both sweeps honor ``older_than_s`` as an age guard; orphaned
        leases additionally require being older than one default lease
        period, so a claim racing this sweep (job unlinked between our
        two scans) is never swept.  Plain filesystem logic — no
        dependency on :mod:`repro.experiments.workqueue`, which
        imports back into this module's consumers.
        """
        now = time.time()
        qroot = self.root / "queue"
        out: Dict[str, Dict[str, int]] = {}

        def _sweep(paths, min_age_s: float) -> Dict[str, int]:
            removed = 0
            nbytes = 0
            for path in paths:
                try:
                    st = path.stat()
                except OSError:
                    continue
                if (now - st.st_mtime) < min_age_s:
                    continue
                if not dry_run:
                    try:
                        path.unlink()
                    except OSError:
                        continue
                removed += 1
                nbytes += st.st_size
            return {"removed": removed, "bytes": nbytes}

        try:
            done = sorted((qroot / "done").glob("*.json"))
        except OSError:
            done = []
        out["queue/done"] = _sweep(done, older_than_s or 0.0)

        # Orphaned leases: no pending job file shares the lease's key.
        # Job files are named ``p<priority>-<key>.json``.
        try:
            job_keys = {
                p.stem.split("-", 1)[1]
                for p in (qroot / "jobs").glob("*.json")
                if "-" in p.stem
            }
        except OSError:
            job_keys = set()
        try:
            leases = sorted((qroot / "leases").glob("*.lease"))
        except OSError:
            leases = []
        orphans = [p for p in leases if p.stem not in job_keys]
        # Never race an in-flight claim: a just-acquired lease whose
        # job file we happened to miss must age past a full lease
        # period (plus the caller's cutoff) before it is debris.
        min_age = max(older_than_s or 0.0, 60.0)
        out["queue/leases"] = _sweep(orphans, min_age)

        # Crashed enqueuers leave ``*.tmp-<owner>-<pid>`` files next
        # to the real ones; sweep them behind the same age guard so a
        # live enqueue mid-rename is never raced.
        tmp_files = []
        for sub in ("jobs", "leases", "done", "events"):
            try:
                tmp_files.extend((qroot / sub).glob("*.tmp*"))
            except OSError:
                continue
        out["queue/tmp"] = _sweep(sorted(tmp_files), min_age)
        return out

    def _prune_tree(
        self,
        root: Path,
        older_than_s: Optional[float],
        dry_run: bool,
        now: float,
    ) -> Dict[str, int]:
        """Sweep every file under ``root`` (quarantine evidence)."""
        removed = 0
        nbytes = 0
        try:
            subdirs = [d for d in root.iterdir() if d.is_dir()]
        except OSError:
            subdirs = []
        for directory in subdirs:
            try:
                entries = list(directory.iterdir())
            except OSError:
                continue
            for path in entries:
                try:
                    st = path.stat()
                except OSError:
                    continue
                if older_than_s is not None and (
                    now - st.st_mtime
                ) < older_than_s:
                    continue
                if not dry_run:
                    try:
                        path.unlink()
                    except OSError:
                        continue
                removed += 1
                nbytes += st.st_size
        return {"removed": removed, "bytes": nbytes}


class TraceCache:
    """Content-addressed, byte-bounded LRU over expanded traces.

    The trace analogue of the ILP table cache: resolution is
    in-process LRU -> on-disk ``"traces"`` store kind -> the columnar
    expansion engine (:mod:`repro.workloads.engine`), with
    write-through persistence for engine-expanded traces when a store
    is attached.  Keys are :meth:`ProfileStore.trace_key` fingerprints
    of the full workload spec, so every layer — the profiler, the
    bench harness, the experiment pipeline, the simulator and the
    serving engine — agrees on trace identity and re-pays expansion at
    most once per distinct ``(spec, seed, scale)`` per process (and,
    with a store, per machine).

    Thread-safe.  Concurrent misses on the same key may expand twice;
    both expansions are bit-identical, so last-writer-wins is sound.
    """

    def __init__(
        self,
        store: Optional[ProfileStore] = None,
        max_bytes: int = 512 << 20,
        max_traces: int = 64,
        max_persist_bytes: int = 64 << 20,
        engine: Optional[ExpansionEngine] = None,
    ) -> None:
        self.store = store
        self.engine = engine if engine is not None else default_engine()
        self.max_bytes = max_bytes
        self.max_traces = max_traces
        #: Traces larger than this stay in memory only — a guard
        #: against unbounded store growth from huge one-off scales
        #: (``repro store prune`` reclaims what does get persisted).
        self.max_persist_bytes = max_persist_bytes
        self._data: "OrderedDict[str, WorkloadTrace]" = OrderedDict()
        self._nbytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.store_hits = 0
        self.store_saves = 0
        self.evictions = 0

    @staticmethod
    def key(spec: WorkloadSpec) -> str:
        """Content address of ``spec``, memoized on the spec object.

        Canonicalizing a suite-sized spec (hundreds of nested segment
        plans) costs milliseconds — more than a warm cache hit — so
        the fingerprint is computed once per spec object.  Specs are
        treated as immutable everywhere once built; mutating one after
        its first cache lookup would poison its content address.
        """
        key = getattr(spec, "_trace_key", None)
        if key is None:
            key = ProfileStore.trace_key(spec)
            try:
                spec._trace_key = key
            except AttributeError:  # exotic spec types without __dict__
                pass
        return key

    def get(self, spec: WorkloadSpec) -> WorkloadTrace:
        """The expanded trace of ``spec`` (LRU -> store -> engine)."""
        key = self.key(spec)
        with self._lock:
            trace = self._data.get(key)
            if trace is not None:
                self._data.move_to_end(key)
                self.hits += 1
                return trace
            self.misses += 1
        trace = None
        if self.store is not None:
            trace = self.store.load_trace(key)
        if trace is not None:
            with self._lock:
                self.store_hits += 1
        else:
            trace = self.engine.expand(spec)
            if (
                self.store is not None
                and trace.nbytes <= self.max_persist_bytes
            ):
                self.store.save_trace(key, trace)
                with self._lock:
                    self.store_saves += 1
        self._put(key, trace)
        return trace

    def _put(self, key: str, trace: WorkloadTrace) -> None:
        with self._lock:
            old = self._data.pop(key, None)
            if old is not None:
                self._nbytes -= old.nbytes
            self._data[key] = trace
            self._nbytes += trace.nbytes
            while self._data and (
                len(self._data) > self.max_traces
                or self._nbytes > self.max_bytes
            ):
                _, evicted = self._data.popitem(last=False)
                self._nbytes -= evicted.nbytes
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._nbytes

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "store_hits": self.store_hits,
                "store_saves": self.store_saves,
                "evictions": self.evictions,
                "traces": len(self._data),
                "bytes": self._nbytes,
                "max_bytes": self.max_bytes,
            }
