"""Figure 5: average per-thread CPI stacks, RPPM vs simulation.

For each benchmark the paper draws two stacked bars — the left from
RPPM, the right from simulation, normalized to the simulated total —
decomposed into base / branch / I-cache / memory / sync components.
The reproduction reports the same normalized component pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.arch.config import MulticoreConfig
from repro.arch.presets import table_iv_config
from repro.core.cpi_stack import COMPONENTS
from repro.experiments.suites import (
    BenchmarkRef,
    RunCache,
    full_suite,
    shared_cache,
)


@dataclass(frozen=True)
class StackPair:
    """Predicted and simulated normalized CPI stacks of one benchmark.

    Components are normalized to the *simulated* total CPI, as in the
    paper's Figure 5 (so the simulated bar sums to 1 and the predicted
    bar's total shows the overall prediction error directly).
    """

    benchmark: str
    suite: str
    predicted: Dict[str, float]
    simulated: Dict[str, float]

    @property
    def predicted_total(self) -> float:
        return sum(self.predicted.values())

    @property
    def simulated_total(self) -> float:
        return sum(self.simulated.values())

    def component_error(self, component: str) -> float:
        """Absolute difference of a component's normalized share."""
        return abs(self.predicted[component] - self.simulated[component])

    def dominant_error_component(self) -> str:
        """The component contributing most prediction error."""
        return max(COMPONENTS, key=self.component_error)


@dataclass
class Figure5Result:
    pairs: List[StackPair]
    config: str

    def pair(self, benchmark: str) -> StackPair:
        for p in self.pairs:
            if p.benchmark == benchmark:
                return p
        raise KeyError(benchmark)


def run_stack_pair(
    ref: BenchmarkRef, config: MulticoreConfig, cache: RunCache
) -> StackPair:
    """Normalized predicted/simulated stacks for one benchmark."""
    pred_stack = cache.prediction(ref, config).average_stack()
    sim_stack = cache.simulation(ref, config).average_stack()
    sim_total = max(sim_stack.total_cycles, 1e-12)
    return StackPair(
        benchmark=ref.name,
        suite=ref.suite,
        predicted={
            c: getattr(pred_stack, c) / sim_total for c in COMPONENTS
        },
        simulated={
            c: getattr(sim_stack, c) / sim_total for c in COMPONENTS
        },
    )


def run_figure5(
    benchmarks: Optional[Sequence[BenchmarkRef]] = None,
    config: Optional[MulticoreConfig] = None,
    cache: Optional[RunCache] = None,
    jobs: Optional[int] = None,
) -> Figure5Result:
    """Figure 5 for the whole suite on the base configuration.

    ``jobs`` bounds the prefetch worker processes (default: CPU count).
    """
    benchmarks = list(benchmarks) if benchmarks else full_suite()
    config = config or table_iv_config("base")
    cache = cache or shared_cache()
    cache.prefetch(
        benchmarks, configs=(config,), workers=jobs, simulate=True
    )
    pairs = [run_stack_pair(ref, config, cache) for ref in benchmarks]
    return Figure5Result(pairs=pairs, config=config.name)


def render_figure5(result: Figure5Result) -> str:
    """Figure 5 as paired normalized component rows."""
    head = (
        f"{'benchmark':>22s} {'bar':>4s}  "
        + "  ".join(f"{c:>7s}" for c in COMPONENTS)
        + f"  {'total':>7s}"
    )
    lines = [f"CPI stacks normalized to simulation ({result.config})", head]
    for p in result.pairs:
        for label, stack, total in (
            ("RPPM", p.predicted, p.predicted_total),
            ("sim", p.simulated, p.simulated_total),
        ):
            name = f"{p.suite}.{p.benchmark}" if label == "RPPM" else ""
            lines.append(
                f"{name:>22s} {label:>4s}  "
                + "  ".join(f"{stack[c]:>7.3f}" for c in COMPONENTS)
                + f"  {total:>7.3f}"
            )
    return "\n".join(lines)
