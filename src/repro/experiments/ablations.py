"""Ablation studies: disable one RPPM mechanism and measure the cost.

The paper motivates RPPM with three ingredients missing from naive
extensions: shared-resource interference, cache coherence, and
synchronization (§I).  Each ablation here strips exactly one mechanism
from the *profile* (never from the simulator — the golden reference
stays fixed) and re-predicts:

* ``without_coherence`` — drop write-invalidation records; private
  reuse distances look unbroken, so coherence misses disappear from
  the private L1/L2 miss rates.
* ``without_global_reuse`` — predict the shared LLC from the private
  (per-thread) reuse-distance distribution instead of the global
  interleaved one; both positive interference (sharing) and negative
  interference (competition) vanish.
* ``without_sync`` — the CRIT baseline: per-thread active-time sums
  with no symbolic synchronization replay.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.arch.config import MulticoreConfig
from repro.arch.presets import table_iv_config
from repro.core.baselines import predict_crit
from repro.core.rppm import predict
from repro.experiments.suites import (
    BenchmarkRef,
    RunCache,
    full_suite,
    shared_cache,
)
from repro.profiler.profile import WorkloadProfile

#: Ablation names in report order.
ABLATIONS = ("full", "no_coherence", "no_global_reuse", "no_sync")


def strip_coherence(profile: WorkloadProfile) -> WorkloadProfile:
    """A copy of ``profile`` with write-invalidation records removed.

    The invalidated reuses are folded back into the finite histogram at
    the thread's mean reuse distance — as if the remote writes never
    broke them.
    """
    out = copy.deepcopy(profile)
    for thread in out.threads:
        for pool in thread.pools.values():
            private = pool.data.private
            n_inval = private.inval
            if n_inval:
                private.add_many(
                    __import__("numpy").full(
                        n_inval, max(int(private.mean_finite()), 0)
                    )
                )
                private.inval = 0
    return out


def strip_global_reuse(profile: WorkloadProfile) -> WorkloadProfile:
    """A copy predicting the shared LLC from *private* distances.

    The private distribution is rescaled by the thread count (a naive
    interleaving guess that ignores actual sharing), which is what a
    single-threaded model would have to do.
    """
    out = copy.deepcopy(profile)
    scale = max(out.n_threads, 1)
    for thread in out.threads:
        for pool in thread.pools.values():
            pool.data.shared = pool.data.private.scaled(scale)
    return out


@dataclass
class AblationRow:
    """Signed prediction error per ablation for one benchmark."""

    benchmark: str
    errors: Dict[str, float]


@dataclass
class AblationResult:
    rows: List[AblationRow]

    def average_abs_error(self, ablation: str) -> float:
        return sum(
            abs(r.errors[ablation]) for r in self.rows
        ) / max(len(self.rows), 1)

    def degradation(self, ablation: str) -> float:
        """Average error increase over the full model."""
        return self.average_abs_error(ablation) - self.average_abs_error(
            "full"
        )


def run_ablations(
    benchmarks: Optional[Sequence[BenchmarkRef]] = None,
    config: Optional[MulticoreConfig] = None,
    cache: Optional[RunCache] = None,
    jobs: Optional[int] = None,
) -> AblationResult:
    """Prediction error of each ablated model across the suite.

    The shared profile/prediction/simulation inputs prefetch over
    ``jobs`` worker processes; the ablated re-predictions themselves
    run in-process (they mutate profile copies and are not cached).
    """
    benchmarks = list(benchmarks) if benchmarks else full_suite()
    config = config or table_iv_config("base")
    cache = cache or shared_cache()
    cache.prefetch(
        benchmarks, configs=(config,), workers=jobs, simulate=True
    )
    rows: List[AblationRow] = []
    for ref in benchmarks:
        profile = cache.profile(ref)
        sim = cache.simulation(ref, config).total_cycles
        variants = {
            "full": cache.prediction(ref, config).total_cycles,
            "no_coherence": predict(
                strip_coherence(profile), config
            ).total_cycles,
            "no_global_reuse": predict(
                strip_global_reuse(profile), config
            ).total_cycles,
            "no_sync": predict_crit(profile, config),
        }
        rows.append(
            AblationRow(
                benchmark=ref.label,
                errors={
                    name: cycles / sim - 1.0
                    for name, cycles in variants.items()
                },
            )
        )
    return AblationResult(rows=rows)


def render_ablations(result: AblationResult) -> str:
    header = f"{'benchmark':>24s}  " + "  ".join(
        f"{name:>15s}" for name in ABLATIONS
    )
    lines = [header, "-" * len(header)]
    for row in result.rows:
        lines.append(
            f"{row.benchmark:>24s}  "
            + "  ".join(f"{row.errors[a]:>+15.1%}" for a in ABLATIONS)
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'avg abs error':>24s}  "
        + "  ".join(
            f"{result.average_abs_error(a):>15.1%}" for a in ABLATIONS
        )
    )
    return "\n".join(lines)
