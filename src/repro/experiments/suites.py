"""The evaluated workload suite (paper §IV) and shared run caching.

The paper evaluates all sixteen Rodinia benchmarks plus ten Parsec
benchmarks on a quad-core machine.  Several experiments (Figures 4-6)
need the same profiles and simulations, so this module provides a
process-local cache keyed by (suite, benchmark, scale, configuration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.config import MulticoreConfig
from repro.core.rppm import PredictionResult, predict
from repro.profiler.profile import WorkloadProfile
from repro.profiler.profiler import profile_workload
from repro.simulator.multicore import simulate
from repro.simulator.results import SimulationResult
from repro.workloads.generator import expand
from repro.workloads.ir import WorkloadTrace
from repro.workloads.parsec import PARSEC, parsec_workload
from repro.workloads.rodinia import RODINIA, rodinia_workload


@dataclass(frozen=True)
class BenchmarkRef:
    """One evaluated benchmark: suite plus name (paper Figure 4 x-axis)."""

    suite: str  # "rodinia" | "parsec"
    name: str

    def __post_init__(self) -> None:
        known = RODINIA if self.suite == "rodinia" else (
            set(PARSEC) if self.suite == "parsec" else None
        )
        if known is None:
            raise ValueError(f"unknown suite {self.suite!r}")
        if self.name not in known:
            raise ValueError(f"unknown {self.suite} benchmark {self.name!r}")

    @property
    def label(self) -> str:
        return f"{self.suite}.{self.name}"


def rodinia_suite() -> List[BenchmarkRef]:
    """All sixteen Rodinia benchmarks, Table II order."""
    return [BenchmarkRef("rodinia", name) for name in RODINIA]


def parsec_suite() -> List[BenchmarkRef]:
    """The ten evaluated Parsec benchmarks, Figure 4 order."""
    return [BenchmarkRef("parsec", name) for name in PARSEC]


def full_suite() -> List[BenchmarkRef]:
    """Rodinia followed by Parsec, as in Figure 4."""
    return rodinia_suite() + parsec_suite()


def build_workload(ref: BenchmarkRef, scale: float = 1.0):
    """Workload spec for a benchmark reference."""
    if ref.suite == "rodinia":
        return rodinia_workload(ref.name, scale=scale)
    return parsec_workload(ref.name, scale=scale)


class RunCache:
    """Memoised traces, profiles, predictions and simulations.

    Experiments share one instance so that e.g. Figure 4 and Figure 5
    profile and simulate each benchmark once.  The profile cache key is
    (benchmark, scale); prediction/simulation keys additionally carry
    the configuration (hashable by design).
    """

    def __init__(self, scale: float = 1.0):
        self.scale = scale
        self._traces: Dict[str, WorkloadTrace] = {}
        self._profiles: Dict[str, WorkloadProfile] = {}
        self._predictions: Dict[
            Tuple[str, MulticoreConfig], PredictionResult
        ] = {}
        self._simulations: Dict[
            Tuple[str, MulticoreConfig], SimulationResult
        ] = {}

    def trace(self, ref: BenchmarkRef) -> WorkloadTrace:
        if ref.label not in self._traces:
            self._traces[ref.label] = expand(
                build_workload(ref, self.scale)
            )
        return self._traces[ref.label]

    def profile(self, ref: BenchmarkRef) -> WorkloadProfile:
        if ref.label not in self._profiles:
            self._profiles[ref.label] = profile_workload(self.trace(ref))
        return self._profiles[ref.label]

    def prediction(
        self, ref: BenchmarkRef, config: MulticoreConfig
    ) -> PredictionResult:
        key = (ref.label, config)
        if key not in self._predictions:
            self._predictions[key] = predict(self.profile(ref), config)
        return self._predictions[key]

    def simulation(
        self, ref: BenchmarkRef, config: MulticoreConfig
    ) -> SimulationResult:
        key = (ref.label, config)
        if key not in self._simulations:
            self._simulations[key] = simulate(self.trace(ref), config)
        return self._simulations[key]


#: Default shared cache used by the benchmark harness.
_SHARED: Optional[RunCache] = None


def shared_cache(scale: float = 1.0) -> RunCache:
    """Process-wide cache (reset when a different scale is requested)."""
    global _SHARED
    if _SHARED is None or _SHARED.scale != scale:
        _SHARED = RunCache(scale)
    return _SHARED
