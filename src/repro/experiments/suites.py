"""The evaluated workload suite (paper §IV) and shared run caching.

The paper evaluates all sixteen Rodinia benchmarks plus ten Parsec
benchmarks on a quad-core machine.  Several experiments (Figures 4-6)
need the same profiles and simulations, so this module provides the
shared :class:`RunCache` — a three-level pipeline:

1. an in-process memo (dict) per artifact kind,
2. an optional versioned on-disk :class:`~repro.experiments.store.
   ProfileStore`, shared across processes *and* across runs,
3. :meth:`RunCache.prefetch`, which fans profiling / prediction /
   simulation of many benchmarks out over a ``ProcessPoolExecutor``
   and funnels the results back through levels 1-2.

Everything is keyed by (suite, benchmark, scale, chunk) plus — for
predictions and simulations — a deterministic configuration
fingerprint, so a cache entry is valid exactly as long as its inputs
are.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.config import MulticoreConfig
from repro.core.rppm import PredictionResult, predict
from repro.core.session import Session
from repro.experiments.store import ProfileStore
from repro.obs import get_logger
from repro.profiler.profile import WorkloadProfile
from repro.profiler.profiler import profile_workload
from repro.simulator.multicore import simulate
from repro.simulator.results import SimulationResult
from repro.workloads.ir import WorkloadTrace
from repro.workloads.parsec import PARSEC, parsec_workload
from repro.workloads.rodinia import RODINIA, rodinia_workload
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class BenchmarkRef:
    """One evaluated benchmark: suite plus name (paper Figure 4 x-axis)."""

    suite: str  # "rodinia" | "parsec"
    name: str

    def __post_init__(self) -> None:
        known = RODINIA if self.suite == "rodinia" else (
            set(PARSEC) if self.suite == "parsec" else None
        )
        if known is None:
            raise ValueError(f"unknown suite {self.suite!r}")
        if self.name not in known:
            raise ValueError(f"unknown {self.suite} benchmark {self.name!r}")

    @property
    def label(self) -> str:
        return f"{self.suite}.{self.name}"


def rodinia_suite() -> List[BenchmarkRef]:
    """All sixteen Rodinia benchmarks, Table II order."""
    return [BenchmarkRef("rodinia", name) for name in RODINIA]


def parsec_suite() -> List[BenchmarkRef]:
    """The ten evaluated Parsec benchmarks, Figure 4 order."""
    return [BenchmarkRef("parsec", name) for name in PARSEC]


def full_suite() -> List[BenchmarkRef]:
    """Rodinia followed by Parsec, as in Figure 4."""
    return rodinia_suite() + parsec_suite()


def build_workload(ref: BenchmarkRef, scale: float = 1.0):
    """Workload spec for a benchmark reference."""
    if ref.suite == "rodinia":
        return rodinia_workload(ref.name, scale=scale)
    return parsec_workload(ref.name, scale=scale)


def _prefetch_worker(
    suite: str,
    name: str,
    scale: float,
    chunk: int,
    configs: Sequence[MulticoreConfig],
    do_sim: bool,
    store_root: Optional[str] = None,
) -> Tuple[str, WorkloadProfile, list, list]:
    """Profile (and optionally predict/simulate) one benchmark.

    Runs in a worker process; everything returned must pickle.  The
    parent installs the results into its memory cache.  Workers write
    the store directly (each its own benchmark's artifacts, plus the
    content-addressed ``ilptables`` shared by all); every write goes
    through the store's atomic temp-file + rename, so concurrent
    writers are safe.

    A benchmark lands here when *any* of its artifacts is missing.
    The worker runs a worker-local :class:`RunCache` over the same
    store, so the load-or-compute-then-persist logic exists in
    exactly one place (the RunCache artifact methods): satisfied
    artifacts (say, four of five design points simulated by an
    earlier run) are read back rather than recomputed, new ones are
    persisted in-worker, and a store-satisfied profile with cached
    simulations never expands its trace at all.
    """
    ref = BenchmarkRef(suite, name)
    # Non-strict: a worker that computed a result must return it to
    # the parent even if persisting it fails (reads heal later).
    store = (
        ProfileStore(store_root, strict=False)
        if store_root is not None else None
    )
    local = RunCache(scale=scale, store=store, chunk=chunk)
    profile = local.profile(ref)
    preds = [local.prediction(ref, config) for config in configs]
    sims = (
        [local.simulation(ref, config) for config in configs]
        if do_sim else []
    )
    return ref.label, profile, preds, sims


class RunCache:
    """Memoised traces, profiles, predictions and simulations.

    Experiments share one instance so that e.g. Figure 4 and Figure 5
    profile and simulate each benchmark once.  The profile cache key is
    (benchmark, scale); prediction/simulation keys additionally carry
    the configuration (hashable by design).

    With a ``store`` attached, profiles (JSON) and predictions /
    simulations (pickles) also persist to a versioned on-disk cache
    keyed by workload seed + scale + chunk + config fingerprint, shared
    across processes and across runs; corrupt or stale entries fall
    back to recomputation.
    """

    def __init__(
        self,
        scale: float = 1.0,
        store: Optional[ProfileStore] = None,
        chunk: int = 4096,
        session: Optional[Session] = None,
    ):
        self.scale = scale
        self.chunk = chunk
        #: The artifact cache plane: content-addressed traces, per-pool
        #: ILP tables, branch statistics, segment precompute and
        #: resident Eq.-1 memos — shared by every call through this
        #: RunCache.  A caller-supplied session shares the plane with
        #: other harnesses (the bench suite, the serving engine).
        if session is None:
            session = Session(store=store)
        elif store is not None and session.store is not store:
            raise ValueError("pass either a store or a session, not both")
        self.session = session
        self.store = session.store
        self._specs: Dict[str, WorkloadSpec] = {}
        self._profiles: Dict[str, WorkloadProfile] = {}
        self._predictions: Dict[
            Tuple[str, MulticoreConfig], PredictionResult
        ] = {}
        self._simulations: Dict[
            Tuple[str, MulticoreConfig], SimulationResult
        ] = {}

    @property
    def ilp_cache(self):
        """The session's ILP-table cache (back-compat accessor)."""
        return self.session.ilp

    @property
    def traces(self):
        """The session's trace cache (back-compat accessor)."""
        return self.session.traces

    # -- store keys ---------------------------------------------------------

    def _spec(self, ref: BenchmarkRef) -> WorkloadSpec:
        # A pure function of (suite, name, scale) — memoized, since
        # every store-key computation and trace lookup needs it and
        # building the spec is not free.
        spec = self._specs.get(ref.label)
        if spec is None:
            spec = build_workload(ref, self.scale)
            self._specs[ref.label] = spec
        return spec

    def _seed(self, ref: BenchmarkRef) -> int:
        return int(self._spec(ref).seed)

    def _profile_key(self, ref: BenchmarkRef) -> str:
        return ProfileStore.profile_key(
            ref.label, self._seed(ref), self.scale, self.chunk
        )

    def _result_key(
        self, kind: str, ref: BenchmarkRef, config: MulticoreConfig
    ) -> str:
        return ProfileStore.result_key(
            kind, ref.label, self._seed(ref), self.scale, config
        )

    # -- artifacts ----------------------------------------------------------

    def trace(self, ref: BenchmarkRef) -> WorkloadTrace:
        return self.traces.get(self._spec(ref))

    def profile(self, ref: BenchmarkRef) -> WorkloadProfile:
        if ref.label not in self._profiles:
            profile = None
            if self.store is not None:
                profile = self.store.load_profile(self._profile_key(ref))
            if profile is None:
                profile = profile_workload(
                    self.trace(ref),
                    chunk=self.chunk,
                    session=self.session,
                )
                if self.store is not None:
                    self.store.save_profile(
                        self._profile_key(ref), profile
                    )
            self._profiles[ref.label] = profile
        return self._profiles[ref.label]

    def prediction(
        self, ref: BenchmarkRef, config: MulticoreConfig
    ) -> PredictionResult:
        key = (ref.label, config)
        if key not in self._predictions:
            result = None
            if self.store is not None:
                result = self.store.load_result(
                    "predictions", self._result_key(
                        "prediction", ref, config
                    )
                )
            if result is None:
                result = predict(
                    self.profile(ref), config, session=self.session
                )
                if self.store is not None:
                    self.store.save_result(
                        "predictions",
                        self._result_key("prediction", ref, config),
                        result,
                    )
            self._predictions[key] = result
        return self._predictions[key]

    def simulation(
        self, ref: BenchmarkRef, config: MulticoreConfig
    ) -> SimulationResult:
        key = (ref.label, config)
        if key not in self._simulations:
            result = None
            if self.store is not None:
                result = self.store.load_result(
                    "simulations", self._result_key(
                        "simulation", ref, config
                    )
                )
            if result is None:
                result = simulate(
                    self.trace(ref), config, session=self.session
                )
                if self.store is not None:
                    self.store.save_result(
                        "simulations",
                        self._result_key("simulation", ref, config),
                        result,
                    )
            self._simulations[key] = result
        return self._simulations[key]

    # -- parallel pipeline --------------------------------------------------

    def prefetch(
        self,
        refs: Iterable[BenchmarkRef],
        configs: Sequence[MulticoreConfig] = (),
        workers: Optional[int] = None,
        simulate: bool = False,
    ) -> List[str]:
        """Profile (and optionally predict/simulate) many benchmarks.

        Benchmarks not already satisfied by the memory or disk cache
        are dispatched to a ``ProcessPoolExecutor`` with ``workers``
        processes (default: CPU count; values <= 1 run serially
        in-process).  Results land in the memory cache and, when a
        store is attached, on disk — so subsequent :meth:`profile` /
        :meth:`prediction` / :meth:`simulation` calls are hits.

        Returns the labels that were actually (re)computed.
        """
        todo: List[BenchmarkRef] = []
        for ref in refs:
            needs_profile = ref.label not in self._profiles
            if needs_profile and self.store is not None:
                cached = self.store.load_profile(self._profile_key(ref))
                if cached is not None:
                    self._profiles[ref.label] = cached
                    needs_profile = False
            needs_results = False
            for config in configs:
                if (ref.label, config) not in self._predictions:
                    hit = None
                    if self.store is not None:
                        hit = self.store.load_result(
                            "predictions", self._result_key(
                                "prediction", ref, config
                            )
                        )
                    if hit is not None:
                        self._predictions[(ref.label, config)] = hit
                    else:
                        needs_results = True
                if simulate and (
                    (ref.label, config) not in self._simulations
                ):
                    hit = None
                    if self.store is not None:
                        hit = self.store.load_result(
                            "simulations", self._result_key(
                                "simulation", ref, config
                            )
                        )
                    if hit is not None:
                        self._simulations[(ref.label, config)] = hit
                    else:
                        needs_results = True
            if needs_profile or needs_results:
                todo.append(ref)

        if not todo:
            return []
        if workers is None:
            workers = os.cpu_count() or 1
        if workers <= 1 or len(todo) == 1:
            self._prefetch_serial(todo, configs, simulate)
            return [ref.label for ref in todo]

        if self.store is not None and self._queue_eligible(configs):
            done = self._prefetch_queue(todo, configs, workers, simulate)
            if done is not None:
                return done

        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                store_root = (
                    str(self.store.root)
                    if self.store is not None else None
                )
                futures = [
                    pool.submit(
                        _prefetch_worker, ref.suite, ref.name,
                        self.scale, self.chunk, list(configs),
                        simulate, store_root,
                    )
                    for ref in todo
                ]
                for ref, future in zip(todo, futures):
                    label, profile, preds, sims = future.result()
                    self._profiles[label] = profile
                    for config, pred in zip(configs, preds):
                        self._predictions[(label, config)] = pred
                    for config, sim in zip(configs, sims):
                        self._simulations[(label, config)] = sim
        except BrokenProcessPool:
            # A worker died hard (OOM kill, segfault, machine chaos).
            # The report must not: recompute serially in-process —
            # every artifact a worker did persist before dying is a
            # store hit, so only the genuinely missing tail is paid.
            get_logger("repro.suites").error(
                "prefetch.pool_broken",
                todo=len(todo), workers=workers,
                fallback="serial recompute",
            )
            self._prefetch_serial(todo, configs, simulate)
        return [ref.label for ref in todo]

    def _prefetch_serial(
        self,
        todo: Sequence[BenchmarkRef],
        configs: Sequence[MulticoreConfig],
        simulate: bool,
    ) -> None:
        """In-process load-or-compute of everything in ``todo``."""
        for ref in todo:
            self.profile(ref)
            for config in configs:
                self.prediction(ref, config)
                if simulate:
                    self.simulation(ref, config)

    @staticmethod
    def _queue_eligible(configs: Sequence[MulticoreConfig]) -> bool:
        """Can ``configs`` travel as work-queue job payloads?

        Queue jobs carry configurations by Table IV design-point name
        (JSON, host-portable), so only preset-exact configs — same
        name, same derived parameters, uniform core count — can take
        the queue path; anything bespoke falls back to the pool.
        """
        from repro.arch.presets import TABLE_IV, table_iv_config

        cores = {config.cores for config in configs}
        if len(cores) > 1:
            return False
        return all(
            config.name in TABLE_IV
            and table_iv_config(config.name, cores=config.cores)
            == config
            for config in configs
        )

    def _prefetch_queue(
        self,
        todo: Sequence[BenchmarkRef],
        configs: Sequence[MulticoreConfig],
        workers: int,
        simulate: bool,
    ) -> Optional[List[str]]:
        """Fan ``todo`` out over the crash-safe work queue.

        Enqueues the job plan under this store's root and runs a
        supervised worker fleet to drain it — the same path any other
        process (or host sharing the store directory) would join, and
        the one that survives a worker SIGKILL without losing work.
        Returns ``None`` to fall back to the process pool when the
        fleet cannot run (e.g. an unpicklable spawn context).
        """
        from repro.experiments.workqueue import (
            WorkQueue, plan_suite_jobs, run_workers,
        )

        jobs = plan_suite_jobs(
            todo,
            scale=self.scale,
            chunk=self.chunk,
            configs=[config.name for config in configs],
            cores=configs[0].cores if configs else 4,
            simulate=simulate,
        )
        try:
            queue = WorkQueue(self.store.root)
            queue.enqueue_many(jobs)
            run_workers(
                self.store.root,
                workers=min(workers, len(todo)),
                drain=True,
            )
            queue.close()
        except Exception:
            get_logger("repro.suites").error(
                "prefetch.queue_failed", todo=len(todo),
                fallback="process pool",
            )
            return None
        # The artifacts are durable now; pull them into the memory
        # cache through the normal getters (store hits, or — if a
        # worker was lost mid-fleet — an in-process recompute).
        self._prefetch_serial(todo, configs, simulate)
        return [ref.label for ref in todo]


#: Default shared cache used by the benchmark harness.
_SHARED: Optional[RunCache] = None


def shared_cache(scale: float = 1.0) -> RunCache:
    """Process-wide cache (reset when a different scale is requested).

    Backed by the default on-disk :class:`ProfileStore` (see
    ``REPRO_CACHE_DIR``) so that ``python -m repro report`` runs reuse
    profiles, ILP tables, predictions and simulations across artifacts
    *and* across invocations; an unwritable store degrades to the
    in-memory cache.
    """
    global _SHARED
    if _SHARED is None or _SHARED.scale != scale:
        try:
            # Non-strict: save-time OSErrors (read-only root, full
            # disk) silently degrade to the in-memory cache instead
            # of aborting a computed result.
            store: Optional[ProfileStore] = ProfileStore.open_default()
            store.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            store = None
        _SHARED = RunCache(scale, store=store)
    return _SHARED
