"""Figure 4: prediction error of MAIN, CRIT and RPPM vs simulation.

For every benchmark the golden reference is the cycle-accounting
multicore simulation; the three predictors run from the same one-time
profile.  The paper reports per-benchmark signed errors and the
suite-wide average/maximum absolute errors (MAIN 45%, CRIT 28%,
RPPM 11.2% avg / 23% max).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.arch.config import MulticoreConfig
from repro.arch.presets import table_iv_config
from repro.core.baselines import predict_crit, predict_main
from repro.experiments.suites import (
    BenchmarkRef,
    RunCache,
    full_suite,
    shared_cache,
)

#: Predictor names in Figure 4's legend order.
APPROACHES = ("MAIN", "CRIT", "RPPM")


@dataclass(frozen=True)
class WorkloadAccuracy:
    """Signed relative error of each approach on one benchmark."""

    benchmark: str
    suite: str
    simulated_cycles: float
    predicted_cycles: Dict[str, float]

    def error(self, approach: str) -> float:
        """Signed relative error (positive = over-estimation)."""
        return (
            self.predicted_cycles[approach] / self.simulated_cycles - 1.0
        )

    def abs_error(self, approach: str) -> float:
        return abs(self.error(approach))


@dataclass
class Figure4Result:
    """Per-benchmark accuracy plus suite aggregates."""

    rows: List[WorkloadAccuracy]
    config: str

    def average_abs_error(self, approach: str) -> float:
        return float(
            np.mean([r.abs_error(approach) for r in self.rows])
        )

    def max_abs_error(self, approach: str) -> float:
        return float(max(r.abs_error(approach) for r in self.rows))

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {
            a: {
                "average": self.average_abs_error(a),
                "max": self.max_abs_error(a),
            }
            for a in APPROACHES
        }


def run_workload_accuracy(
    ref: BenchmarkRef, config: MulticoreConfig, cache: RunCache
) -> WorkloadAccuracy:
    """Accuracy of all three approaches on one benchmark."""
    profile = cache.profile(ref)
    sim = cache.simulation(ref, config)
    rppm = cache.prediction(ref, config)
    return WorkloadAccuracy(
        benchmark=ref.name,
        suite=ref.suite,
        simulated_cycles=sim.total_cycles,
        predicted_cycles={
            "MAIN": predict_main(profile, config),
            "CRIT": predict_crit(profile, config),
            "RPPM": rppm.total_cycles,
        },
    )


def run_figure4(
    benchmarks: Optional[Sequence[BenchmarkRef]] = None,
    config: Optional[MulticoreConfig] = None,
    cache: Optional[RunCache] = None,
    jobs: Optional[int] = None,
) -> Figure4Result:
    """The full Figure 4 sweep on the base quad-core configuration.

    Profiling and simulation fan out over ``jobs`` worker processes
    (default: CPU count) through the shared cache's prefetch pipeline;
    the per-benchmark rows then assemble from cache hits.
    """
    benchmarks = list(benchmarks) if benchmarks else full_suite()
    config = config or table_iv_config("base")
    cache = cache or shared_cache()
    cache.prefetch(
        benchmarks, configs=(config,), workers=jobs, simulate=True
    )
    rows = [
        run_workload_accuracy(ref, config, cache) for ref in benchmarks
    ]
    return Figure4Result(rows=rows, config=config.name)


def render_figure4(result: Figure4Result) -> str:
    """Figure 4 as a printable per-benchmark error table."""
    lines = [
        f"Prediction error vs simulation ({result.config} config)",
        f"{'benchmark':>22s}  {'MAIN':>8s}  {'CRIT':>8s}  {'RPPM':>8s}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.suite + '.' + row.benchmark:>22s}  "
            + "  ".join(f"{row.error(a):>+8.1%}" for a in APPROACHES)
        )
    lines.append("-" * len(lines[1]))
    for stat in ("average", "max"):
        summary = result.summary()
        lines.append(
            f"{stat:>22s}  "
            + "  ".join(f"{summary[a][stat]:>8.1%}" for a in APPROACHES)
        )
    return "\n".join(lines)
