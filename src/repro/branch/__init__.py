"""Branch prediction: entropy-based analytical model + real predictor.

:mod:`repro.branch.entropy_model` maps the profiler's
microarchitecture-independent entropy floors to a concrete predictor
configuration's miss rate (De Pestel et al. [10]); it is what Eq. 1's
``m_bpred`` uses.  :mod:`repro.branch.predictors` is a real tournament
predictor with tables and counters, used by the reference simulator —
the two disagree exactly the way the paper's model and Sniper disagree.
"""

from repro.branch.entropy_model import predict_miss_rate
from repro.branch.predictors import TournamentPredictor

__all__ = ["predict_miss_rate", "TournamentPredictor"]
