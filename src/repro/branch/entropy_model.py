"""Entropy-based branch misprediction prediction (De Pestel et al. [10]).

The profile records, per pool, the achievable misprediction rate of an
ideal (PC, history) majority predictor at several history depths (see
:mod:`repro.profiler.branchprof`: the max of the in-sample entropy
floor and a cross-validated estimate that charges training and
generalization costs).  A concrete tournament predictor is modeled in
three steps:

1. **Information**: the predictor chooses per branch between a per-PC
   bimodal component (history depth 0) and a global-history component
   (depth = its history bits); an ideal chooser achieves
   ``min(floor(0), floor(h))``.  Real choosers are imperfect: we blend
   a small fraction of the worse component in.
2. **Hysteresis**: two-bit saturating counters lose a little accuracy
   relative to a majority oracle on alternating contexts; a small
   multiplicative penalty accounts for it.
3. **Aliasing**: with ``E`` two-bit-counter entries per table and ``C``
   learnable contexts, contexts colliding in the table mispredict at
   chance-level rates.  We model the collision probability with the
   standard balls-in-bins estimate.
"""

from __future__ import annotations

import math

from repro.arch.config import BranchPredictorConfig
from repro.profiler.profile import BranchStats

#: Fraction of dynamic branches for which the real (non-ideal) chooser
#: picks the worse component.
_CHOOSER_LOSS = 0.08
#: Multiplicative accuracy loss of two-bit counters vs a majority oracle.
_HYSTERESIS = 1.10
#: Miss probability of a context that lost its table entry to aliasing.
_ALIAS_MISS = 0.35


def _collision_fraction(contexts: float, entries: int) -> float:
    """Probability that a context shares a table entry with another.

    Balls-in-bins: with ``C`` contexts hashed into ``E`` entries, the
    expected fraction of contexts that do *not* own a private entry is
    ``1 - (E/C) * (1 - (1 - 1/E)^C)`` — approximated with the
    exponential form for numerical stability.
    """
    if contexts <= 1 or entries <= 0:
        return 0.0
    occupied = entries * (1.0 - math.exp(-contexts / entries))
    return max(0.0, 1.0 - occupied / contexts)


def predict_miss_rate(
    stats: BranchStats, config: BranchPredictorConfig
) -> float:
    """Predicted misprediction rate of ``config`` on a pool's branches."""
    if stats.n_branches == 0:
        return 0.0
    entries = config.entries_per_table
    depth = float(config.history_bits)

    floor_bimodal = stats.floor_at(0.0)
    floor_gshare = stats.floor_at(depth)
    ideal = min(floor_bimodal, floor_gshare)
    worse = max(floor_bimodal, floor_gshare)
    informed = (ideal + _CHOOSER_LOSS * (worse - ideal)) * _HYSTERESIS

    # Aliasing: the tournament needs one counter per learnable context
    # in whichever component it relies on; the cheaper component bounds
    # the pressure.
    ctx_gshare = stats.contexts_at(depth)
    ctx_bimodal = float(stats.n_static)
    collide = min(
        _collision_fraction(ctx_gshare, entries),
        _collision_fraction(ctx_bimodal, entries),
    )
    aliased = informed + collide * max(0.0, _ALIAS_MISS - informed)
    return float(min(aliased, 0.5))
