"""A real tournament branch predictor (the simulator's, Table IV).

Alpha-21264-style organisation: a per-PC bimodal table, a gshare table
(global history XOR PC) and a chooser table updated towards whichever
component was right.  All three tables hold two-bit saturating
counters and share the configured storage budget.

This predictor consumes the *actual* branch outcome stream during
simulation; the analytical model never sees it — it works from entropy
statistics alone, mirroring the paper's split between Sniper and RPPM.
"""

from __future__ import annotations

import numpy as np

from repro.arch.config import BranchPredictorConfig


class TournamentPredictor:
    """Stateful tournament predictor operating on (pc, outcome) pairs."""

    def __init__(self, config: BranchPredictorConfig):
        self.config = config
        entries = config.entries_per_table
        self._mask = entries - 1
        self._hist_mask = (1 << config.history_bits) - 1
        # Counters start weakly not-taken / no preference.
        self.bimodal = np.ones(entries, dtype=np.int8)
        self.gshare = np.ones(entries, dtype=np.int8)
        self.chooser = np.ones(entries, dtype=np.int8)
        self.history = 0
        self._max = (1 << config.counter_bits) - 1
        self._thresh = 1 << (config.counter_bits - 1)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict branch at ``pc``; train on ``taken``; return hit."""
        bi = pc & self._mask
        gi = (pc ^ self.history) & self._mask
        ci = pc & self._mask
        b_pred = self.bimodal[bi] >= self._thresh
        g_pred = self.gshare[gi] >= self._thresh
        use_gshare = self.chooser[ci] >= self._thresh
        pred = g_pred if use_gshare else b_pred

        # Train components.
        if taken:
            if self.bimodal[bi] < self._max:
                self.bimodal[bi] += 1
            if self.gshare[gi] < self._max:
                self.gshare[gi] += 1
        else:
            if self.bimodal[bi] > 0:
                self.bimodal[bi] -= 1
            if self.gshare[gi] > 0:
                self.gshare[gi] -= 1
        # Train chooser towards the component that was right.
        if b_pred != g_pred:
            if g_pred == taken:
                if self.chooser[ci] < self._max:
                    self.chooser[ci] += 1
            else:
                if self.chooser[ci] > 0:
                    self.chooser[ci] -= 1
        self.history = ((self.history << 1) | int(taken)) & self._hist_mask
        return pred == taken

    def run(self, pcs: np.ndarray, taken: np.ndarray) -> np.ndarray:
        """Process a stream; returns a boolean mispredict mask.

        The hot path of the simulator: local-variable binding and plain
        Python ints keep the per-branch cost low.
        """
        n = len(pcs)
        miss = np.zeros(n, dtype=bool)
        bimodal = self.bimodal
        gshare = self.gshare
        chooser = self.chooser
        mask = self._mask
        hist_mask = self._hist_mask
        history = self.history
        cmax = self._max
        thresh = self._thresh
        pcs_l = pcs.tolist()
        taken_l = taken.tolist()
        for i in range(n):
            pc = pcs_l[i]
            t = taken_l[i]
            bi = pc & mask
            gi = (pc ^ history) & mask
            b_ctr = bimodal[bi]
            g_ctr = gshare[gi]
            b_pred = b_ctr >= thresh
            g_pred = g_ctr >= thresh
            pred = g_pred if chooser[bi] >= thresh else b_pred
            if t:
                if b_ctr < cmax:
                    bimodal[bi] = b_ctr + 1
                if g_ctr < cmax:
                    gshare[gi] = g_ctr + 1
                if pred != True:  # noqa: E712 - hot path, avoid bool cast
                    miss[i] = True
            else:
                if b_ctr > 0:
                    bimodal[bi] = b_ctr - 1
                if g_ctr > 0:
                    gshare[gi] = g_ctr - 1
                if pred != False:  # noqa: E712
                    miss[i] = True
            if b_pred != g_pred:
                c = chooser[bi]
                if g_pred == bool(t):
                    if c < cmax:
                        chooser[bi] = c + 1
                elif c > 0:
                    chooser[bi] = c - 1
            history = ((history << 1) | t) & hist_mask
        self.history = history
        return miss

    @property
    def miss_rate_state(self) -> dict:
        """Lightweight introspection snapshot (tests/diagnostics)."""
        return {
            "history": self.history,
            "bimodal_mean": float(self.bimodal.mean()),
            "gshare_mean": float(self.gshare.mean()),
            "chooser_mean": float(self.chooser.mean()),
        }
