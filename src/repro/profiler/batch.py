"""Whole-trace batch reuse-distance engine.

:func:`repro.profiler.profiler.profile_workload` records the chunk
interleaving produced by the functional replay and hands the complete
access stream to this module, which computes every pool's
reuse-distance statistics in O(N log N) *total* array work — instead of
paying dozens of NumPy dispatches per (often small) chunk, the whole
workload costs one unique-key sort, one cumulative sum for coherence
and a handful of per-pool bincount scatters.

The math mirrors the incremental collectors exactly (and is checked
bit-for-bit against :mod:`repro.profiler.reference`):

* Let ``g`` be the position of an access in the interleaved stream
  (the collector's ``global_seq``) and ``c`` its thread-local counter.
* **View A** sorts accesses by ``(line, g)``.  Within a line's group,
  consecutive entries are global reuse pairs (``rd = g2 - g1 - 1``);
  group heads are global cold misses.
* **Private pairs** need no second sort: a thread's subsequence of
  view A is still grouped by line with ``g`` ascending inside each
  group, so consecutive same-line entries of the subsequence are that
  thread's private reuse pairs (``rd = c2 - c1 - 1``).
* **Coherence**: a private pair is invalidated iff *any* store to the
  line falls strictly between its endpoints (such a store is
  necessarily foreign — the thread's own store would be an access
  between two consecutive accesses — and then the scalar collector's
  ``last_write`` is newer than the earlier endpoint and from another
  thread).  A single cumulative sum of store flags in view-A order
  answers that interval query with two gathers per pair.

Pool attribution: every access carries the index of its (thread, code
region) pool; reuse pairs belong to the pool of their *later* access.
Per-pool histogram accumulation packs ``pool * NBINS + bin`` into one
``np.bincount``.  All counts are integers, so float64 accumulation is
exact and order-independent.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.profiler.histogram import NBINS, RDHistogram, _bin_indices
from repro.profiler.locality import PoolLocality

#: A recorded data-access chunk: (tid, pool index, addrs, stores).
DataChunk = Tuple[int, int, np.ndarray, np.ndarray]


def _group_sort(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sort stream positions so ``values`` ascend, stably.

    Returns ``(pos_sorted, group_keys)`` — the whole-stream analogue of
    :func:`repro.profiler.locality._group_by_line`: a single unique-key
    quicksort of ``(value - min) << shift | position`` when the value
    range permits.  ``group_keys`` ascend and change exactly at value
    boundaries, but are only meaningful for *equality* comparison (the
    fallback path returns dense group ids, not the values).
    """
    n = len(values)
    shift = max(1, (n - 1).bit_length())
    base = values.min()
    rel = values - base
    if int(rel.max()) >> (62 - shift) == 0:
        key = np.sort((rel << shift) | np.arange(n, dtype=np.int64))
        # group_keys stay base-relative: equality is all callers need.
        return key & ((1 << shift) - 1), key >> shift
    # Value range too wide to pack: group with an unstable quicksort,
    # then stabilize by sorting the dense (group, position) pack —
    # two cheap quicksorts still beat one stable argsort.  The second
    # component returned is the dense group id, not the value: callers
    # only compare it for equality.
    order = np.argsort(values)
    vs = values[order]
    first = np.empty(n, dtype=bool)
    first[0] = True
    first[1:] = vs[1:] != vs[:-1]
    gid = np.cumsum(first) - 1
    key = np.sort((gid << shift) | order)
    return key & ((1 << shift) - 1), key >> shift


def _per_pool_bincount(
    pool_of: np.ndarray, bins: np.ndarray, n_pools: int
) -> np.ndarray:
    """(n_pools, NBINS) histogram-count matrix for binned distances."""
    combined = pool_of * NBINS + bins
    flat = np.bincount(combined, minlength=n_pools * NBINS)
    return flat.reshape(n_pools, NBINS).astype(np.float64)


def replay_data(
    chunks: Sequence[DataChunk],
    n_threads: int,
    pools: Sequence[PoolLocality],
) -> None:
    """Replay a complete interleaved data-access stream into ``pools``.

    ``chunks`` is the exact order in which the scheduler executed the
    per-thread chunks; each entry references the pool (by index into
    ``pools``) that accumulates its statistics.
    """
    chunks = [ch for ch in chunks if len(ch[2])]
    if not chunks:
        return
    lens = np.array([len(ch[2]) for ch in chunks], dtype=np.int64)
    addr = np.concatenate([ch[2] for ch in chunks]).astype(
        np.int64, copy=False
    )
    store = np.concatenate([ch[3] for ch in chunks]).astype(
        bool, copy=False
    )
    n = len(addr)
    n_pools = len(pools)

    # Per-access thread id, pool index and thread-local counter.  The
    # global position g is simply the stream index; c differs from g by
    # a per-chunk offset known from the schedule.  Per-pool access
    # totals fall out of the same chunk walk.
    tidvec = np.repeat(
        np.array([ch[0] for ch in chunks], dtype=np.int16), lens
    )
    poolvec = np.repeat(
        np.array([ch[1] for ch in chunks], dtype=np.int32), lens
    )
    g0 = np.concatenate([[0], np.cumsum(lens)[:-1]])
    c0 = np.zeros(len(chunks), dtype=np.int64)
    counters = [0] * n_threads
    acc_cnt = [0] * n_pools
    for k, (tid, pidx, a, _s) in enumerate(chunks):
        c0[k] = counters[tid]
        counters[tid] += len(a)
        acc_cnt[pidx] += len(a)
    cvec = np.arange(n, dtype=np.int64) - np.repeat(g0 - c0, lens)

    # ---- view A: sort by (line, g); everything below stays in this
    # order, so no stream-order scatters are needed. -----------------
    pos_a, line_a = _group_sort(addr)
    within = line_a[1:] == line_a[:-1]
    tid_a = tidvec[pos_a]
    pv_a = poolvec[pos_a]
    cvec_a = cvec[pos_a]

    # Global reuse pairs: adjacent entries of a line group.  Cold
    # misses are derived per pool at the end (every access is either a
    # group head, i.e. cold, or a pair's later element).
    adj = pos_a[1:] - pos_a[:-1]
    rd_g = adj[within] - 1
    pools_g = pv_a[1:][within]

    # Coherence state: a private reuse pair (p_i, p_j) of thread t is
    # invalidated iff *any* store to the line falls strictly between
    # its endpoints.  (Such a store is necessarily by another thread —
    # t's own store to the line would itself be an access by t between
    # two consecutive accesses of t to that line — and the scalar
    # collector's "last write before p_j" is then inside (p_i, p_j),
    # newer than p_i and foreign; conversely a last write at or before
    # p_i never invalidates.)  A view-A slot interval holds exactly the
    # line's accesses in the stream interval, so one global cumsum of
    # the store flags answers the "any store strictly between" query
    # with two gathers per pair.
    scnt = (
        np.cumsum(store[pos_a], dtype=np.int32)
        if store.any() else None
    )

    # ---- private pairs, one thread at a time ----------------------
    # A thread's subsequence of view A is grouped by line with g still
    # ascending inside each group — exactly the (line, tid, g) view —
    # so a second sort is unnecessary.
    rd_parts: List[np.ndarray] = [rd_g]
    pool_parts: List[np.ndarray] = [pools_g]
    inval_cnt = np.zeros(n_pools, dtype=np.int64)
    for t in range(n_threads):
        sel = np.flatnonzero(tid_a == t)
        if len(sel) < 2:
            continue
        sl = line_a[sel]
        w = sl[1:] == sl[:-1]
        if not w.any():
            continue
        pv = pv_a[sel]
        pools_p = pv[1:][w]
        cv = cvec_a[sel]
        rd_p = cv[1:][w] - cv[:-1][w] - 1
        if scnt is not None:
            sj = sel[1:][w]
            si = sel[:-1][w]
            # Stores among view-A slots (si, sj) exclusive: the slot at
            # sj (the reuse itself) must not count, the one at si is
            # t's own access.
            inval = scnt[sj - 1] > scnt[si]
            if inval.any():
                inval_cnt += np.bincount(
                    pools_p[inval], minlength=n_pools
                )
                keep = ~inval
                rd_p = rd_p[keep]
                pools_p = pools_p[keep]
        if len(rd_p):
            rd_parts.append(rd_p)
            # Offset private pools into the upper half of the fused
            # per-pool bincount below.
            pool_parts.append(pools_p + n_pools)

    # ---- fused binning and pool accumulation ----------------------
    rd_all = np.concatenate(rd_parts)
    if len(rd_all):
        pk_all = np.concatenate(pool_parts)
        mat = np.bincount(
            pk_all * NBINS + _bin_indices(rd_all),
            minlength=2 * n_pools * NBINS,
        ).reshape(2 * n_pools, NBINS)
    else:
        mat = np.zeros((2 * n_pools, NBINS), dtype=np.int64)
    glob_mat = mat[:n_pools]
    priv_mat = mat[n_pools:]
    glob_pairs = glob_mat.sum(axis=1)
    priv_pairs = priv_mat.sum(axis=1)
    store_cnt = np.bincount(poolvec[store], minlength=n_pools)
    for p, pool in enumerate(pools):
        pool.glob_cold += acc_cnt[p] - int(glob_pairs[p])
        pool.priv_cold += (
            acc_cnt[p] - int(priv_pairs[p]) - int(inval_cnt[p])
        )
        pool.priv_inval += int(inval_cnt[p])
        pool.n_accesses += acc_cnt[p]
        pool.n_stores += int(store_cnt[p])
        pool.glob_counts += glob_mat[p]
        pool.priv_counts += priv_mat[p]


def replay_fetch(
    chunks: Sequence[Tuple[int, np.ndarray]],
    hists: Sequence[RDHistogram],
) -> None:
    """Replay one thread's complete fetch stream into its pools.

    ``chunks`` holds (pool index, fetch lines) in execution order;
    fetch streams are per-thread and read-only, so this is the
    single-stream specialization of :func:`replay_data` — one grouping
    sort, no coherence pass.
    """
    chunks = [ch for ch in chunks if len(ch[1])]
    if not chunks:
        return
    lens = np.array([len(ch[1]) for ch in chunks], dtype=np.int64)
    lines = np.concatenate([ch[1] for ch in chunks]).astype(
        np.int64, copy=False
    )
    poolvec = np.repeat(
        np.array([ch[0] for ch in chunks], dtype=np.int64), lens
    )
    n_pools = len(hists)
    acc_cnt = [0] * n_pools
    for pidx, ls in chunks:
        acc_cnt[pidx] += len(ls)

    pos, line_sorted = _group_sort(lines)
    within = line_sorted[1:] == line_sorted[:-1]
    p_j = pos[1:][within]
    mat = None
    pairs = np.zeros(n_pools)
    if len(p_j):
        rd = p_j - pos[:-1][within] - 1
        mat = _per_pool_bincount(poolvec[p_j], _bin_indices(rd), n_pools)
        pairs = mat.sum(axis=1)
    for p, hist in enumerate(hists):
        hist.cold += acc_cnt[p] - int(pairs[p])
        if mat is not None:
            hist.counts += mat[p]
