"""Fused flat-grid ILP scoreboard engine.

:func:`repro.profiler.ilp.scoreboard_replay` advances a dependence
scoreboard one op at a time, once per (sample, window, load-latency)
grid point — O(samples x windows x lats x len) Python-level steps, the
dominant profiling cost after the reuse-distance engine was vectorized.
This module stacks all micro-trace samples into lockstep arrays and
advances the *same* recurrence one instruction-step at a time across
the whole (samples x windows x lats) grid simultaneously, so the
Python loop is O(width) total:

* ``comp[i]  = max(commit[i - W], comp[i - dep[i]]) + lat[i]``
  evaluated as one flat-grid array step,
* ``commit[i] = max(commit[i - 1], comp[i])`` as a running maximum,
* the branch backward-slice load counts and the per-window load-chain
  depths of :func:`repro.profiler.ilp.load_parallelism` ride along in
  the same pass, so one loop yields the full
  :class:`~repro.profiler.profile.ILPTable`.

The kernel is *fused*: the (sample, window, latency) axes are kept as
one contiguous grid, every gather (producer completion, window
dispatch, slice loads, chain depth) is a single ``np.take`` driven by
index tables precomputed once per batch, invalid/out-of-reach lookups
are redirected to an all-zero sentinel row instead of masked with
``np.where``, and every per-step result lands in a preallocated
scratch row (``out=`` throughout) — :data:`DISPATCHES_PER_STEP` NumPy
dispatches per instruction step and **zero per-step allocations**
(regression-tested).  Chunk flushes and branch accumulation are
integer-valued, so they move out of the loop entirely and are reduced
exactly after it.

On top of the kernel, :func:`batch_scoreboard_pools` mega-batches an
entire suite: the samples of *many* pools are stacked into one
lockstep grid per width bucket (power-of-two widths bound padding
waste below 2x), so the Python-level loop is paid once per bucket
rather than once per pool.  ``profile_workload`` and
:class:`ILPTableCache` misses route through it, and the per-op-latency
prediction path (:func:`batch_hierarchy_ilp`) reuses the same fused
kernel with the auxiliary outputs disabled.

Samples of unequal length are padded with no-ops; every per-sample
readout (makespan, branch counts, chunk flushes) indexes the true
length, so padding never leaks into results and a sample's row is
independent of what it is batched with.  All arithmetic is the same
float64 max/add sequence as the scalar spec, in the same per-element
order, so tables agree to float64 exactness (tested against
:func:`repro.profiler.ilp.scoreboard_replay`, the preserved executable
spec, and pinned bit-identical across arbitrary bucketings).

Because the profiling grid is microarchitecture-*independent*, the
tables are also memoized: :class:`ILPTableCache` keys a pool's table
by a content digest of its samples and grids (in-process dict backed
by the on-disk :class:`~repro.experiments.store.ProfileStore`), so
design-space sweeps never rebuild a table for dependence structure
they have already profiled.  The digest is bucketing-independent, so
tables persisted before the fused kernel stay valid.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import span
from repro.profiler.ilp import (
    CANONICAL_LAT,
    LOAD_LAT_GRID,
    WINDOW_GRID,
)
from repro.profiler.profile import ILPTable
from repro.workloads.ir import OP_BRANCH, OP_LOAD

#: One micro-trace sample: (op codes, backward dependence distances).
Sample = Tuple[np.ndarray, np.ndarray]

#: NumPy dispatches per instruction step in the fused ILP recurrence
#: (ready gather, dispatch gather, max, latency add, commit max).
CORE_DISPATCHES_PER_STEP = 5
#: Extra dispatches when the auxiliary branch-slice / load-chain
#: outputs are on (per history: sentinel gather, reach mask multiply,
#: load-increment add).
AUX_DISPATCHES_PER_STEP = 6
#: Total per-step dispatches of a full-table advance.
DISPATCHES_PER_STEP = CORE_DISPATCHES_PER_STEP + AUX_DISPATCHES_PER_STEP


class KernelStats:
    """Process-wide fused-kernel counters (monotonic, thread-safe).

    Surfaced by the serving subsystem's ``/healthz`` and diffed by the
    bench harness for the ``kernel`` section of ``BENCH_profiler.json``
    — the observability face of the mega-batching trajectory.
    """

    _FIELDS = (
        "pools", "samples", "buckets", "batches", "steps",
        "dispatches", "grid_slots", "occupied_slots",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def record_batch(
        self, samples: int, steps: int, occupied: int, aux: bool
    ) -> None:
        per_step = DISPATCHES_PER_STEP if aux else CORE_DISPATCHES_PER_STEP
        with self._lock:
            self.samples += samples
            self.batches += 1
            self.steps += steps
            self.dispatches += steps * per_step
            self.grid_slots += samples * steps
            self.occupied_slots += occupied

    def record_pools(self, pools: int, buckets: int) -> None:
        with self._lock:
            self.pools += pools
            self.buckets += buckets

    def snapshot(self) -> Dict[str, float]:
        """Counter snapshot plus the derived bucket fill ratio."""
        with self._lock:
            out: Dict[str, float] = {
                name: getattr(self, name) for name in self._FIELDS
            }
        out["bucket_fill"] = (
            out["occupied_slots"] / out["grid_slots"]
            if out["grid_slots"] else 1.0
        )
        return out


#: The process-wide counter instance every kernel entry point feeds.
KERNEL_STATS = KernelStats()


class _Workspace:
    """Reusable buffers and static tables for one fused-grid shape.

    Everything that depends only on the grid *shape* — the history
    buffers, the dispatch index table, per-step scratch, and the
    per-step row views the loop walks — is built once and reused;
    per-call content (producer rows, reach/chunk masks, latencies) is
    recomputed into preallocated buffers.  Every history row is fully
    overwritten at its step before any gather reads it, so the
    histories never need wholesale zeroing — only the gather sentinel
    row and the running-max seed row are cleared per run.  Workspaces
    are cached per thread (keyed by grid shape and window grid), so
    repeated same-shape advances — the bench loop, serving cold
    paths, per-bucket suite replays — skip the allocation, the
    first-touch page faults and the index-table construction of
    ~100s of MB of state.
    """

    __slots__ = (
        "key", "nbytes", "steps", "comp", "commit", "disp_buf",
        "slice_hist", "chain_hist", "comp2d", "commit_cells",
        "slice2d", "chain2d", "prod_rows", "valid_t", "bool_ns",
        "lat_steps", "disp_idx", "imod", "reach", "chunk", "bool3",
        "load_step", "comp_rows", "comp_grids", "commit_rows",
        "lat_rows", "prod_list", "disp_list", "reach_list",
        "chunk_list", "srow_list", "hrow_list", "load_list",
    )

    #: Attributes owning distinct array storage (views excluded).
    _BUFFERS = (
        "comp", "commit", "disp_buf", "slice_hist", "chain_hist",
        "prod_rows", "valid_t", "bool_ns", "lat_steps", "disp_idx",
        "imod", "reach", "chunk", "bool3", "load_step",
    )

    def __init__(self, key: tuple) -> None:
        n, s, w, lats, aux, windows = key
        self.key = key
        w_arr = np.asarray(windows, dtype=np.int64)
        steps = np.arange(n, dtype=np.int64)
        self.steps = steps

        # Histories: (N + 1, S, grid...) rows; row N is the all-zero
        # gather sentinel, commit row 0 the pre-step running max.
        self.comp = np.empty((n + 1, s, w, lats))
        self.commit = np.empty((n + 1, s, w, lats))
        self.comp2d = self.comp.reshape((n + 1) * s, w * lats)
        self.commit_cells = self.commit.reshape((n + 1) * s * w, lats)
        self.disp_buf = np.empty((s, w, lats))

        # Dispatch index table: static — commit row i - w + 1 (row 0
        # while the window has not filled), at cell (row, s, w).
        open_rows = np.where(
            steps[:, None] >= w_arr[None, :],
            steps[:, None] - w_arr[None, :] + 1,
            0,
        )
        base_sw = np.arange(s, dtype=np.int64)[:, None] * w + np.arange(
            w, dtype=np.int64
        )
        self.disp_idx = (
            open_rows[:, None, :] * (s * w) + base_sw
        ).astype(np.intp, copy=False)  # (N, S, W)

        # Per-call content buffers.
        self.prod_rows = np.empty((n, s), dtype=np.intp)
        self.valid_t = np.empty((n, s), dtype=bool)
        self.bool_ns = np.empty((n, s), dtype=bool)
        self.lat_steps = np.empty((n, s, 1, lats))

        if aux:
            self.slice_hist = np.empty((n + 1, s, w))
            self.chain_hist = np.empty((n + 1, s, w))
            self.slice2d = self.slice_hist.reshape((n + 1) * s, w)
            self.chain2d = self.chain_hist.reshape((n + 1) * s, w)
            self.imod = steps[:, None] % w_arr[None, :]  # (N, W)
            self.reach = np.empty((n, s, w))
            self.chunk = np.empty((n, s, w))
            self.bool3 = np.empty((n, s, w), dtype=bool)
            self.load_step = np.empty((n, s, 1))
        else:
            self.slice_hist = self.chain_hist = None
            self.slice2d = self.chain2d = None
            self.imod = self.reach = self.chunk = None
            self.bool3 = self.load_step = None

        self.nbytes = sum(
            buf.nbytes
            for name in self._BUFFERS
            if (buf := getattr(self, name)) is not None
        )

        # Per-step row views, materialized once: the loop body then
        # performs no indexing-driven allocation at all.
        self.comp_rows = [
            self.comp[i].reshape(s, w * lats) for i in range(n)
        ]
        self.comp_grids = list(self.comp[:n])
        self.commit_rows = list(self.commit)
        self.lat_rows = list(self.lat_steps)
        self.prod_list = list(self.prod_rows)
        self.disp_list = list(self.disp_idx)
        if aux:
            self.reach_list = list(self.reach)
            self.chunk_list = list(self.chunk)
            self.srow_list = list(self.slice_hist[:n])
            self.hrow_list = list(self.chain_hist[:n])
            self.load_list = list(self.load_step)

    def reset(self) -> None:
        n = self.key[0]
        self.comp[n] = 0.0
        self.commit[0] = 0.0
        if self.slice_hist is not None:
            self.slice_hist[n] = 0.0
            self.chain_hist[n] = 0.0


_TLS = threading.local()
#: Workspaces kept per thread — covers a suite's width buckets plus
#: the aux=False prediction grid without thrashing.
_WORKSPACE_SLOTS = 6
#: Byte budget per thread for cached workspaces: a full-suite grid is
#: ~250 MB, so two large shapes plus change fit; a long-lived serving
#: worker that once profiled a huge workload does not pin gigabytes.
_WORKSPACE_MAX_BYTES = 768 * 2**20


def _workspace(
    n: int, s: int, w: int, lats: int, aux: bool, windows: tuple
) -> _Workspace:
    key = (n, s, w, lats, aux, windows)
    cache: Optional[dict] = getattr(_TLS, "ws", None)
    if cache is None:
        cache = _TLS.ws = {}
    ws = cache.pop(key, None)
    if ws is None:
        ws = _Workspace(key)
        if ws.nbytes > _WORKSPACE_MAX_BYTES:
            # Larger than the whole budget: use once, never pin.
            ws.reset()
            return ws
        total = sum(other.nbytes for other in cache.values())
        while cache and (
            len(cache) >= _WORKSPACE_SLOTS
            or total + ws.nbytes > _WORKSPACE_MAX_BYTES
        ):
            total -= cache.pop(next(iter(cache))).nbytes  # true LRU
    cache[key] = ws  # (re-)insert at the fresh end
    ws.reset()
    return ws


def stack_samples(
    samples: Sequence[Sample],
    width: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad samples into lockstep ``(op, dep, lengths)`` arrays.

    Padding entries are no-ops (``op=0, dep=0``): they never produce
    loads, branches or valid dependences, and every readout below is
    gated on ``lengths``.  ``width`` pads to a caller-chosen grid
    width (the mega-batcher's bucket width) instead of the natural
    ``max(lengths)``; it must cover the longest sample.
    """
    n_samples = len(samples)
    lengths = np.array(
        [len(o) for o, _ in samples], dtype=np.int64
    ).reshape(n_samples)
    natural = int(lengths.max()) if n_samples else 0
    if width is None:
        width = natural
    elif width < natural:
        raise ValueError(
            f"stack width {width} below longest sample {natural}"
        )
    op = np.zeros((n_samples, width), dtype=np.int64)
    dep = np.zeros((n_samples, width), dtype=np.int64)
    for s, (o, d) in enumerate(samples):
        op[s, : lengths[s]] = np.asarray(o, dtype=np.int64)
        dep[s, : lengths[s]] = np.asarray(d, dtype=np.int64)
    return op, dep, lengths


def grid_latencies(
    op: np.ndarray, load_lats: Sequence[float]
) -> np.ndarray:
    """Per-op latencies for every grid latency: shape (S, N, L).

    Non-load classes take their canonical latency on every grid point;
    loads take the grid value.
    """
    canon = np.asarray(CANONICAL_LAT, dtype=np.float64)
    lat = np.repeat(
        canon[op][:, :, None], max(len(load_lats), 1), axis=2
    )
    lat[op == OP_LOAD] = np.asarray(load_lats, dtype=np.float64)
    return lat


def batch_scoreboard(
    op: np.ndarray,
    dep: np.ndarray,
    lengths: np.ndarray,
    windows: Sequence[int],
    lat: np.ndarray,
    aux: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Advance the scoreboard recurrence for all grid points at once.

    Parameters mirror :func:`stack_samples` / :func:`grid_latencies`;
    ``lat`` has shape (S, N, L) where L is the latency-grid axis (1 for
    the per-op-latency prediction path).  With ``aux=False`` the
    branch-slice and load-chain bookkeeping is skipped entirely
    (placeholder zeros / ones are returned) — the per-op-latency
    prediction path only consumes the ILP grid.

    Returns ``(ilp, branch_loads, load_par)`` with shapes
    (S, W, L), (S, W) and (S, W) — per-sample values, aggregated by the
    caller exactly as the scalar :func:`~repro.profiler.ilp.
    build_ilp_table` aggregates its per-sample replays.

    The advance is the fused flat-grid kernel described in the module
    docstring: index tables are built once per batch, the O(width)
    loop issues :data:`DISPATCHES_PER_STEP` contiguous NumPy ops per
    step into preallocated scratch rows, and allocates nothing.
    """
    n_samples, width = op.shape
    w_arr = np.asarray(windows, dtype=np.int64)
    n_windows = len(w_arr)
    if lat.ndim == 2:
        lat = lat[:, :, None]
    n_lats = lat.shape[2]
    if n_samples == 0 or width == 0:
        return (
            np.ones((n_samples, n_windows, n_lats)),
            np.zeros((n_samples, n_windows)),
            np.ones((n_samples, n_windows)),
        )
    S, N, W, L = n_samples, width, n_windows, n_lats

    is_load = op == OP_LOAD
    steps_sn = np.arange(N, dtype=np.int64)[None, :]
    in_range = steps_sn < lengths[:, None]
    is_branch = (op == OP_BRANCH) & in_range

    # -- workspace: histories, static tables, scratch (thread-local) ----
    ws = _workspace(N, S, W, L, aux, tuple(int(w) for w in w_arr))
    steps = ws.steps
    comp = ws.comp  # row N: gather sentinel
    commit = ws.commit  # row 0: pre-step running max
    disp_buf = ws.disp_buf

    # -- per-call content tables, computed into reused buffers ----------
    # Histories are laid out (N + 1, S, ...grid): element (r, s) is one
    # contiguous row of the per-sample grid, so a producer gather is S
    # row copies instead of S * W * L element picks — the gather is
    # bandwidth- not latency-bound.  Row N is the all-zero sentinel
    # that invalid producers are redirected to, replacing per-step
    # ``np.where`` masking.  One shared table serves the comp, slice
    # and chain gathers (their gates all imply a valid producer; the
    # per-window reach/chunk gates become exact {0, 1} mask
    # multiplies — every masked value is a finite non-negative count).
    dep_t = dep.T  # (N, S) view
    valid_t = ws.valid_t
    np.greater(dep_t, 0, out=valid_t)
    np.less_equal(dep_t, steps[:, None], out=ws.bool_ns)
    np.logical_and(valid_t, ws.bool_ns, out=valid_t)
    prod_rows = ws.prod_rows  # (N, S) history rows r * S + s
    np.subtract(steps[:, None], dep_t, out=prod_rows)
    np.logical_not(valid_t, out=ws.bool_ns)
    prod_rows[ws.bool_ns] = N
    np.multiply(prod_rows, S, out=prod_rows)
    np.add(prod_rows, np.arange(S, dtype=np.intp), out=prod_rows)

    np.copyto(
        ws.lat_steps, lat.transpose(1, 0, 2)[:, :, None, :]
    )  # (N, S, 1, L)

    if aux:
        dep3 = dep_t[:, :, None]  # (N, S, 1)
        bool3 = ws.bool3
        np.less_equal(dep3, w_arr[None, None, :], out=bool3)
        np.logical_and(bool3, valid_t[:, :, None], out=bool3)
        np.copyto(ws.reach, bool3)  # (N, S, W) float {0, 1}
        np.less_equal(dep3, ws.imod[:, None, :], out=bool3)
        np.logical_and(bool3, valid_t[:, :, None], out=bool3)
        np.copyto(ws.chunk, bool3)
        np.copyto(ws.load_step, is_load.T[:, :, None])

    # The loop walks per-step row views materialized in the workspace —
    # no indexing-driven allocation, only ``out=`` dispatches.  Bound
    # ``.take`` methods skip the ``np.take`` wrapper, measurable at
    # ~3.5k gathers per advance.
    comp_rows = ws.comp_rows
    comp_grids = ws.comp_grids
    commit_rows = ws.commit_rows
    lat_rows = ws.lat_rows
    prod_list = ws.prod_list
    disp_list = ws.disp_list
    take_comp = ws.comp2d.take
    take_commit = ws.commit_cells.take
    maximum, add, multiply = np.maximum, np.add, np.multiply
    if aux:
        slice_hist = ws.slice_hist
        chain_hist = ws.chain_hist
        reach_list = ws.reach_list
        chunk_list = ws.chunk_list
        srow_list = ws.srow_list
        hrow_list = ws.hrow_list
        load_list = ws.load_list
        take_slice = ws.slice2d.take
        take_chain = ws.chain2d.take

    for i in range(N):
        grid = comp_grids[i]
        # comp[i] = max(producer completion, dispatch bound) + latency
        take_comp(prod_list[i], axis=0, out=comp_rows[i], mode="clip")
        take_commit(disp_list[i], axis=0, out=disp_buf, mode="clip")
        maximum(grid, disp_buf, out=grid)
        add(grid, lat_rows[i], out=grid)
        # commit[i] = max(commit[i - 1], comp[i]) (in-order commit)
        maximum(commit_rows[i], grid, out=commit_rows[i + 1])
        if aux:
            srow = srow_list[i]
            take_slice(prod_list[i], axis=0, out=srow, mode="clip")
            multiply(srow, reach_list[i], out=srow)
            add(srow, load_list[i], out=srow)
            hrow = hrow_list[i]
            take_chain(prod_list[i], axis=0, out=hrow, mode="clip")
            multiply(hrow, chunk_list[i], out=hrow)
            add(hrow, load_list[i], out=hrow)

    KERNEL_STATS.record_batch(
        samples=S, steps=N, occupied=int(lengths.sum()), aux=aux
    )

    # -- per-sample readouts at true lengths ----------------------------
    s_idx = np.arange(S)
    makespan = commit[lengths, s_idx]  # (S, W, L)
    n_f = lengths.astype(np.float64)[:, None, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        ilp = np.where(makespan > 0, n_f / makespan, n_f)
    ilp = np.maximum(ilp, 1e-3)
    ilp[lengths == 0] = 1.0
    if not aux:
        return ilp, np.zeros((S, W)), np.ones((S, W))

    # Branch backward-slice load counts: every term is integer-valued,
    # so the exact per-step accumulation of the spec reduces to one
    # order-independent contraction after the loop.
    branch_count = is_branch.sum(axis=1).astype(np.float64)
    loads_sum = np.einsum(
        "isw,si->sw", slice_hist[:N], is_branch.astype(np.float64)
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        branch_loads = np.where(
            branch_count[:, None] > 0,
            loads_sum / branch_count[:, None],
            0.0,
        )

    # Load-chain depth per window chunk: the spec's per-chunk running
    # max becomes one exact segmented reduction per chunk boundary
    # (integer-valued sums), gated on the chunk starting in-sample.
    depth_sum = np.zeros((S, W))
    max_buf = np.empty(S)
    gate_buf = np.empty(S, dtype=bool)
    for wi in range(W):
        w = int(w_arr[wi])
        col = depth_sum[:, wi]
        for c0 in range(0, N, w):
            seg = chain_hist[c0:min(c0 + w, N), :, wi]
            np.max(seg, axis=0, out=max_buf)
            np.maximum(max_buf, 1.0, out=max_buf)
            np.less(c0, lengths, out=gate_buf)
            np.multiply(max_buf, gate_buf, out=max_buf)
            np.add(col, max_buf, out=col)

    total_loads = (is_load & in_range).sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        load_par = np.where(
            total_loads[:, None] > 0,
            np.maximum(1.0, total_loads[:, None] / depth_sum),
            1.0,
        )
    return ilp, branch_loads, load_par


def default_bucket_width(n: int) -> int:
    """Mega-batch width bucket for a sample of ``n`` ops.

    The smallest power of two covering ``n`` (floor 16): padding waste
    is bounded below 2x while the number of distinct lockstep grids —
    and with it the Python-loop count — stays logarithmic in the
    sample-length spread.
    """
    if n <= 16:
        return 16
    return 1 << (n - 1).bit_length()


def batch_scoreboard_pools(
    pool_samples: Sequence[Sequence[Sample]],
    windows: Sequence[int] = WINDOW_GRID,
    load_lats: Sequence[int] = LOAD_LAT_GRID,
    bucket_fn: Optional[Callable[[int], int]] = None,
) -> List[ILPTable]:
    """Suite-wide mega-batch: many pools, one fused advance per bucket.

    Every pool's samples are stacked into a single lockstep grid per
    width bucket (``bucket_fn`` maps a sample length to its grid
    width; default :func:`default_bucket_width`), so the per-step
    Python loop is paid once per bucket for the *whole suite* instead
    of once per pool — and short samples never pad out to the longest
    sample in the suite.

    Per-sample kernel rows are independent of their co-batched
    neighbours, and per-pool aggregation runs over the samples in
    their original order, so the returned tables are bit-identical to
    per-pool :func:`batch_scoreboard` runs for *any* bucketing
    (hypothesis-tested).
    """
    if bucket_fn is None:
        bucket_fn = default_bucket_width
    windows = tuple(windows)
    load_lats = tuple(load_lats)
    n_w, n_l = len(windows), len(load_lats)
    counts = [len(samples) for samples in pool_samples]
    flat = [smp for samples in pool_samples for smp in samples]
    n_total = len(flat)

    if n_total:
        all_ilp = np.empty((n_total, n_w, n_l))
        all_bl = np.empty((n_total, n_w))
        all_lp = np.empty((n_total, n_w))
        buckets: Dict[int, List[int]] = {}
        for gi, (o, _) in enumerate(flat):
            bw = int(bucket_fn(len(o)))
            if bw < len(o):
                raise ValueError(
                    f"bucket width {bw} below sample length {len(o)}"
                )
            buckets.setdefault(bw, []).append(gi)
        for bw in sorted(buckets):
            idxs = buckets[bw]
            op, dep, lengths = stack_samples(
                [flat[gi] for gi in idxs], width=bw
            )
            lat = grid_latencies(op, load_lats)
            ilp, bl, lp = batch_scoreboard(
                op, dep, lengths, windows, lat
            )
            all_ilp[idxs] = ilp
            all_bl[idxs] = bl
            all_lp[idxs] = lp
        KERNEL_STATS.record_pools(
            pools=sum(1 for c in counts if c), buckets=len(buckets)
        )

    tables: List[ILPTable] = []
    offset = 0
    for count in counts:
        if count == 0:
            tables.append(_empty_table(windows, load_lats))
            continue
        lo, hi = offset, offset + count
        offset = hi
        tables.append(_aggregate_table(
            all_ilp[lo:hi], all_bl[lo:hi], all_lp[lo:hi],
            windows, load_lats,
        ))
    return tables


def batch_hierarchy_ilp(
    samples: Sequence[Sample],
    window: int,
    per_op_lats: Sequence[np.ndarray],
) -> float:
    """Harmonic-mean ILP with per-load latencies, via the fused kernel.

    ``per_op_lats[s]`` carries sample ``s``'s per-op latency vector
    (only load positions are read — non-loads take canonical
    latencies, as in the scalar spec's per-op mode).  Only the ILP
    grid is consumed, so the kernel's auxiliary branch/chain pass is
    skipped (``aux=False``).
    """
    if not samples:
        return 1.0
    op, dep, lengths = stack_samples(samples)
    canon = np.asarray(CANONICAL_LAT, dtype=np.float64)
    lat = canon[op]
    for s, per_op in enumerate(per_op_lats):
        mask = op[s, : lengths[s]] == OP_LOAD
        lat[s, : lengths[s]][mask] = np.asarray(
            per_op, dtype=np.float64
        )[mask]
    ilp, _, _ = batch_scoreboard(
        op, dep, lengths, (window,), lat[:, :, None], aux=False
    )
    return 1.0 / float(np.mean(1.0 / ilp[:, 0, 0]))


def _aggregate_table(
    ilp: np.ndarray,
    branch_loads: np.ndarray,
    load_par: np.ndarray,
    windows: Sequence[int],
    load_lats: Sequence[int],
) -> ILPTable:
    """Per-sample grids -> one pool table (rates average harmonically)."""
    return ILPTable(
        windows=tuple(windows),
        load_lats=tuple(load_lats),
        ilp=1.0 / np.mean(1.0 / ilp, axis=0),
        branch_loads=np.mean(branch_loads, axis=0),
        load_par=np.mean(load_par, axis=0),
    )


def _empty_table(
    windows: Sequence[int], load_lats: Sequence[int]
) -> ILPTable:
    return ILPTable(
        windows=tuple(windows),
        load_lats=tuple(load_lats),
        ilp=np.ones((len(windows), len(load_lats))),
        branch_loads=np.zeros(len(windows)),
        load_par=np.ones(len(windows)),
    )


class ILPTableCache:
    """Content-addressed memo for per-pool ILP tables.

    The profiling grid is configuration-independent, so a pool's table
    is a pure function of its micro-trace samples and the grids.  The
    cache layers an in-process dict over the optional on-disk
    :class:`~repro.experiments.store.ProfileStore`, sharing tables
    across design-space configurations, runs and processes.  Keys are
    independent of kernel batching, so entries persisted by earlier
    engine generations remain valid.
    """

    def __init__(self, store=None) -> None:
        self.store = store
        self._memo = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        samples: Sequence[Sample],
        windows: Sequence[int],
        load_lats: Sequence[int],
    ) -> str:
        digest = hashlib.sha256()
        digest.update(
            repr((tuple(windows), tuple(load_lats))).encode()
        )
        for o, d in samples:
            o = np.ascontiguousarray(np.asarray(o, dtype=np.int64))
            d = np.ascontiguousarray(np.asarray(d, dtype=np.int64))
            digest.update(len(o).to_bytes(8, "little"))
            digest.update(o.tobytes())
            digest.update(d.tobytes())
        return digest.hexdigest()

    def get(self, key: str) -> Optional[ILPTable]:
        table = self._memo.get(key)
        if table is None and self.store is not None:
            table = self.store.load_ilp_table(key)
            if table is not None:
                self._memo[key] = table
        if table is None:
            self.misses += 1
        else:
            self.hits += 1
        return table

    def put(self, key: str, table: ILPTable) -> None:
        self._memo[key] = table
        if self.store is not None:
            self.store.save_ilp_table(key, table)


def build_ilp_tables(
    pool_samples: Sequence[Sequence[Sample]],
    windows: Sequence[int] = WINDOW_GRID,
    load_lats: Sequence[int] = LOAD_LAT_GRID,
    cache: Optional[ILPTableCache] = None,
) -> List[ILPTable]:
    """All pools' ILP tables through the mega-batched fused kernel.

    Pools whose content the ``cache`` has seen before skip the replay
    entirely; the remaining pools run through
    :func:`batch_scoreboard_pools` — one fused lockstep advance per
    width bucket for the whole miss set.  Per-pool aggregation mirrors
    the scalar :func:`~repro.profiler.ilp.build_ilp_table` exactly.
    """
    with span("ilp.tables", pools=len(pool_samples)):
        return _build_ilp_tables(pool_samples, windows, load_lats, cache)


def _build_ilp_tables(
    pool_samples: Sequence[Sequence[Sample]],
    windows: Sequence[int],
    load_lats: Sequence[int],
    cache: Optional[ILPTableCache],
) -> List[ILPTable]:
    tables: List[Optional[ILPTable]] = [None] * len(pool_samples)
    keys: List[Optional[str]] = [None] * len(pool_samples)
    todo: List[int] = []
    alias: dict = {}  # pool index -> earlier pool with same content
    pending: dict = {}  # key -> first todo pool carrying it
    for pi, samples in enumerate(pool_samples):
        if not samples:
            tables[pi] = _empty_table(windows, load_lats)
            continue
        if cache is not None:
            keys[pi] = ILPTableCache.key(samples, windows, load_lats)
            if keys[pi] in pending:
                alias[pi] = pending[keys[pi]]
                continue
            hit = cache.get(keys[pi])
            if hit is not None:
                tables[pi] = hit
                continue
            pending[keys[pi]] = pi
        todo.append(pi)

    if todo:
        todo_tables = batch_scoreboard_pools(
            [pool_samples[pi] for pi in todo], windows, load_lats
        )
        for pi, table in zip(todo, todo_tables):
            tables[pi] = table
            if cache is not None:
                cache.put(keys[pi], table)
    for pi, src in alias.items():
        tables[pi] = tables[src]
    return tables


def build_ilp_table_batch(
    samples: Sequence[Sample],
    windows: Sequence[int] = WINDOW_GRID,
    load_lats: Sequence[int] = LOAD_LAT_GRID,
    cache: Optional[ILPTableCache] = None,
) -> ILPTable:
    """One pool's table via the batch engine (scalar-spec equivalent)."""
    return build_ilp_tables(
        [list(samples)], windows, load_lats, cache=cache
    )[0]
