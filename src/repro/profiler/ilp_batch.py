"""Batched NumPy ILP scoreboard engine.

:func:`repro.profiler.ilp.scoreboard_replay` advances a dependence
scoreboard one op at a time, once per (sample, window, load-latency)
grid point — O(samples x windows x lats x len) Python-level steps, the
dominant profiling cost after the reuse-distance engine was vectorized.
This module stacks all micro-trace samples into lockstep arrays and
advances the *same* recurrence one instruction-step at a time across
the whole (samples x windows x lats) grid simultaneously, so the
Python loop is O(MICROTRACE_LEN) total:

* ``comp[i]  = max(commit[i - W], comp[i - dep[i]]) + lat[i]``
  evaluated as one (S, W, L) array step (dispatch gathers per window,
  producer gathers per sample),
* ``commit[i] = max(commit[i - 1], comp[i])`` as a running maximum,
* the branch backward-slice load counts and the per-window load-chain
  depths of :func:`repro.profiler.ilp.load_parallelism` ride along in
  the same pass (they reuse the producer gather), so one loop yields
  the full :class:`~repro.profiler.profile.ILPTable`.

Samples of unequal length are padded with no-ops; every per-sample
readout (makespan, branch counts, chunk flushes) indexes the true
length, so padding never leaks into results.  All arithmetic is the
same float64 max/add sequence as the scalar spec, in the same
per-element order, so tables agree to float64 exactness (tested
against :func:`repro.profiler.ilp.scoreboard_replay`, the preserved
executable spec).

Because the profiling grid is microarchitecture-*independent*, the
tables are also memoized: :class:`ILPTableCache` keys a pool's table
by a content digest of its samples and grids (in-process dict backed
by the on-disk :class:`~repro.experiments.store.ProfileStore`), so
design-space sweeps never rebuild a table for dependence structure
they have already profiled.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.profiler.ilp import (
    CANONICAL_LAT,
    LOAD_LAT_GRID,
    WINDOW_GRID,
)
from repro.profiler.profile import ILPTable
from repro.workloads.ir import OP_BRANCH, OP_LOAD

#: One micro-trace sample: (op codes, backward dependence distances).
Sample = Tuple[np.ndarray, np.ndarray]


def stack_samples(
    samples: Sequence[Sample],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pad samples into lockstep ``(op, dep, lengths)`` arrays.

    Padding entries are no-ops (``op=0, dep=0``): they never produce
    loads, branches or valid dependences, and every readout below is
    gated on ``lengths``.
    """
    n_samples = len(samples)
    lengths = np.array(
        [len(o) for o, _ in samples], dtype=np.int64
    ).reshape(n_samples)
    width = int(lengths.max()) if n_samples else 0
    op = np.zeros((n_samples, width), dtype=np.int64)
    dep = np.zeros((n_samples, width), dtype=np.int64)
    for s, (o, d) in enumerate(samples):
        op[s, : lengths[s]] = np.asarray(o, dtype=np.int64)
        dep[s, : lengths[s]] = np.asarray(d, dtype=np.int64)
    return op, dep, lengths


def grid_latencies(
    op: np.ndarray, load_lats: Sequence[float]
) -> np.ndarray:
    """Per-op latencies for every grid latency: shape (S, N, L).

    Non-load classes take their canonical latency on every grid point;
    loads take the grid value.
    """
    canon = np.asarray(CANONICAL_LAT, dtype=np.float64)
    lat = np.repeat(
        canon[op][:, :, None], max(len(load_lats), 1), axis=2
    )
    lat[op == OP_LOAD] = np.asarray(load_lats, dtype=np.float64)
    return lat


def batch_scoreboard(
    op: np.ndarray,
    dep: np.ndarray,
    lengths: np.ndarray,
    windows: Sequence[int],
    lat: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Advance the scoreboard recurrence for all grid points at once.

    Parameters mirror :func:`stack_samples` / :func:`grid_latencies`;
    ``lat`` has shape (S, N, L) where L is the latency-grid axis (1 for
    the per-op-latency prediction path).

    Returns ``(ilp, branch_loads, load_par)`` with shapes
    (S, W, L), (S, W) and (S, W) — per-sample values, aggregated by the
    caller exactly as the scalar :func:`~repro.profiler.ilp.
    build_ilp_table` aggregates its per-sample replays.
    """
    n_samples, width = op.shape
    w_arr = np.asarray(windows, dtype=np.int64)
    n_windows = len(w_arr)
    n_lats = lat.shape[2] if lat.ndim == 3 else 1
    if n_samples == 0 or width == 0:
        return (
            np.ones((n_samples, n_windows, n_lats)),
            np.zeros((n_samples, n_windows)),
            np.ones((n_samples, n_windows)),
        )

    steps = np.arange(width, dtype=np.int64)
    is_load = op == OP_LOAD
    in_range = steps[None, :] < lengths[:, None]
    is_branch = (op == OP_BRANCH) & in_range
    valid = (dep > 0) & (dep <= steps[None, :])
    prod = np.maximum(steps[None, :] - dep, 0)
    s_idx = np.arange(n_samples)

    # Full histories: producer gathers reach arbitrarily far back and
    # the dispatch gather reaches back up to the largest window.
    comp = np.zeros((width, n_samples, n_windows, n_lats))
    commit = np.zeros((n_windows, width, n_samples, n_lats))
    slice_loads = np.zeros((width, n_samples, n_windows))
    chain_depth = np.zeros((width, n_samples, n_windows))

    commit_prev = np.zeros((n_samples, n_windows, n_lats))
    loads_sum = np.zeros((n_samples, n_windows))
    cur_max = np.zeros((n_samples, n_windows))
    depth_sum = np.zeros((n_samples, n_windows))

    for i in range(width):
        d_i = dep[:, i]
        p_i = prod[:, i]
        load_i = is_load[:, i]

        # -- load-parallelism chunk bookkeeping ------------------------
        # A window's chunk [i - w, i) ends when i hits a multiple of w;
        # flush its depth (counted only if the chunk started within the
        # sample) and reset before processing step i.
        imod = i % w_arr
        if i > 0:
            ended = imod == 0
            if ended.any():
                started = (i - w_arr)[None, :] < lengths[:, None]
                flush = ended[None, :] & started
                depth_sum += np.where(
                    flush, np.maximum(cur_max, 1.0), 0.0
                )
                cur_max = np.where(ended[None, :], 0.0, cur_max)

        # -- dispatch: in-order commit bounds window occupancy ---------
        dispatch = np.zeros((n_samples, n_windows, n_lats))
        open_w = w_arr <= i
        if open_w.any():
            rows = i - w_arr[open_w]
            dispatch[:, open_w, :] = commit[open_w, rows].transpose(
                1, 0, 2
            )

        # -- issue: producer completion --------------------------------
        v_i = valid[:, i]
        ready = np.where(
            v_i[:, None, None], comp[p_i, s_idx], 0.0
        )
        c = np.maximum(dispatch, ready) + lat[:, i, None, :]
        comp[i] = c
        np.maximum(commit_prev, c, out=commit_prev)
        commit[:, i] = commit_prev.transpose(1, 0, 2)

        # -- branch backward-slice load counts -------------------------
        reach = v_i[:, None] & (d_i[:, None] <= w_arr[None, :])
        n_loads = (
            np.where(reach, slice_loads[p_i, s_idx], 0.0)
            + load_i[:, None]
        )
        slice_loads[i] = n_loads
        loads_sum += n_loads * is_branch[:, i, None]

        # -- transitive load-chain depth (per window chunk) ------------
        in_chunk = (d_i[:, None] > 0) & (d_i[:, None] <= imod[None, :])
        depth = (
            np.where(in_chunk, chain_depth[p_i, s_idx], 0.0)
            + load_i[:, None]
        )
        chain_depth[i] = depth
        np.maximum(cur_max, depth, out=cur_max)

    # Final partial chunks (never followed by a chunk start in-loop).
    last_start = ((width - 1) // w_arr) * w_arr
    started = last_start[None, :] < lengths[:, None]
    depth_sum += np.where(started, np.maximum(cur_max, 1.0), 0.0)

    # -- per-sample readouts at true lengths ---------------------------
    last = np.maximum(lengths - 1, 0)
    makespan = commit[:, last, s_idx].transpose(1, 0, 2)  # (S, W, L)
    n_f = lengths.astype(np.float64)[:, None, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        ilp = np.where(makespan > 0, n_f / makespan, n_f)
    ilp = np.maximum(ilp, 1e-3)
    ilp[lengths == 0] = 1.0

    branch_count = is_branch.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        branch_loads = np.where(
            branch_count[:, None] > 0,
            loads_sum / branch_count[:, None],
            0.0,
        )

    total_loads = (is_load & in_range).sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        load_par = np.where(
            total_loads[:, None] > 0,
            np.maximum(1.0, total_loads[:, None] / depth_sum),
            1.0,
        )
    return ilp, branch_loads, load_par


def batch_hierarchy_ilp(
    samples: Sequence[Sample],
    window: int,
    per_op_lats: Sequence[np.ndarray],
) -> float:
    """Harmonic-mean ILP with per-load latencies, via the batch engine.

    ``per_op_lats[s]`` carries sample ``s``'s per-op latency vector
    (only load positions are read — non-loads take canonical
    latencies, as in the scalar spec's per-op mode).
    """
    if not samples:
        return 1.0
    op, dep, lengths = stack_samples(samples)
    canon = np.asarray(CANONICAL_LAT, dtype=np.float64)
    lat = canon[op]
    for s, per_op in enumerate(per_op_lats):
        mask = op[s, : lengths[s]] == OP_LOAD
        lat[s, : lengths[s]][mask] = np.asarray(
            per_op, dtype=np.float64
        )[mask]
    ilp, _, _ = batch_scoreboard(
        op, dep, lengths, (window,), lat[:, :, None]
    )
    return 1.0 / float(np.mean(1.0 / ilp[:, 0, 0]))


def _aggregate_table(
    ilp: np.ndarray,
    branch_loads: np.ndarray,
    load_par: np.ndarray,
    windows: Sequence[int],
    load_lats: Sequence[int],
) -> ILPTable:
    """Per-sample grids -> one pool table (rates average harmonically)."""
    return ILPTable(
        windows=tuple(windows),
        load_lats=tuple(load_lats),
        ilp=1.0 / np.mean(1.0 / ilp, axis=0),
        branch_loads=np.mean(branch_loads, axis=0),
        load_par=np.mean(load_par, axis=0),
    )


def _empty_table(
    windows: Sequence[int], load_lats: Sequence[int]
) -> ILPTable:
    return ILPTable(
        windows=tuple(windows),
        load_lats=tuple(load_lats),
        ilp=np.ones((len(windows), len(load_lats))),
        branch_loads=np.zeros(len(windows)),
        load_par=np.ones(len(windows)),
    )


class ILPTableCache:
    """Content-addressed memo for per-pool ILP tables.

    The profiling grid is configuration-independent, so a pool's table
    is a pure function of its micro-trace samples and the grids.  The
    cache layers an in-process dict over the optional on-disk
    :class:`~repro.experiments.store.ProfileStore`, sharing tables
    across design-space configurations, runs and processes.
    """

    def __init__(self, store=None) -> None:
        self.store = store
        self._memo = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        samples: Sequence[Sample],
        windows: Sequence[int],
        load_lats: Sequence[int],
    ) -> str:
        digest = hashlib.sha256()
        digest.update(
            repr((tuple(windows), tuple(load_lats))).encode()
        )
        for o, d in samples:
            o = np.ascontiguousarray(np.asarray(o, dtype=np.int64))
            d = np.ascontiguousarray(np.asarray(d, dtype=np.int64))
            digest.update(len(o).to_bytes(8, "little"))
            digest.update(o.tobytes())
            digest.update(d.tobytes())
        return digest.hexdigest()

    def get(self, key: str) -> Optional[ILPTable]:
        table = self._memo.get(key)
        if table is None and self.store is not None:
            table = self.store.load_ilp_table(key)
            if table is not None:
                self._memo[key] = table
        if table is None:
            self.misses += 1
        else:
            self.hits += 1
        return table

    def put(self, key: str, table: ILPTable) -> None:
        self._memo[key] = table
        if self.store is not None:
            self.store.save_ilp_table(key, table)


def build_ilp_tables(
    pool_samples: Sequence[Sequence[Sample]],
    windows: Sequence[int] = WINDOW_GRID,
    load_lats: Sequence[int] = LOAD_LAT_GRID,
    cache: Optional[ILPTableCache] = None,
) -> List[ILPTable]:
    """All pools' ILP tables from one lockstep scoreboard advance.

    Samples from every pool are stacked into a single batch (the wider
    the sample axis, the better the per-step NumPy work amortizes the
    loop overhead); per-pool aggregation then mirrors the scalar
    :func:`~repro.profiler.ilp.build_ilp_table` exactly.  With a
    ``cache``, pools whose sample content was seen before skip the
    replay entirely.
    """
    tables: List[Optional[ILPTable]] = [None] * len(pool_samples)
    keys: List[Optional[str]] = [None] * len(pool_samples)
    todo: List[int] = []
    alias: dict = {}  # pool index -> earlier pool with same content
    pending: dict = {}  # key -> first todo pool carrying it
    for pi, samples in enumerate(pool_samples):
        if not samples:
            tables[pi] = _empty_table(windows, load_lats)
            continue
        if cache is not None:
            keys[pi] = ILPTableCache.key(samples, windows, load_lats)
            if keys[pi] in pending:
                alias[pi] = pending[keys[pi]]
                continue
            hit = cache.get(keys[pi])
            if hit is not None:
                tables[pi] = hit
                continue
            pending[keys[pi]] = pi
        todo.append(pi)

    if todo:
        flat: List[Sample] = []
        owner: List[int] = []
        for pi in todo:
            flat.extend(pool_samples[pi])
            owner.extend([pi] * len(pool_samples[pi]))
        op, dep, lengths = stack_samples(flat)
        lat = grid_latencies(op, load_lats)
        ilp, branch_loads, load_par = batch_scoreboard(
            op, dep, lengths, windows, lat
        )
        owner_arr = np.asarray(owner)
        for pi in todo:
            sel = owner_arr == pi
            tables[pi] = _aggregate_table(
                ilp[sel], branch_loads[sel], load_par[sel],
                windows, load_lats,
            )
            if cache is not None:
                cache.put(keys[pi], tables[pi])
    for pi, src in alias.items():
        tables[pi] = tables[src]
    return tables


def build_ilp_table_batch(
    samples: Sequence[Sample],
    windows: Sequence[int] = WINDOW_GRID,
    load_lats: Sequence[int] = LOAD_LAT_GRID,
    cache: Optional[ILPTableCache] = None,
) -> ILPTable:
    """One pool's table via the batch engine (scalar-spec equivalent)."""
    return build_ilp_tables(
        [list(samples)], windows, load_lats, cache=cache
    )[0]
