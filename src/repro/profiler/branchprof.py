"""Branch-history entropy profiling (De Pestel et al. [10]).

For each pool we estimate, at several global-history depths ``h``, the
*achievable* misprediction rate of an ideal table predictor indexed by
(branch PC, h history bits).  Two estimators are combined:

* the **in-sample floor** ``sum_ctx w_ctx * min(p_ctx, 1 - p_ctx)`` —
  the linear-branch-entropy statistic, which underestimates for sparse
  contexts (a context seen once has floor zero no matter how random the
  branch actually is);
* a **cross-validated floor**: the stream is split in half, a majority
  table is trained on the first half and evaluated on the second, with
  unseen contexts falling back to the per-PC majority and then the
  global majority.  This captures trainability: a deterministic loop
  pattern generalizes (low CV floor), i.i.d. noise does not (CV floor
  near ``min(p, 1-p)``), and noisy histories pay the fallback cost —
  exactly the costs a real history-based predictor pays.

Both statistics depend only on the branch stream, never on a concrete
predictor configuration, so they are microarchitecture-independent.
The distinct-context counts feed the aliasing term of the predictor
model in :mod:`repro.branch.entropy_model`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.profiler.profile import BranchStats

#: History depths profiled; the predictor model interpolates.
DEPTH_GRID = (0, 2, 4, 8, 12)


def _history_ints(taken: np.ndarray, depth: int) -> np.ndarray:
    """Global-history register value before each branch (depth bits)."""
    n = len(taken)
    if depth == 0 or n == 0:
        return np.zeros(n, dtype=np.int64)
    hist = np.zeros(n, dtype=np.int64)
    t = taken.astype(np.int64)
    # hist[i] = sum_{j=1..depth} taken[i-j] << (j-1); vectorized by
    # accumulating shifted copies of the outcome stream.
    for j in range(1, depth + 1):
        hist[j:] |= t[:-j] << (j - 1)
    return hist


def _majority(
    keys: np.ndarray, taken: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted unique keys and their majority outcome (ties -> taken)."""
    uniq, inverse, counts = np.unique(
        keys, return_inverse=True, return_counts=True
    )
    takens = np.bincount(inverse, weights=taken.astype(np.float64))
    return uniq, (2.0 * takens >= counts)


def _predict(
    keys: np.ndarray,
    table_keys: np.ndarray,
    table_pred: np.ndarray,
    fallback: np.ndarray,
) -> np.ndarray:
    """Majority-table lookup with per-branch fallback for unseen keys."""
    if len(table_keys) == 0:
        return fallback
    idx = np.searchsorted(table_keys, keys)
    idx_c = np.minimum(idx, len(table_keys) - 1)
    found = table_keys[idx_c] == keys
    return np.where(found, table_pred[idx_c], fallback)


def _cv_floor(
    pcs: np.ndarray, taken: np.ndarray, keys: np.ndarray
) -> float:
    """Split-half cross-validated miss rate of an ideal majority table.

    Trained on the first half of the stream, evaluated on the second;
    unseen (pc, history) contexts fall back to the training half's
    per-PC majority, then to the global majority.
    """
    n = len(keys)
    half = n // 2
    if half == 0:
        return 0.0
    global_maj = bool(2 * int(taken.sum()) >= n)

    pc_keys, pc_pred = _majority(pcs[:half], taken[:half])
    fallback = _predict(
        pcs[half:], pc_keys, pc_pred,
        np.full(n - half, global_maj, dtype=bool),
    )
    ctx_keys, ctx_pred = _majority(keys[:half], taken[:half])
    pred = _predict(keys[half:], ctx_keys, ctx_pred, fallback)
    return float(np.mean(pred != (taken[half:] > 0)))


def _in_sample_floor(keys: np.ndarray, taken: np.ndarray) -> float:
    """Weighted irreducible misprediction floor over observed contexts."""
    _, inverse, counts = np.unique(
        keys, return_inverse=True, return_counts=True
    )
    takens = np.bincount(inverse, weights=taken.astype(np.float64))
    p = takens / counts
    floors = np.minimum(p, 1.0 - p)
    return float((floors * counts).sum() / counts.sum())


def branch_stats(
    streams: List[Tuple[np.ndarray, np.ndarray]],
    depths: Sequence[int] = DEPTH_GRID,
) -> BranchStats:
    """Compute :class:`BranchStats` from (pc, taken) stream pieces.

    Pieces are concatenated before analysis — floors computed per piece
    would overfit sparsely-populated contexts.  History registers are
    computed over the concatenated stream (chunk edges are a negligible
    reordering for realistic chunk sizes).
    """
    streams = [(p, t) for p, t in streams if len(p)]
    if not streams:
        return BranchStats(
            n_branches=0, taken_rate=0.0, floors={d: 0.0 for d in depths},
            n_static=0, contexts={d: 0 for d in depths},
        )
    pcs = np.concatenate([p for p, _ in streams]).astype(np.int64)
    taken = np.concatenate([t for _, t in streams]).astype(np.int64)
    n = len(pcs)

    floors: Dict[int, float] = {}
    contexts: Dict[int, int] = {}
    for depth in depths:
        keys = pcs << depth
        if depth:
            keys = keys | _history_ints(taken, depth)
        # The achievable rate is at least the in-sample floor (true
        # context randomness) and at least the CV rate (training and
        # generalization cost); take the max of the two lower bounds.
        floors[depth] = max(
            _in_sample_floor(keys, taken), _cv_floor(pcs, taken, keys)
        )
        contexts[depth] = int(len(np.unique(keys)))
    return BranchStats(
        n_branches=n,
        taken_rate=float(taken.sum()) / n,
        floors=floors,
        n_static=int(len(np.unique(pcs))),
        contexts=contexts,
    )
