"""Branch-history entropy profiling (De Pestel et al. [10]).

For each pool we estimate, at several global-history depths ``h``, the
*achievable* misprediction rate of an ideal table predictor indexed by
(branch PC, h history bits).  Two estimators are combined:

* the **in-sample floor** ``sum_ctx w_ctx * min(p_ctx, 1 - p_ctx)`` —
  the linear-branch-entropy statistic, which underestimates for sparse
  contexts (a context seen once has floor zero no matter how random the
  branch actually is);
* a **cross-validated floor**: the stream is split in half, a majority
  table is trained on the first half and evaluated on the second, with
  unseen contexts falling back to the per-PC majority and then the
  global majority.  This captures trainability: a deterministic loop
  pattern generalizes (low CV floor), i.i.d. noise does not (CV floor
  near ``min(p, 1-p)``), and noisy histories pay the fallback cost —
  exactly the costs a real history-based predictor pays.

Both statistics depend only on the branch stream, never on a concrete
predictor configuration, so they are microarchitecture-independent.
The distinct-context counts feed the aliasing term of the predictor
model in :mod:`repro.branch.entropy_model`.

Performance shape: one *suffix-packed* key — ``(pc << dmax) | rhist``
with the most recent outcome in the top history bit — is sorted once,
and every depth's context grouping falls out of the same sorted order
by a shift (a depth-``d`` context is a prefix of the depth-``dmax``
key).  The per-depth ``np.unique`` sorts this replaces were ~30% of
profiling wall-clock.  Group statistics are re-ordered to the legacy
per-depth key order before the floating-point reductions, so every
floor is bit-identical to the reference path
(:func:`_branch_stats_reference`, kept as the executable spec).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.profiler.profile import BranchStats

#: History depths profiled; the predictor model interpolates.
DEPTH_GRID = (0, 2, 4, 8, 12)


def _history_ints(taken: np.ndarray, depth: int) -> np.ndarray:
    """Global-history register value before each branch (depth bits)."""
    n = len(taken)
    if depth == 0 or n == 0:
        return np.zeros(n, dtype=np.int64)
    hist = np.zeros(n, dtype=np.int64)
    t = taken.astype(np.int64)
    # hist[i] = sum_{j=1..depth} taken[i-j] << (j-1); vectorized by
    # accumulating shifted copies of the outcome stream.
    for j in range(1, depth + 1):
        hist[j:] |= t[:-j] << (j - 1)
    return hist


def _packed_history(taken: np.ndarray, depth: int) -> np.ndarray:
    """Bit-reversed history register: the *most recent* outcome in the
    top bit, so the depth-``d`` context is the top ``d`` bits — a prefix
    of the full-depth value, which is what makes one sort serve every
    depth."""
    n = len(taken)
    if depth == 0 or n == 0:
        return np.zeros(n, dtype=np.int64)
    hist = np.zeros(n, dtype=np.int64)
    t = taken.astype(np.int64)
    for j in range(1, depth + 1):
        hist[j:] |= t[:-j] << (depth - j)
    return hist


def _majority(
    keys: np.ndarray, taken: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted unique keys and their majority outcome (ties -> taken)."""
    uniq, inverse, counts = np.unique(
        keys, return_inverse=True, return_counts=True
    )
    takens = np.bincount(inverse, weights=taken.astype(np.float64))
    return uniq, (2.0 * takens >= counts)


def _predict(
    keys: np.ndarray,
    table_keys: np.ndarray,
    table_pred: np.ndarray,
    fallback: np.ndarray,
) -> np.ndarray:
    """Majority-table lookup with per-branch fallback for unseen keys."""
    if len(table_keys) == 0:
        return fallback
    idx = np.searchsorted(table_keys, keys)
    idx_c = np.minimum(idx, len(table_keys) - 1)
    found = table_keys[idx_c] == keys
    return np.where(found, table_pred[idx_c], fallback)


def _cv_floor(
    pcs: np.ndarray, taken: np.ndarray, keys: np.ndarray
) -> float:
    """Split-half cross-validated miss rate of an ideal majority table.

    Trained on the first half of the stream, evaluated on the second;
    unseen (pc, history) contexts fall back to the training half's
    per-PC majority, then to the global majority.
    """
    n = len(keys)
    half = n // 2
    if half == 0:
        return 0.0
    global_maj = bool(2 * int(taken.sum()) >= n)

    pc_keys, pc_pred = _majority(pcs[:half], taken[:half])
    fallback = _predict(
        pcs[half:], pc_keys, pc_pred,
        np.full(n - half, global_maj, dtype=bool),
    )
    ctx_keys, ctx_pred = _majority(keys[:half], taken[:half])
    pred = _predict(keys[half:], ctx_keys, ctx_pred, fallback)
    return float(np.mean(pred != (taken[half:] > 0)))


def _in_sample_floor(keys: np.ndarray, taken: np.ndarray) -> float:
    """Weighted irreducible misprediction floor over observed contexts."""
    _, inverse, counts = np.unique(
        keys, return_inverse=True, return_counts=True
    )
    takens = np.bincount(inverse, weights=taken.astype(np.float64))
    p = takens / counts
    floors = np.minimum(p, 1.0 - p)
    return float((floors * counts).sum() / counts.sum())


def _empty_stats(depths: Sequence[int]) -> BranchStats:
    return BranchStats(
        n_branches=0, taken_rate=0.0, floors={d: 0.0 for d in depths},
        n_static=0, contexts={d: 0 for d in depths},
    )


def _concat_streams(
    streams: List[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    pcs = np.concatenate([p for p, _ in streams]).astype(np.int64)
    taken = np.concatenate([t for _, t in streams]).astype(np.int64)
    return pcs, taken


def _branch_stats_reference(
    streams: List[Tuple[np.ndarray, np.ndarray]],
    depths: Sequence[int] = DEPTH_GRID,
) -> BranchStats:
    """Per-depth ``np.unique`` reference — the seed implementation,
    preserved as the executable spec the shared-sort path is equivalence
    tested against (``tests/test_branch.py``)."""
    streams = [(p, t) for p, t in streams if len(p)]
    if not streams:
        return _empty_stats(depths)
    pcs, taken = _concat_streams(streams)
    n = len(pcs)

    floors: Dict[int, float] = {}
    contexts: Dict[int, int] = {}
    for depth in depths:
        keys = pcs << depth
        if depth:
            keys = keys | _history_ints(taken, depth)
        # The achievable rate is at least the in-sample floor (true
        # context randomness) and at least the CV rate (training and
        # generalization cost); take the max of the two lower bounds.
        floors[depth] = max(
            _in_sample_floor(keys, taken), _cv_floor(pcs, taken, keys)
        )
        contexts[depth] = int(len(np.unique(keys)))
    return BranchStats(
        n_branches=n,
        taken_rate=float(taken.sum()) / n,
        floors=floors,
        n_static=int(len(np.unique(pcs))),
        contexts=contexts,
    )


def _legacy_group_order(group_keys: np.ndarray, depth: int) -> np.ndarray:
    """Permutation putting suffix-packed groups in legacy key order.

    The legacy key stores the history with the most recent outcome in
    the *low* bit; the packed key stores it in the *top* bit.  The two
    encode the same (pc, outcome tuple), so bit-reversing the history
    field recovers the legacy key, whose sorted order fixed the
    floating-point summation order of the in-sample floor.
    """
    if depth == 0:
        return np.arange(len(group_keys))
    mask = (np.int64(1) << depth) - 1
    bits = group_keys & mask
    rev = np.zeros(len(group_keys), dtype=np.int64)
    for b in range(depth):
        rev |= ((bits >> b) & 1) << (depth - 1 - b)
    legacy = ((group_keys >> depth) << depth) | rev
    return np.argsort(legacy, kind="stable")


class BranchStatsCache:
    """Content-addressed memo of per-pool branch statistics.

    ``branch_stats`` is a pure function of the concatenated
    (pc, taken) stream, so re-profiling a trace the session has seen
    before can skip the shared-sort analysis entirely.  Keys hash the
    concatenated stream content — how the stream was split into chunk
    pieces does not matter, exactly as it does not matter to
    :func:`branch_stats` itself.  Returned :class:`BranchStats` objects
    are shared and must be treated as read-only (all consumers are).
    """

    def __init__(self, max_entries: int = 8192) -> None:
        self._memo: "OrderedDict[bytes, BranchStats]" = OrderedDict()
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(pcs: np.ndarray, taken: np.ndarray) -> bytes:
        h = hashlib.sha256()
        h.update(f"branch|{len(pcs)}|".encode())
        h.update(np.ascontiguousarray(pcs).tobytes())
        h.update(np.ascontiguousarray(taken).tobytes())
        return h.digest()

    def get(self, key: bytes) -> Optional[BranchStats]:
        with self._lock:
            stats = self._memo.get(key)
            if stats is not None:
                self._memo.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        return stats

    def put(self, key: bytes, stats: BranchStats) -> None:
        with self._lock:
            self._memo[key] = stats
            while len(self._memo) > self.max_entries:
                self._memo.popitem(last=False)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._memo),
                "hits": self.hits,
                "misses": self.misses,
            }


def cached_branch_stats(
    streams: List[Tuple[np.ndarray, np.ndarray]],
    cache: Optional[BranchStatsCache] = None,
    depths: Sequence[int] = DEPTH_GRID,
) -> BranchStats:
    """:func:`branch_stats` through an optional content-addressed memo."""
    if cache is None:
        return branch_stats(streams, depths)
    pieces = [(p, t) for p, t in streams if len(p)]
    if not pieces:
        return branch_stats(pieces, depths)
    pcs, taken = _concat_streams(pieces)
    key = cache.key(pcs, taken)
    stats = cache.get(key)
    if stats is None:
        stats = branch_stats([(pcs, taken)], depths)
        cache.put(key, stats)
    return stats


def branch_stats(
    streams: List[Tuple[np.ndarray, np.ndarray]],
    depths: Sequence[int] = DEPTH_GRID,
) -> BranchStats:
    """Compute :class:`BranchStats` from (pc, taken) stream pieces.

    Pieces are concatenated before analysis — floors computed per piece
    would overfit sparsely-populated contexts.  History registers are
    computed over the concatenated stream (chunk edges are a negligible
    reordering for realistic chunk sizes).

    Bit-identical to :func:`_branch_stats_reference`, with one shared
    ``argsort`` replacing the per-depth ``np.unique`` sorts.
    """
    streams = [(p, t) for p, t in streams if len(p)]
    if not streams:
        return _empty_stats(depths)
    pcs, taken = _concat_streams(streams)
    n = len(pcs)
    half = n // 2
    dmax = max(depths) if depths else 0

    # One suffix-packed sort serves every depth: the depth-d context
    # key is a prefix (right shift) of the full packed key.
    packed = (pcs << dmax) | _packed_history(taken, dmax)
    order = np.argsort(packed, kind="stable")
    sorted_keys = packed[order]
    sorted_taken = (taken[order] > 0)
    sorted_train = order < half  # first-half membership, sorted order
    sorted_test_taken = ~sorted_train & sorted_taken
    train_f = sorted_train.astype(np.float64)
    taken_f = sorted_taken.astype(np.float64)
    train_taken_f = (sorted_train & sorted_taken).astype(np.float64)

    # Depth-independent CV machinery, hoisted out of the depth loop:
    # the per-PC fallback table and the global majority.
    if half:
        global_maj = bool(2 * int(taken.sum()) >= n)
        pc_keys, pc_pred = _majority(pcs[:half], taken[:half])
        fallback_sorted = _predict(
            pcs[order], pc_keys, pc_pred,
            np.full(n, global_maj, dtype=bool),
        )
        fb_miss_sorted = (fallback_sorted != sorted_taken) & ~sorted_train

    floors: Dict[int, float] = {}
    contexts: Dict[int, int] = {}
    for depth in depths:
        gk = sorted_keys >> (dmax - depth) if depth < dmax else sorted_keys
        bounds = np.flatnonzero(
            np.concatenate([[True], gk[1:] != gk[:-1]])
        )
        counts = np.diff(np.append(bounds, n))
        takens = np.add.reduceat(taken_f, bounds)
        contexts[depth] = len(bounds)

        # In-sample floor: identical multiset of per-group terms; the
        # legacy-order permutation reproduces the reference summation
        # order exactly (floating-point addition is order-sensitive).
        g_order = _legacy_group_order(gk[bounds], depth)
        counts_o = counts[g_order]
        p = takens[g_order] / counts_o
        group_floors = np.minimum(p, 1.0 - p)
        in_sample = float(
            (group_floors * counts_o).sum() / counts_o.sum()
        )

        # CV floor: per-group majority trained on first-half members,
        # evaluated on second-half members; groups with no training
        # mass fall back to the per-PC prediction element-wise.  Only
        # key *equality* matters, so group aggregates reproduce the
        # reference's per-element predictions exactly.
        if half == 0:
            cv = 0.0
        else:
            train_cnt = np.add.reduceat(train_f, bounds)
            train_tkn = np.add.reduceat(train_taken_f, bounds)
            test_cnt = counts - train_cnt
            test_tkn = np.add.reduceat(
                sorted_test_taken.astype(np.float64), bounds
            )
            pred = 2.0 * train_tkn >= train_cnt
            trained = train_cnt > 0
            misses = float(np.where(
                trained, np.where(pred, test_cnt - test_tkn, test_tkn),
                0.0,
            ).sum())
            untrained_members = ~np.repeat(trained, counts)
            if untrained_members.any():
                misses += float(
                    fb_miss_sorted[untrained_members].sum()
                )
            cv = misses / (n - half)
        floors[depth] = max(in_sample, cv)

    n_static = int(
        (np.diff(sorted_keys >> dmax) != 0).sum() + 1
    ) if n else 0
    return BranchStats(
        n_branches=n,
        taken_rate=float(taken.sum()) / n,
        floors=floors,
        n_static=n_static,
        contexts=contexts,
    )
