"""Multithreaded reuse-distance collection (StatStack inputs, §III-A).

Two distance notions per the paper's Fig. 2:

* **private**: accesses by the *same thread* between two accesses by
  that thread to a line (drives private L1/L2 miss prediction).  If any
  other thread *wrote* the line in between, the reuse is broken by
  coherence and recorded as an invalidation (infinite distance).
* **global**: accesses by *any thread* since the last access to the
  line by any thread (drives shared-LLC miss prediction; captures both
  positive interference from sharing and negative interference from
  competition).

The collector is fed by the profiler's functional replay in chunk
interleaving order; counters are plain dicts keyed by cache-line index.
The inner loop is deliberately low-level Python — it runs once per
memory access of the whole workload.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.profiler.histogram import NBINS, RDHistogram, bin_index

_EXACT = 8


class PoolLocality:
    """Accumulated locality statistics of one (thread, pool)."""

    __slots__ = (
        "priv_counts", "priv_cold", "priv_inval",
        "glob_counts", "glob_cold",
        "n_accesses", "n_stores",
    )

    def __init__(self) -> None:
        self.priv_counts = np.zeros(NBINS, dtype=np.float64)
        self.priv_cold = 0
        self.priv_inval = 0
        self.glob_counts = np.zeros(NBINS, dtype=np.float64)
        self.glob_cold = 0
        self.n_accesses = 0
        self.n_stores = 0

    def private_hist(self) -> RDHistogram:
        return RDHistogram(
            counts=self.priv_counts.copy(),
            cold=self.priv_cold,
            inval=self.priv_inval,
        )

    def shared_hist(self) -> RDHistogram:
        return RDHistogram(
            counts=self.glob_counts.copy(), cold=self.glob_cold
        )


class LocalityCollector:
    """Replays the interleaved data-access stream of all threads."""

    def __init__(self, n_threads: int) -> None:
        self.n_threads = n_threads
        self.global_seq = 0
        #: line -> global sequence number of the last access (any thread).
        self.global_last: Dict[int, int] = {}
        #: per thread: line -> (thread counter, global seq) at last access.
        self.priv_last: List[Dict[int, Tuple[int, int]]] = [
            {} for _ in range(n_threads)
        ]
        self.priv_count = [0] * n_threads
        #: line -> (writer thread, global seq of the write).
        self.last_write: Dict[int, Tuple[int, int]] = {}

    def process(
        self,
        tid: int,
        addrs: np.ndarray,
        stores: np.ndarray,
        pool: PoolLocality,
    ) -> None:
        """Feed one chunk's memory accesses (in program order).

        ``addrs`` are cache-line indices; ``stores`` is a boolean mask of
        the same length marking store accesses.
        """
        if len(addrs) == 0:
            return
        global_last = self.global_last
        priv_last = self.priv_last[tid]
        last_write = self.last_write
        g = self.global_seq
        c = self.priv_count[tid]
        priv_counts = pool.priv_counts
        glob_counts = pool.glob_counts
        addrs_list = addrs.tolist()
        stores_list = stores.tolist()
        for line, is_store in zip(addrs_list, stores_list):
            gl = global_last.get(line)
            if gl is None:
                pool.glob_cold += 1
            else:
                rd = g - gl - 1
                if rd < _EXACT:
                    glob_counts[rd] += 1
                else:
                    glob_counts[bin_index(rd)] += 1
            global_last[line] = g
            pl = priv_last.get(line)
            if pl is None:
                pool.priv_cold += 1
            else:
                pcount, pgseq = pl
                w = last_write.get(line)
                if w is not None and w[0] != tid and w[1] > pgseq:
                    pool.priv_inval += 1
                else:
                    rd = c - pcount - 1
                    if rd < _EXACT:
                        priv_counts[rd] += 1
                    else:
                        priv_counts[bin_index(rd)] += 1
            priv_last[line] = (c, g)
            if is_store:
                last_write[line] = (tid, g)
                pool.n_stores += 1
            g += 1
            c += 1
        self.global_seq = g
        self.priv_count[tid] = c
        pool.n_accesses += len(addrs_list)


class FetchLocality:
    """Per-thread instruction-fetch reuse-distance collector.

    Fetches are line-granular (consecutive ops on the same line collapse
    into one fetch); the resulting distribution drives L1-I and deeper
    instruction-miss prediction.  Instruction lines are read-only, so no
    coherence handling is needed.
    """

    __slots__ = ("last", "count")

    def __init__(self) -> None:
        self.last: Dict[int, int] = {}
        self.count = 0

    def process(self, lines: np.ndarray, hist: RDHistogram) -> int:
        """Feed one chunk's fetch stream; returns the number of fetches."""
        if len(lines) == 0:
            return 0
        last = self.last
        c = self.count
        counts = hist.counts
        for line in lines.tolist():
            prev = last.get(line)
            if prev is None:
                hist.cold += 1
            else:
                rd = c - prev - 1
                if rd < _EXACT:
                    counts[rd] += 1
                else:
                    counts[bin_index(rd)] += 1
            last[line] = c
            c += 1
        n = c - self.count
        self.count = c
        return n
