"""Multithreaded reuse-distance collection (StatStack inputs, §III-A).

Two distance notions per the paper's Fig. 2:

* **private**: accesses by the *same thread* between two accesses by
  that thread to a line (drives private L1/L2 miss prediction).  If any
  other thread *wrote* the line in between, the reuse is broken by
  coherence and recorded as an invalidation (infinite distance).
* **global**: accesses by *any thread* since the last access to the
  line by any thread (drives shared-LLC miss prediction; captures both
  positive interference from sharing and negative interference from
  competition).

The collector is fed by the profiler's functional replay in chunk
interleaving order.

Vectorized engine
-----------------
Chunks are processed with array algorithms instead of a per-access
Python loop:

1. The chunk's accesses are grouped by cache line with one unique-key
   quicksort of the packed key ``(line - min) << shift | position``
   (see :func:`_group_by_line`) — program order is preserved inside
   each group, as with a stable argsort but ~10x cheaper.  Consecutive
   entries of a group are *intra-chunk* reuse pairs; their distance is
   the difference of their chunk positions minus one.
   Because only one thread runs inside a chunk, its thread-local
   counter and the global sequence number advance in lockstep, so the
   same distance array feeds both the private and the global
   histogram, and a chunk's own stores can never coherence-invalidate
   its own reuses.
2. The *first* access of each group consults the cross-chunk
   carry-over state with vectorized gathers; the *last* access of each
   group (and the last store per line) updates it with vectorized
   scatters.  Gathers strictly precede scatters, so every
   first-in-chunk access sees the chunk-entry state — exactly what the
   scalar replay sees, since a line's first chunk access cannot be
   preceded by a same-chunk store to that line.
3. Distances are bulk-binned via :func:`repro.profiler.histogram.
   bin_counts`; the bin counts are integer-valued, so float64
   accumulation is exact and order-independent (bit-identical to
   scalar accumulation).

Carry-over state and its invariants
-----------------------------------
Sparse 64-bit line indices are interned into compact dense ids by
:class:`_LineTable`, a two-level sorted table probed with
``np.searchsorted`` — no Python dict on the hot path, and amortized
O(1) interning even when every chunk streams over fresh lines.  All
carry-over arrays are indexed by that id:

* ``_glob_last[id]`` — global sequence number of the last access to
  the line by any thread; ``-1`` when untouched (global cold miss).
* ``_priv_pos[t, id]`` / ``_priv_gseq[t, id]`` — thread ``t``'s access
  counter and the global sequence number at its last access to the
  line; ``-1`` when the thread never touched it (private cold miss).
* ``_write_tid[id]`` / ``_write_seq[id]`` — thread and global sequence
  number of the last store to the line; ``-1`` when never written.

A reuse by thread ``t`` is coherence-invalidated iff
``_write_tid[id] != t`` and ``_write_seq[id] > _priv_gseq[t, id]``
(someone else wrote the line after ``t``'s previous access).

The original scalar implementation survives as an executable
specification in :mod:`repro.profiler.reference`;
``tests/test_locality_vectorized.py`` asserts bit-for-bit equivalence
on randomized multi-thread interleavings and real workloads.
"""

from __future__ import annotations

import numpy as np

from repro.profiler.histogram import NBINS, RDHistogram, bin_counts

_EXACT = 8


class PoolLocality:
    """Accumulated locality statistics of one (thread, pool)."""

    __slots__ = (
        "priv_counts", "priv_cold", "priv_inval",
        "glob_counts", "glob_cold",
        "n_accesses", "n_stores",
    )

    def __init__(self) -> None:
        self.priv_counts = np.zeros(NBINS, dtype=np.float64)
        self.priv_cold = 0
        self.priv_inval = 0
        self.glob_counts = np.zeros(NBINS, dtype=np.float64)
        self.glob_cold = 0
        self.n_accesses = 0
        self.n_stores = 0

    def private_hist(self) -> RDHistogram:
        return RDHistogram(
            counts=self.priv_counts.copy(),
            cold=self.priv_cold,
            inval=self.priv_inval,
        )

    def shared_hist(self) -> RDHistogram:
        return RDHistogram(
            counts=self.glob_counts.copy(), cold=self.glob_cold
        )


class _LineTable:
    """Interns sparse cache-line indices into dense ids.

    Ids are dense (``0..n-1``) and stable, so state arrays indexed by
    id never need to move when new lines are interned.  The table is
    two-level (sorted ``main`` plus a small sorted ``pend`` of recent
    lines, merged when ``pend`` outgrows a quarter of ``main``) so that
    streaming workloads — every chunk all-new lines — pay amortized
    O(1) per line instead of rebuilding an O(table) array per chunk.
    Queries must arrive sorted: sorted probes keep the binary searches
    branch-predictable, which is worth ~4x on random-access chunks.
    """

    __slots__ = ("main", "main_ids", "pend", "pend_ids", "n")

    def __init__(self) -> None:
        self.main = np.empty(0, dtype=np.int64)
        self.main_ids = np.empty(0, dtype=np.int64)
        self.pend = np.empty(0, dtype=np.int64)
        self.pend_ids = np.empty(0, dtype=np.int64)
        self.n = 0

    @staticmethod
    def _find(
        table: np.ndarray, table_ids: np.ndarray, q: np.ndarray,
        out: np.ndarray, todo: np.ndarray,
    ) -> np.ndarray:
        """Resolve ids of ``q[todo]`` found in one level; returns the
        still-unresolved mask."""
        if not table.size or not todo.any():
            return todo
        pos = np.searchsorted(table, q)
        safe = np.minimum(pos, table.size - 1)
        hit = todo & (table[safe] == q)
        out[hit] = table_ids[pos[hit]]
        return todo & ~hit

    def intern(self, uniq: np.ndarray) -> np.ndarray:
        """Ids for a *sorted, deduplicated* batch of lines, interning
        unseen ones (in ascending line order)."""
        out = np.empty(len(uniq), dtype=np.int64)
        todo = np.ones(len(uniq), dtype=bool)
        todo = self._find(self.main, self.main_ids, uniq, out, todo)
        todo = self._find(self.pend, self.pend_ids, uniq, out, todo)
        n_new = int(todo.sum())
        if n_new:
            new = uniq[todo]
            new_ids = np.arange(self.n, self.n + n_new, dtype=np.int64)
            out[todo] = new_ids
            self.n += n_new
            ins = np.searchsorted(self.pend, new)
            self.pend = np.insert(self.pend, ins, new)
            self.pend_ids = np.insert(self.pend_ids, ins, new_ids)
            if self.pend.size > max(1024, self.main.size // 4):
                ins = np.searchsorted(self.main, self.pend)
                self.main = np.insert(self.main, ins, self.pend)
                self.main_ids = np.insert(
                    self.main_ids, ins, self.pend_ids
                )
                self.pend = np.empty(0, dtype=np.int64)
                self.pend_ids = np.empty(0, dtype=np.int64)
        return out


def _grown(arr: np.ndarray, cap: int, fill: int) -> np.ndarray:
    """``arr`` extended along its last axis to capacity ``cap``."""
    shape = arr.shape[:-1] + (cap,)
    out = np.full(shape, fill, dtype=arr.dtype)
    out[..., : arr.shape[-1]] = arr
    return out


def _group_by_line(addrs: np.ndarray):
    """Group a chunk's accesses by cache line, program order preserved.

    Returns ``(pos_sorted, line_sorted)``: chunk positions and line
    indices reordered so lines ascend and positions ascend within each
    line's group — the ordering a stable argsort would produce.  The
    fast path packs ``(line - line.min()) << shift | position`` into one
    int64 and runs a single unique-key quicksort, which is ~10x cheaper
    than a stable argsort; chunks whose line *range* overflows the pack
    (possible only for extreme sparsity) fall back to the argsort.
    """
    n = len(addrs)
    shift = max(1, (n - 1).bit_length())
    base = addrs.min()
    rel = addrs - base
    if int(rel.max()) >> (62 - shift) == 0:
        key = np.sort((rel << shift) | np.arange(n, dtype=np.int64))
        return key & ((1 << shift) - 1), (key >> shift) + base
    # Range too wide to pack: group with an unstable quicksort, then
    # stabilize by sorting the dense (group, position) pack.
    order = np.argsort(addrs)
    vs = addrs[order]
    first = np.empty(n, dtype=bool)
    first[0] = True
    first[1:] = vs[1:] != vs[:-1]
    gid = np.cumsum(first) - 1
    key = np.sort((gid << shift) | order)
    return key & ((1 << shift) - 1), vs[first][key >> shift]


class LocalityCollector:
    """Replays the interleaved data-access stream of all threads."""

    def __init__(self, n_threads: int) -> None:
        self.n_threads = n_threads
        self.global_seq = 0
        self.priv_count = [0] * n_threads
        self._table = _LineTable()
        self._glob_last = np.empty(0, dtype=np.int64)
        self._priv_pos = np.empty((n_threads, 0), dtype=np.int64)
        self._priv_gseq = np.empty((n_threads, 0), dtype=np.int64)
        self._write_tid = np.empty(0, dtype=np.int64)
        self._write_seq = np.empty(0, dtype=np.int64)

    def _reserve(self, n: int) -> None:
        """Grow the carry-over arrays to hold at least ``n`` line ids."""
        cap = self._glob_last.shape[0]
        if cap >= n:
            return
        cap = max(n, 2 * cap, 1024)
        self._glob_last = _grown(self._glob_last, cap, -1)
        self._priv_pos = _grown(self._priv_pos, cap, -1)
        self._priv_gseq = _grown(self._priv_gseq, cap, -1)
        self._write_tid = _grown(self._write_tid, cap, -1)
        self._write_seq = _grown(self._write_seq, cap, -1)

    def process(
        self,
        tid: int,
        addrs: np.ndarray,
        stores: np.ndarray,
        pool: PoolLocality,
    ) -> None:
        """Feed one chunk's memory accesses (in program order).

        ``addrs`` are cache-line indices; ``stores`` is a boolean mask of
        the same length marking store accesses.
        """
        n = len(addrs)
        if n == 0:
            return
        addrs = np.asarray(addrs, dtype=np.int64)
        stores = np.asarray(stores, dtype=bool)
        g0 = self.global_seq
        c0 = self.priv_count[tid]

        pos_sorted, line_sorted = _group_by_line(addrs)
        first = np.empty(n, dtype=bool)
        first[0] = True
        first[1:] = line_sorted[1:] != line_sorted[:-1]

        # Intra-chunk reuse pairs: thread counter and global sequence
        # advance in lockstep within a chunk, so one distance array
        # serves both notions; same-chunk stores are by this thread and
        # therefore never invalidate.
        within = ~first[1:]
        if within.any():
            intra = bin_counts(
                pos_sorted[1:][within] - pos_sorted[:-1][within] - 1
            )
            pool.priv_counts += intra
            pool.glob_counts += intra

        ids = self._table.intern(line_sorted[first])
        self._reserve(self._table.n)
        first_pos = pos_sorted[first]
        last = np.empty(n, dtype=bool)
        last[-1] = True
        last[:-1] = first[1:]
        last_pos = pos_sorted[last]

        # Gathers: chunk-entry carry-over state for first-in-chunk
        # accesses (must precede all scatters below).
        gl = self._glob_last[ids]
        pp = self._priv_pos[tid, ids]
        pg = self._priv_gseq[tid, ids]
        wt = self._write_tid[ids]
        ws = self._write_seq[ids]

        seen_g = gl >= 0
        pool.glob_cold += int(len(ids) - seen_g.sum())
        if seen_g.any():
            pool.glob_counts += bin_counts(
                g0 + first_pos[seen_g] - gl[seen_g] - 1
            )

        seen_p = pp >= 0
        pool.priv_cold += int(len(ids) - seen_p.sum())
        inval = seen_p & (wt >= 0) & (wt != tid) & (ws > pg)
        pool.priv_inval += int(inval.sum())
        fine = seen_p & ~inval
        if fine.any():
            pool.priv_counts += bin_counts(
                c0 + first_pos[fine] - pp[fine] - 1
            )

        # Scatters: chunk-exit carry-over state.
        self._glob_last[ids] = g0 + last_pos
        self._priv_pos[tid, ids] = c0 + last_pos
        self._priv_gseq[tid, ids] = g0 + last_pos
        n_stores = int(stores.sum())
        if n_stores:
            # Last store per line: group index per sorted position, the
            # final store inside each group wins (program order within a
            # group is ascending).
            sidx = np.flatnonzero(stores[pos_sorted])
            sgid = np.cumsum(first)[sidx] - 1
            slast = np.empty(len(sidx), dtype=bool)
            slast[-1] = True
            slast[:-1] = sgid[1:] != sgid[:-1]
            self._write_tid[ids[sgid[slast]]] = tid
            self._write_seq[ids[sgid[slast]]] = g0 + pos_sorted[sidx[slast]]

        self.global_seq = g0 + n
        self.priv_count[tid] = c0 + n
        pool.n_accesses += n
        pool.n_stores += n_stores


class FetchLocality:
    """Per-thread instruction-fetch reuse-distance collector.

    Fetches are line-granular (consecutive ops on the same line collapse
    into one fetch); the resulting distribution drives L1-I and deeper
    instruction-miss prediction.  Instruction lines are read-only, so no
    coherence handling is needed — the engine is the single-stream
    specialization of :class:`LocalityCollector` above.
    """

    __slots__ = ("count", "_table", "_last")

    def __init__(self) -> None:
        self.count = 0
        self._table = _LineTable()
        self._last = np.empty(0, dtype=np.int64)

    def process(self, lines: np.ndarray, hist: RDHistogram) -> int:
        """Feed one chunk's fetch stream; returns the number of fetches."""
        n = len(lines)
        if n == 0:
            return 0
        lines = np.asarray(lines, dtype=np.int64)
        c0 = self.count

        pos_sorted, line_sorted = _group_by_line(lines)
        first = np.empty(n, dtype=bool)
        first[0] = True
        first[1:] = line_sorted[1:] != line_sorted[:-1]
        last = np.empty(n, dtype=bool)
        last[-1] = True
        last[:-1] = first[1:]

        within = ~first[1:]
        if within.any():
            hist.counts += bin_counts(
                pos_sorted[1:][within] - pos_sorted[:-1][within] - 1
            )

        ids = self._table.intern(line_sorted[first])
        if self._last.shape[0] < self._table.n:
            self._last = _grown(
                self._last, max(self._table.n, 2 * self._last.shape[0], 1024),
                -1,
            )
        prev = self._last[ids]
        seen = prev >= 0
        hist.cold += int(len(ids) - seen.sum())
        if seen.any():
            hist.counts += bin_counts(
                c0 + pos_sorted[first][seen] - prev[seen] - 1
            )

        self._last[ids] = c0 + pos_sorted[last]
        self.count = c0 + n
        return n
