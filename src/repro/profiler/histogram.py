"""Log-binned reuse-distance histograms.

Reuse distances span many orders of magnitude, so we bin them at
quarter-octave resolution: distances below 8 get exact bins, larger
distances share four bins per power of two.  StatStack's accuracy is
insensitive to sub-quarter-octave resolution while storage stays at a
couple of hundred counters per histogram.

Distances are *counts of intervening accesses* (0 = immediate reuse).
An "infinite" distance records a reuse broken by a remote write
(coherence invalidation, paper §III-A) — kept separately because it is
a guaranteed miss at any capacity.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Exact bins for distances 0..7.
_EXACT = 8
#: Quarter-octave bins cover distances up to 2^40.
_MAX_EXP = 40
NBINS = _EXACT + 4 * (_MAX_EXP - 3)


def bin_index(rd: int) -> int:
    """Histogram bin for reuse distance ``rd``."""
    if rd < _EXACT:
        return rd
    b = rd.bit_length() - 1
    quarter = (rd >> (b - 2)) & 3
    idx = _EXACT + 4 * (b - 3) + quarter
    return idx if idx < NBINS else NBINS - 1


def _bin_indices_long(rds: np.ndarray) -> np.ndarray:
    """Vectorized :func:`bin_index`, arbitrary distances.

    ``floor(log2)`` is taken from the float64 exponent via ``np.frexp``
    (exact for distances < 2^53, far beyond any stream length), which
    keeps the whole computation in cheap branchless integer ops.
    """
    rds = np.asarray(rds, dtype=np.int64)
    b = np.frexp(rds)[1] - 1  # floor(log2(rd)) for rd > 0
    quarter = (rds >> np.maximum(b - 2, 0)) & 3
    idx = (b.astype(np.int64) << 2) + quarter - 4
    np.minimum(idx, NBINS - 1, out=idx)
    return np.where(rds < _EXACT, rds, idx)


#: Bin lookup table for the common case: distances below 2^16 resolve
#: with a single cache-resident gather.
_LUT_BITS = 16
_LUT = None  # built lazily to keep import light


def _bin_indices(rds: np.ndarray) -> np.ndarray:
    """Vectorized :func:`bin_index` (table-driven fast path)."""
    global _LUT
    if _LUT is None:
        _LUT = _bin_indices_long(
            np.arange(1 << _LUT_BITS, dtype=np.int64)
        ).astype(np.int16)
    rds = np.asarray(rds, dtype=np.int64)
    big = rds >> _LUT_BITS
    if not big.any():
        return _LUT[rds]
    out = _LUT[np.minimum(rds, (1 << _LUT_BITS) - 1)].astype(np.int64)
    long_mask = big != 0
    out[long_mask] = _bin_indices_long(rds[long_mask])
    return out


def bin_counts(rds: np.ndarray) -> np.ndarray:
    """Per-bin counts of a batch of reuse distances (len == NBINS).

    The bulk-binning primitive of the vectorized locality engine: the
    result is integer-valued, so adding it into a float64 ``counts``
    array is exact and therefore bit-identical to binning the distances
    one at a time in any order.
    """
    if len(rds) == 0:
        return np.zeros(NBINS, dtype=np.float64)
    return np.bincount(_bin_indices(rds), minlength=NBINS).astype(
        np.float64
    )


def _representatives() -> np.ndarray:
    """Representative distance per bin (midpoint of the bin's range)."""
    reps = np.empty(NBINS, dtype=np.float64)
    reps[:_EXACT] = np.arange(_EXACT)
    for idx in range(_EXACT, NBINS):
        k = idx - _EXACT
        b = 3 + k // 4
        quarter = k % 4
        lo = (1 << b) + quarter * (1 << (b - 2))
        hi = lo + (1 << (b - 2))
        reps[idx] = (lo + hi - 1) / 2.0
    return reps


_REPS = _representatives()


def bin_rep(idx: int) -> float:
    """Representative reuse distance of bin ``idx``."""
    return float(_REPS[idx])


class RDHistogram:
    """A reuse-distance distribution.

    Attributes
    ----------
    counts:
        Per-bin access counts (finite reuse distances).
    cold:
        First-touch accesses (no prior access to the line).
    inval:
        Reuses broken by a remote write — infinite-distance entries.
    """

    __slots__ = ("counts", "cold", "inval")

    def __init__(self, counts: np.ndarray = None, cold: int = 0,
                 inval: int = 0):
        self.counts = (
            np.zeros(NBINS, dtype=np.float64) if counts is None
            else np.asarray(counts, dtype=np.float64)
        )
        if len(self.counts) != NBINS:
            raise ValueError(f"expected {NBINS} bins")
        self.cold = int(cold)
        self.inval = int(inval)

    def add(self, rd: int) -> None:
        self.counts[bin_index(rd)] += 1

    def add_many(self, rds: np.ndarray) -> None:
        if len(rds):
            self.counts += bin_counts(rds)

    def add_cold(self, n: int = 1) -> None:
        self.cold += n

    def add_inval(self, n: int = 1) -> None:
        self.inval += n

    @property
    def n_finite(self) -> float:
        """Number of recorded finite reuses."""
        return float(self.counts.sum())

    @property
    def n_total(self) -> float:
        """All recorded accesses: finite + cold + invalidated."""
        return self.n_finite + self.cold + self.inval

    def merge(self, other: "RDHistogram") -> None:
        self.counts += other.counts
        self.cold += other.cold
        self.inval += other.inval

    def nonzero(self) -> Tuple[np.ndarray, np.ndarray]:
        """(representative distances, counts) for non-empty bins."""
        idx = np.flatnonzero(self.counts)
        return _REPS[idx], self.counts[idx]

    def mean_finite(self) -> float:
        """Mean finite reuse distance (0 when empty)."""
        n = self.n_finite
        if n == 0:
            return 0.0
        return float((_REPS * self.counts).sum() / n)

    def scaled(self, factor: float) -> "RDHistogram":
        """Histogram with all distances multiplied by ``factor``.

        Used to translate a distribution between access-stream
        granularities (e.g. per-thread vs global streams); counts are
        preserved, distances move bins.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        out = RDHistogram(cold=self.cold, inval=self.inval)
        idx = np.flatnonzero(self.counts)
        if len(idx):
            new_rd = np.maximum(_REPS[idx] * factor, 0).astype(np.int64)
            new_bins = _bin_indices(new_rd)
            np.add.at(out.counts, new_bins, self.counts[idx])
        return out

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        idx = np.flatnonzero(self.counts)
        return {
            "bins": idx.tolist(),
            "counts": self.counts[idx].tolist(),
            "cold": self.cold,
            "inval": self.inval,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RDHistogram":
        hist = cls(cold=data["cold"], inval=data["inval"])
        hist.counts[np.asarray(data["bins"], dtype=np.int64)] = np.asarray(
            data["counts"], dtype=np.float64
        )
        return hist

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RDHistogram):
            return NotImplemented
        return (
            self.cold == other.cold
            and self.inval == other.inval
            and np.array_equal(self.counts, other.counts)
        )
