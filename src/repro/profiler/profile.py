"""The microarchitecture-independent profile data model.

A :class:`WorkloadProfile` is what the paper's Pin tool emits: it is
collected once and then drives predictions for arbitrarily many target
configurations.  Statistics are pooled per *static code region* (the
synthetic analogue of a function/loop nest): every dynamic segment
carries a reference to its pool, so per-epoch predictions reuse pooled
statistics scaled by the segment's instruction count.

The whole profile serializes to JSON (``to_dict``/``from_dict``), which
is the "one-time-cost profile" artifact of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.profiler.histogram import RDHistogram
from repro.workloads.ir import OP_CLASSES, SyncKind, SyncOp

#: Pool key: base instruction-cache line of the code region, or None for
#: empty (pure-synchronization) segments.
PoolKey = Optional[int]


@dataclass
class ILPTable:
    """ILP as a function of instruction window and load latency.

    Measured by micro-trace critical-path analysis with canonical
    (ISA-level) execution latencies; the load latency axis lets the
    predictor fold the *average* data-cache hit latency of the target
    hierarchy into the dependence chains (Van den Steen et al. [37]).
    """

    windows: Tuple[int, ...]
    load_lats: Tuple[int, ...]
    ilp: np.ndarray  # shape (len(windows), len(load_lats))
    #: Mean number of loads in a branch's backward dependence slice
    #: (reach limited to the window) — the exposure of branch
    #: resolution to outstanding cache misses (Eq. 1's ``c_res``).
    branch_loads: np.ndarray = None  # shape (len(windows),)
    #: Load parallelism per window: loads in the window divided by the
    #: longest transitive load-to-load chain — the dependence-imposed
    #: ceiling on overlapping memory misses (drives the MLP model).
    load_par: np.ndarray = None  # shape (len(windows),)

    def __post_init__(self) -> None:
        self.ilp = np.asarray(self.ilp, dtype=np.float64)
        if self.ilp.shape != (len(self.windows), len(self.load_lats)):
            raise ValueError("ILP table shape mismatch")
        if (self.ilp <= 0).any():
            raise ValueError("ILP values must be positive")
        if self.branch_loads is None:
            self.branch_loads = np.zeros(len(self.windows))
        else:
            self.branch_loads = np.asarray(
                self.branch_loads, dtype=np.float64
            )
        if self.branch_loads.shape != (len(self.windows),):
            raise ValueError("branch slice-load shape mismatch")
        if (self.branch_loads < 0).any():
            raise ValueError("branch slice-load counts must be >= 0")
        if self.load_par is None:
            self.load_par = np.ones(len(self.windows), dtype=np.float64)
        else:
            self.load_par = np.asarray(self.load_par, dtype=np.float64)
        if self.load_par.shape != (len(self.windows),):
            raise ValueError("load-parallelism shape mismatch")
        if (self.load_par < 1.0 - 1e-9).any():
            raise ValueError("load parallelism must be >= 1")

    def lookup_load_par(self, window: int) -> float:
        """Interpolated load parallelism at a window size (log2-linear)."""
        return self._window_interp(self.load_par, window)

    def _bilinear(
        self, grid: np.ndarray, window: int, load_lat: float
    ) -> float:
        """Bilinear interpolation (log2 in window, linear in latency)."""
        w = float(np.clip(window, self.windows[0], self.windows[-1]))
        lat = float(
            np.clip(load_lat, self.load_lats[0], self.load_lats[-1])
        )
        wgrid = np.log2(np.asarray(self.windows, dtype=np.float64))
        lgrid = np.asarray(self.load_lats, dtype=np.float64)
        wi = int(np.searchsorted(wgrid, np.log2(w), side="right") - 1)
        wi = min(max(wi, 0), len(self.windows) - 2) if len(
            self.windows
        ) > 1 else 0
        li = int(np.searchsorted(lgrid, lat, side="right") - 1)
        li = min(max(li, 0), len(self.load_lats) - 2) if len(
            self.load_lats
        ) > 1 else 0
        if len(self.windows) == 1 and len(self.load_lats) == 1:
            return float(grid[0, 0])
        if len(self.windows) == 1:
            frac = (lat - lgrid[li]) / (lgrid[li + 1] - lgrid[li])
            return float(
                grid[0, li] * (1 - frac) + grid[0, li + 1] * frac
            )
        if len(self.load_lats) == 1:
            frac = (np.log2(w) - wgrid[wi]) / (wgrid[wi + 1] - wgrid[wi])
            return float(
                grid[wi, 0] * (1 - frac) + grid[wi + 1, 0] * frac
            )
        fw = (np.log2(w) - wgrid[wi]) / (wgrid[wi + 1] - wgrid[wi])
        fl = (lat - lgrid[li]) / (lgrid[li + 1] - lgrid[li])
        top = grid[wi, li] * (1 - fl) + grid[wi, li + 1] * fl
        bot = grid[wi + 1, li] * (1 - fl) + grid[wi + 1, li + 1] * fl
        return float(top * (1 - fw) + bot * fw)

    def lookup(self, window: int, load_lat: float) -> float:
        """Interpolated ILP at a window size and average load latency."""
        return self._bilinear(self.ilp, window, load_lat)

    def _window_interp(self, values: np.ndarray, window: int) -> float:
        """Interpolate a per-window vector at ``window`` (log2-linear)."""
        w = float(np.clip(window, self.windows[0], self.windows[-1]))
        if len(self.windows) == 1:
            return float(values[0])
        wgrid = np.log2(np.asarray(self.windows, dtype=np.float64))
        wi = int(np.searchsorted(wgrid, np.log2(w), side="right") - 1)
        wi = min(max(wi, 0), len(self.windows) - 2)
        frac = (np.log2(w) - wgrid[wi]) / (wgrid[wi + 1] - wgrid[wi])
        return float(values[wi] * (1 - frac) + values[wi + 1] * frac)

    def lookup_branch_loads(self, window: int) -> float:
        """Interpolated branch backward-slice load count at a window."""
        return self._window_interp(self.branch_loads, window)

    def equals_exact(self, other: "ILPTable") -> bool:
        """Bit-exact equality on every field.

        The contract between the scalar spec, the fused batch kernel
        and any mega-batch bucketing is float64 *identity*, not
        closeness — this is the predicate the equivalence suites and
        ``bench --check`` pin it with.
        """
        return (
            self.windows == other.windows
            and self.load_lats == other.load_lats
            and np.array_equal(self.ilp, other.ilp)
            and np.array_equal(self.branch_loads, other.branch_loads)
            and np.array_equal(self.load_par, other.load_par)
        )

    def to_dict(self) -> dict:
        return {
            "windows": list(self.windows),
            "load_lats": list(self.load_lats),
            "ilp": self.ilp.tolist(),
            "branch_loads": self.branch_loads.tolist(),
            "load_par": self.load_par.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ILPTable":
        return cls(
            windows=tuple(data["windows"]),
            load_lats=tuple(data["load_lats"]),
            ilp=np.asarray(data["ilp"]),
            branch_loads=np.asarray(data["branch_loads"]),
            load_par=np.asarray(data["load_par"]),
        )


@dataclass
class BranchStats:
    """Microarchitecture-independent branch behaviour of a pool.

    ``floors[h]`` is the weighted irreducible misprediction probability
    of an ideal predictor indexed by (branch PC, h bits of global
    history): ``sum_ctx w_ctx * min(p_taken, 1 - p_taken)``.  This is
    the linear-branch-entropy statistic of De Pestel et al. [10]; the
    predictor-specific model in :mod:`repro.branch.entropy_model` maps
    it to a concrete predictor's miss rate.
    """

    n_branches: int
    taken_rate: float
    floors: Dict[int, float]
    n_static: int
    contexts: Dict[int, int]

    def floor_at(self, depth: float) -> float:
        """Interpolated floor at (possibly fractional) history depth."""
        if not self.floors:
            return 0.0
        keys = sorted(self.floors)
        if depth <= keys[0]:
            return self.floors[keys[0]]
        if depth >= keys[-1]:
            return self.floors[keys[-1]]
        for lo, hi in zip(keys[:-1], keys[1:]):
            if lo <= depth <= hi:
                frac = (depth - lo) / (hi - lo)
                return (
                    self.floors[lo] * (1 - frac) + self.floors[hi] * frac
                )
        return self.floors[keys[-1]]  # pragma: no cover

    def contexts_at(self, depth: float) -> float:
        """Interpolated distinct-context count at a history depth."""
        if not self.contexts:
            return 0.0
        keys = sorted(self.contexts)
        if depth <= keys[0]:
            return float(self.contexts[keys[0]])
        if depth >= keys[-1]:
            return float(self.contexts[keys[-1]])
        for lo, hi in zip(keys[:-1], keys[1:]):
            if lo <= depth <= hi:
                frac = (depth - lo) / (hi - lo)
                return (
                    self.contexts[lo] * (1 - frac)
                    + self.contexts[hi] * frac
                )
        return float(self.contexts[keys[-1]])  # pragma: no cover

    def to_dict(self) -> dict:
        return {
            "n_branches": self.n_branches,
            "taken_rate": self.taken_rate,
            "floors": {str(k): v for k, v in self.floors.items()},
            "n_static": self.n_static,
            "contexts": {str(k): v for k, v in self.contexts.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BranchStats":
        return cls(
            n_branches=data["n_branches"],
            taken_rate=data["taken_rate"],
            floors={int(k): v for k, v in data["floors"].items()},
            n_static=data["n_static"],
            contexts={int(k): v for k, v in data["contexts"].items()},
        )


@dataclass
class DataLocalityStats:
    """StatStack inputs for one pool (paper §III-A, Fig. 2).

    ``private`` uses per-thread access counters (private L1/L2 miss
    prediction, with coherence invalidations recorded as infinite
    distances); ``shared`` uses the global interleaved counter (shared
    LLC miss prediction, capturing positive and negative interference).
    """

    private: RDHistogram = field(default_factory=RDHistogram)
    shared: RDHistogram = field(default_factory=RDHistogram)
    n_accesses: int = 0
    n_stores: int = 0

    def to_dict(self) -> dict:
        return {
            "private": self.private.to_dict(),
            "shared": self.shared.to_dict(),
            "n_accesses": self.n_accesses,
            "n_stores": self.n_stores,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DataLocalityStats":
        return cls(
            private=RDHistogram.from_dict(data["private"]),
            shared=RDHistogram.from_dict(data["shared"]),
            n_accesses=data["n_accesses"],
            n_stores=data["n_stores"],
        )


@dataclass
class EpochProfile:
    """Pooled microarchitecture-independent statistics of a code region."""

    key: int
    n_instructions: int
    n_segments: int
    class_counts: np.ndarray  # len(OP_CLASSES)
    ilp: ILPTable
    branch: BranchStats
    data: DataLocalityStats
    ifetch: RDHistogram
    n_fetches: int
    #: Fraction of loads whose producer is another load (MLP throttling).
    load_chain_frac: float
    #: Raw micro-trace samples (op, dep) — microarchitecture-independent
    #: dependence structure used by the per-load-latency ILP replay.
    samples: List[Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=list
    )

    @property
    def mix(self) -> Dict[str, float]:
        """Instruction-mix fractions by class name."""
        total = max(1, int(self.class_counts.sum()))
        return {
            name: float(self.class_counts[i]) / total
            for i, name in enumerate(OP_CLASSES)
        }

    @property
    def loads_per_instruction(self) -> float:
        return self.mix.get("load", 0.0)

    @property
    def mem_per_instruction(self) -> float:
        m = self.mix
        return m.get("load", 0.0) + m.get("store", 0.0)

    @property
    def branches_per_instruction(self) -> float:
        return self.mix.get("branch", 0.0)

    @property
    def fetches_per_instruction(self) -> float:
        if self.n_instructions == 0:
            return 0.0
        return self.n_fetches / self.n_instructions

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "n_instructions": self.n_instructions,
            "n_segments": self.n_segments,
            "class_counts": self.class_counts.tolist(),
            "ilp": self.ilp.to_dict(),
            "branch": self.branch.to_dict(),
            "data": self.data.to_dict(),
            "ifetch": self.ifetch.to_dict(),
            "n_fetches": self.n_fetches,
            "load_chain_frac": self.load_chain_frac,
            "samples": [
                [np.asarray(o).tolist(), np.asarray(d).tolist()]
                for o, d in self.samples
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EpochProfile":
        return cls(
            key=data["key"],
            n_instructions=data["n_instructions"],
            n_segments=data["n_segments"],
            class_counts=np.asarray(data["class_counts"], dtype=np.int64),
            ilp=ILPTable.from_dict(data["ilp"]),
            branch=BranchStats.from_dict(data["branch"]),
            data=DataLocalityStats.from_dict(data["data"]),
            ifetch=RDHistogram.from_dict(data["ifetch"]),
            n_fetches=data["n_fetches"],
            load_chain_frac=data["load_chain_frac"],
            samples=[
                (
                    np.asarray(o, dtype=np.uint8),
                    np.asarray(d, dtype=np.int32),
                )
                for o, d in data.get("samples", [])
            ],
        )


def _sync_to_dict(event: SyncOp) -> dict:
    return {
        "kind": event.kind.value,
        "obj": event.obj,
        "participants": list(event.participants),
        "items": event.items,
    }


def _sync_from_dict(data: dict) -> SyncOp:
    return SyncOp(
        kind=SyncKind(data["kind"]),
        obj=data["obj"],
        participants=tuple(data["participants"]),
        items=data["items"],
    )


@dataclass
class SegmentRef:
    """One dynamic segment: instruction count, pool link, sync event."""

    epoch: int
    label: str
    event: SyncOp
    n_instructions: int
    key: PoolKey

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "label": self.label,
            "event": _sync_to_dict(self.event),
            "n_instructions": self.n_instructions,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentRef":
        return cls(
            epoch=data["epoch"],
            label=data["label"],
            event=_sync_from_dict(data["event"]),
            n_instructions=data["n_instructions"],
            key=data["key"],
        )


@dataclass
class ThreadProfile:
    """All profiled state of one thread."""

    thread_id: int
    segments: List[SegmentRef]
    pools: Dict[int, EpochProfile]

    @property
    def n_instructions(self) -> int:
        return sum(seg.n_instructions for seg in self.segments)

    def to_dict(self) -> dict:
        return {
            "thread_id": self.thread_id,
            "segments": [s.to_dict() for s in self.segments],
            "pools": {str(k): p.to_dict() for k, p in self.pools.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ThreadProfile":
        return cls(
            thread_id=data["thread_id"],
            segments=[SegmentRef.from_dict(s) for s in data["segments"]],
            pools={
                int(k): EpochProfile.from_dict(p)
                for k, p in data["pools"].items()
            },
        )


@dataclass
class WorkloadProfile:
    """The one-time-cost, microarchitecture-independent profile (Fig. 1)."""

    name: str
    n_threads: int
    threads: List[ThreadProfile]
    seed: int = 0

    @property
    def n_instructions(self) -> int:
        return sum(t.n_instructions for t in self.threads)

    def sync_event_counts(self) -> Dict[str, int]:
        """Dynamic synchronization event counts (Table III's columns).

        Counts follow the paper's categories: lock/unlock pairs count as
        one critical section; plain and condvar barriers count once per
        thread-arrival pair... more precisely, as in Table III, we count
        dynamic *events*: critical sections (lock acquisitions), barriers
        (per-barrier, not per-thread) and condition-variable operations
        (waits/posts).
        """
        locks = 0
        barrier_ids = set()
        cv_events = 0
        for t in self.threads:
            for seg in t.segments:
                kind = seg.event.kind
                if kind is SyncKind.LOCK:
                    locks += 1
                elif kind is SyncKind.BARRIER:
                    barrier_ids.add(seg.event.obj)
                elif kind is SyncKind.CV_BARRIER:
                    cv_events += 1
                elif kind in (SyncKind.PC_PUT, SyncKind.PC_GET):
                    cv_events += 1
        return {
            "critical_sections": locks,
            "barriers": len(barrier_ids),
            "condition_variables": cv_events,
        }

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "n_threads": self.n_threads,
            "seed": self.seed,
            "threads": [t.to_dict() for t in self.threads],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadProfile":
        return cls(
            name=data["name"],
            n_threads=data["n_threads"],
            seed=data.get("seed", 0),
            threads=[ThreadProfile.from_dict(t) for t in data["threads"]],
        )
