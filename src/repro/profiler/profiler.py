"""Profiler orchestration: trace -> :class:`WorkloadProfile`.

The profiler performs a *functional* replay of the workload (unit cost
per instruction) through the shared DES scheduler so that concurrent
threads interleave their memory streams chunk-by-chunk — the stand-in
for the particular interleaving a Pin profiling run would observe
(paper §III-A notes predictions are robust to the profiling
interleaving; tests verify this).

Statistics are pooled per (thread, code region): segments generated
from the same static code share one pool, exactly as a Pin tool
aggregates by static program location.  Pooling keeps profiles compact
even for workloads with millions of tiny critical sections.

Performance shape: all per-segment index work (operand-class masks,
memory/branch extraction, synthetic PCs, fetch-line collapsing) is
hoisted out of the scheduler callback into a single precompute pass
(:func:`_prepare_thread`), and the reuse-distance analysis is deferred:
the callback merely records the chunk interleaving, which the
whole-trace engine in :mod:`repro.profiler.batch` then processes with
O(N log N) total array work.  ILP tables are likewise built after the
replay, for *all* pools at once: the micro-trace samples are
mega-batched into one fused flat-grid lockstep advance per width
bucket (:func:`repro.profiler.ilp_batch.build_ilp_tables` over
:func:`repro.profiler.ilp_batch.batch_scoreboard_pools`), whose
Python-level cost is O(MICROTRACE_LEN) per bucket regardless of pool,
window-grid or latency-grid count, and which can memoize per-pool
tables across runs via an
:class:`~repro.profiler.ilp_batch.ILPTableCache`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.profiler.batch import replay_data, replay_fetch
from repro.profiler.branchprof import branch_stats
from repro.profiler.histogram import RDHistogram
from repro.profiler.ilp import MICROTRACE_LEN
from repro.profiler.ilp_batch import ILPTableCache, build_ilp_tables
from repro.profiler.locality import PoolLocality
from repro.profiler.profile import (
    DataLocalityStats,
    EpochProfile,
    ILPTable,
    SegmentRef,
    ThreadProfile,
    WorkloadProfile,
)
from repro.runtime.chunking import chunk_trace
from repro.runtime.scheduler import run_schedule
from repro.workloads.engine import expand
from repro.workloads.ir import (
    OP_BRANCH,
    OP_CLASSES,
    OP_LOAD,
    OP_STORE,
    TraceBlock,
    WorkloadTrace,
    fetch_lines,
    instruction_pcs,
)
from repro.workloads.spec import WorkloadSpec

#: Upper bound on branch outcomes retained per pool for entropy analysis.
_BRANCH_CAP = 100_000
#: Micro-trace samples retained per pool for ILP analysis.
ILP_SAMPLES_PER_POOL = 6
#: Segments shorter than this are not sampled for ILP (too little
#: dependence structure to be representative).
ILP_MIN_SEGMENT = 64


def ilp_sample(block: TraceBlock) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """The micro-trace sample the profiler retains for one segment.

    Returns ``None`` for segments below :data:`ILP_MIN_SEGMENT` ops;
    otherwise the first :data:`~repro.profiler.ilp.MICROTRACE_LEN`
    (op, dep) entries, uncopied.  This is the single definition of the
    retention policy — the bench harness replays exactly these samples,
    so keep it in sync by construction.
    """
    n = block.n_instructions
    if n < ILP_MIN_SEGMENT:
        return None
    take = min(n, MICROTRACE_LEN)
    return block.op[:take], block.dep[:take]


class _PoolAccum:
    """Mutable accumulator for one (thread, code-region) pool."""

    __slots__ = (
        "key", "index", "n_instructions", "n_segments", "class_counts",
        "branch_streams", "branch_stored", "ilp_samples",
        "loads", "chained_loads", "locality", "ifetch", "n_fetches",
    )

    def __init__(self, key: int, index: int) -> None:
        self.key = key
        #: Position in the profile-wide pool list (chunk attribution
        #: index for the batch locality engine).
        self.index = index
        self.n_instructions = 0
        self.n_segments = 0
        self.class_counts = np.zeros(len(OP_CLASSES), dtype=np.int64)
        self.branch_streams: List[Tuple[np.ndarray, np.ndarray]] = []
        self.branch_stored = 0
        self.ilp_samples: List[Tuple[np.ndarray, np.ndarray]] = []
        self.loads = 0
        self.chained_loads = 0
        self.locality = PoolLocality()
        self.ifetch = RDHistogram()
        self.n_fetches = 0

    def finalize(self, ilp: ILPTable) -> EpochProfile:
        return EpochProfile(
            key=self.key,
            n_instructions=self.n_instructions,
            n_segments=self.n_segments,
            class_counts=self.class_counts,
            ilp=ilp,
            branch=branch_stats(self.branch_streams),
            data=DataLocalityStats(
                private=self.locality.private_hist(),
                shared=self.locality.shared_hist(),
                n_accesses=self.locality.n_accesses,
                n_stores=self.locality.n_stores,
            ),
            ifetch=self.ifetch,
            n_fetches=self.n_fetches,
            load_chain_frac=(
                self.chained_loads / self.loads if self.loads else 0.0
            ),
            # The micro-traces double as the profile's raw dependence
            # samples; sharing the list (the accumulator is discarded
            # after finalize) avoids a second copy of every sample.
            samples=self.ilp_samples,
        )


class _SegmentPrep:
    """Derived per-segment views, computed once before the replay."""

    __slots__ = (
        "n", "key", "class_counts", "mem_addr", "mem_store",
        "branch_pcs", "branch_taken", "loads", "chained_loads",
        "fetch", "ilp_op", "ilp_dep",
    )


def _prepare_block(block: TraceBlock) -> _SegmentPrep:
    """Hoisted per-segment index computations.

    The scheduler callback used to recompute the memory/branch/load
    index sets and synthetic PCs for every chunk; doing it here, in one
    pass per chunk with shared operand-class masks, keeps the replay
    callback allocation-free.
    """
    prep = _SegmentPrep()
    n = block.n_instructions
    prep.n = n
    if n == 0:
        prep.key = None
        return prep
    prep.key = int(block.iline[0])
    prep.class_counts = block.class_counts()

    is_load = block.op == OP_LOAD
    is_store = block.op == OP_STORE
    mem_idx = np.flatnonzero(is_load | is_store)
    prep.mem_addr = block.addr[mem_idx]
    prep.mem_store = is_store[mem_idx]

    br_idx = np.flatnonzero(block.op == OP_BRANCH)
    if len(br_idx):
        prep.branch_pcs = instruction_pcs(block)[br_idx]
        prep.branch_taken = block.taken[br_idx].astype(np.int64)
    else:
        prep.branch_pcs = None
        prep.branch_taken = None

    load_idx = np.flatnonzero(is_load)
    prep.loads = len(load_idx)
    prep.chained_loads = 0
    if len(load_idx):
        d = block.dep[load_idx]
        producers = load_idx - d
        valid = (d > 0) & (producers >= 0)
        if valid.any():
            prep.chained_loads = int(
                (block.op[producers[valid]] == OP_LOAD).sum()
            )

    prep.fetch = fetch_lines(block)
    sample = ilp_sample(block)
    if sample is not None:
        prep.ilp_op, prep.ilp_dep = sample
    else:
        prep.ilp_op = None
        prep.ilp_dep = None
    return prep


def profile_workload(
    workload: Union[WorkloadSpec, WorkloadTrace],
    chunk: int = 4096,
    ilp_cache: Optional[ILPTableCache] = None,
    trace_cache=None,
) -> WorkloadProfile:
    """Profile a workload once, for use across all target configurations.

    Parameters
    ----------
    workload:
        A spec (expanded deterministically) or an already-expanded trace.
    chunk:
        Interleaving granularity of the functional replay, in
        instructions.  Smaller chunks approximate instruction-grain
        interleaving more closely at higher profiling cost.
    ilp_cache:
        Optional content-addressed memo for per-pool ILP tables;
        pools whose micro-trace samples were profiled before (in this
        process or, with a store-backed cache, any previous run) skip
        the scoreboard replay.
    trace_cache:
        Optional :class:`~repro.experiments.store.TraceCache` a spec
        ``workload`` is expanded through, so re-profiling the same
        spec (or profiling after simulating it) reuses one expansion.
        Without it, specs expand through the shared columnar engine.
    """
    if isinstance(workload, WorkloadSpec):
        trace = (
            trace_cache.get(workload) if trace_cache is not None
            else expand(workload)
        )
    else:
        trace = workload
    ctrace = chunk_trace(trace, chunk)
    n_threads = ctrace.n_threads

    preps = [
        [_prepare_block(seg.block) for seg in t.segments]
        for t in ctrace.threads
    ]
    pools: Dict[Tuple[int, int], _PoolAccum] = {}
    pool_list: List[_PoolAccum] = []
    #: Chunk interleaving in execution order, consumed by the batch
    #: locality engine after the replay.
    data_schedule: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
    fetch_schedule: List[List[Tuple[int, np.ndarray]]] = [
        [] for _ in range(n_threads)
    ]

    def _pool(tid: int, key: int) -> _PoolAccum:
        accum = pools.get((tid, key))
        if accum is None:
            accum = _PoolAccum(key, len(pool_list))
            pools[(tid, key)] = accum
            pool_list.append(accum)
        return accum

    def execute(tid: int, idx: int, start: float) -> float:
        prep = preps[tid][idx]
        n = prep.n
        if n == 0:
            return 0.0
        accum = _pool(tid, prep.key)
        accum.n_instructions += n
        accum.n_segments += 1
        accum.class_counts += prep.class_counts

        if len(prep.mem_addr):
            data_schedule.append(
                (tid, accum.index, prep.mem_addr, prep.mem_store)
            )

        if prep.branch_pcs is not None and accum.branch_stored < _BRANCH_CAP:
            accum.branch_streams.append(
                (prep.branch_pcs, prep.branch_taken)
            )
            accum.branch_stored += len(prep.branch_pcs)

        if (
            len(accum.ilp_samples) < ILP_SAMPLES_PER_POOL
            and prep.ilp_op is not None
        ):
            accum.ilp_samples.append(
                (prep.ilp_op.copy(), prep.ilp_dep.copy())
            )

        accum.loads += prep.loads
        accum.chained_loads += prep.chained_loads

        if len(prep.fetch):
            fetch_schedule[tid].append((accum.index, prep.fetch))
            accum.n_fetches += len(prep.fetch)
        return float(n)

    programs = [
        [seg.event for seg in t.segments] for t in ctrace.threads
    ]
    run_schedule(programs, execute)

    replay_data(
        data_schedule, n_threads, [a.locality for a in pool_list]
    )
    ifetch_hists = [a.ifetch for a in pool_list]
    for tid in range(n_threads):
        replay_fetch(fetch_schedule[tid], ifetch_hists)

    # One fused lockstep advance per width bucket covers every pool's
    # samples (cache hits skip their pools entirely).
    ilp_tables = build_ilp_tables(
        [a.ilp_samples for a in pool_list], cache=ilp_cache
    )

    threads: List[ThreadProfile] = []
    for t in ctrace.threads:
        refs = []
        for seg in t.segments:
            n = seg.block.n_instructions
            key: Optional[int] = int(seg.block.iline[0]) if n else None
            refs.append(
                SegmentRef(
                    epoch=seg.epoch,
                    label=seg.label,
                    event=seg.event,
                    n_instructions=n,
                    key=key,
                )
            )
        thread_pools = {
            key: accum.finalize(ilp_tables[accum.index])
            for (tid, key), accum in pools.items()
            if tid == t.thread_id
        }
        threads.append(
            ThreadProfile(
                thread_id=t.thread_id, segments=refs, pools=thread_pools
            )
        )
    return WorkloadProfile(
        name=ctrace.name,
        n_threads=n_threads,
        threads=threads,
        seed=ctrace.seed,
    )
