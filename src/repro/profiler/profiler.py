"""Profiler orchestration: trace -> :class:`WorkloadProfile`.

The profiler performs a *functional* replay of the workload (unit cost
per instruction) through the shared DES scheduler so that concurrent
threads interleave their memory streams chunk-by-chunk — the stand-in
for the particular interleaving a Pin profiling run would observe
(paper §III-A notes predictions are robust to the profiling
interleaving; tests verify this).

Statistics are pooled per (thread, code region): segments generated
from the same static code share one pool, exactly as a Pin tool
aggregates by static program location.  Pooling keeps profiles compact
even for workloads with millions of tiny critical sections.

Pipeline stages (expand -> prepare -> replay -> collect):

1. **Expand** — the workload spec becomes a trace of contiguous
   per-thread arena columns (:mod:`repro.workloads.engine`), usually
   through a session's content-addressed trace cache.
2. **Prepare** — one whole-segment vectorized pass
   (:func:`_segment_static`) derives every static artifact the replay
   needs: chunk boundaries and pool keys, operand-class counts,
   memory/branch/load index sets, synthetic PCs (with per-chunk
   resets), fetch lines and ILP sample slices — all exposed as
   zero-copy per-chunk views via boundary arrays.  Because these are a
   pure function of the op/iline columns, they are memoized per
   ``(static_key, chunk)`` in a :class:`SegmentPrepCache` — the ~81%
   of repeated segment work across a suite is computed once.
3. **Replay** — the DES scheduler advances in batched strides
   (:func:`repro.runtime.scheduler.run_schedule_batched`): only the
   chunk *interleaving* depends on the replay, so the replay records
   order and nothing else.  Per-pool accumulation is per-thread
   program order and therefore hoisted out of the replay entirely.
4. **Collect** — the interleaved memory stream feeds the whole-trace
   locality engine (:mod:`repro.profiler.batch`), branch statistics go
   through an optional content-addressed memo, and ILP tables are
   mega-batched per width bucket with an
   :class:`~repro.profiler.ilp_batch.ILPTableCache`.

The scalar per-chunk path is preserved as the executable spec
(:func:`profile_workload_reference`, :func:`_prepare_block`); the
equivalence suite pins identical profiles between the two.
"""

from __future__ import annotations

import threading
import warnings
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.obs import span
from repro.profiler.batch import replay_data, replay_fetch
from repro.profiler.branchprof import BranchStatsCache, cached_branch_stats
from repro.profiler.histogram import RDHistogram
from repro.profiler.ilp import MICROTRACE_LEN
from repro.profiler.ilp_batch import ILPTableCache, build_ilp_tables
from repro.profiler.locality import PoolLocality
from repro.profiler.profile import (
    DataLocalityStats,
    EpochProfile,
    ILPTable,
    SegmentRef,
    ThreadProfile,
    WorkloadProfile,
)
from repro.runtime.chunking import _NONE_EVENT, chunk_offsets, chunk_trace
from repro.runtime.scheduler import run_schedule, run_schedule_batched
from repro.workloads.engine import expand
from repro.workloads.ir import (
    OP_BRANCH,
    OP_CLASSES,
    OP_LOAD,
    OP_STORE,
    PC_SLOTS_PER_LINE,
    TraceBlock,
    WorkloadTrace,
    fetch_lines,
    instruction_pcs,
)
from repro.workloads.spec import WorkloadSpec

#: Upper bound on branch outcomes retained per pool for entropy analysis.
_BRANCH_CAP = 100_000
#: Micro-trace samples retained per pool for ILP analysis.
ILP_SAMPLES_PER_POOL = 6
#: Segments shorter than this are not sampled for ILP (too little
#: dependence structure to be representative).
ILP_MIN_SEGMENT = 64


def ilp_sample(block: TraceBlock) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """The micro-trace sample the profiler retains for one segment.

    Returns ``None`` for segments below :data:`ILP_MIN_SEGMENT` ops;
    otherwise the first :data:`~repro.profiler.ilp.MICROTRACE_LEN`
    (op, dep) entries, uncopied.  This is the single definition of the
    retention policy — the bench harness replays exactly these samples,
    so keep it in sync by construction.
    """
    n = block.n_instructions
    if n < ILP_MIN_SEGMENT:
        return None
    take = min(n, MICROTRACE_LEN)
    return block.op[:take], block.dep[:take]


class _PoolAccum:
    """Mutable accumulator for one (thread, code-region) pool."""

    __slots__ = (
        "key", "index", "n_instructions", "n_segments", "class_counts",
        "branch_streams", "branch_stored", "ilp_samples",
        "loads", "chained_loads", "locality", "ifetch", "n_fetches",
    )

    def __init__(self, key: int, index: int) -> None:
        self.key = key
        #: Position in the profile-wide pool list (chunk attribution
        #: index for the batch locality engine).
        self.index = index
        self.n_instructions = 0
        self.n_segments = 0
        self.class_counts = np.zeros(len(OP_CLASSES), dtype=np.int64)
        self.branch_streams: List[Tuple[np.ndarray, np.ndarray]] = []
        self.branch_stored = 0
        self.ilp_samples: List[Tuple[np.ndarray, np.ndarray]] = []
        self.loads = 0
        self.chained_loads = 0
        self.locality = PoolLocality()
        self.ifetch = RDHistogram()
        self.n_fetches = 0

    def finalize(
        self,
        ilp: ILPTable,
        branch_cache: Optional[BranchStatsCache] = None,
    ) -> EpochProfile:
        return EpochProfile(
            key=self.key,
            n_instructions=self.n_instructions,
            n_segments=self.n_segments,
            class_counts=self.class_counts,
            ilp=ilp,
            branch=cached_branch_stats(self.branch_streams, branch_cache),
            data=DataLocalityStats(
                private=self.locality.private_hist(),
                shared=self.locality.shared_hist(),
                n_accesses=self.locality.n_accesses,
                n_stores=self.locality.n_stores,
            ),
            ifetch=self.ifetch,
            n_fetches=self.n_fetches,
            load_chain_frac=(
                self.chained_loads / self.loads if self.loads else 0.0
            ),
            # The micro-traces double as the profile's raw dependence
            # samples; sharing the list (the accumulator is discarded
            # after finalize) avoids a second copy of every sample.
            samples=self.ilp_samples,
        )


class _SegmentPrep:
    """Derived per-segment views, computed once before the replay."""

    __slots__ = (
        "n", "key", "class_counts", "mem_addr", "mem_store",
        "branch_pcs", "branch_taken", "loads", "chained_loads",
        "fetch", "ilp_op", "ilp_dep",
    )


def _prepare_block(block: TraceBlock) -> _SegmentPrep:
    """Hoisted per-segment index computations (the executable spec).

    The vectorized fast path computes the same artifacts arena-wide in
    :func:`_segment_static`; this per-chunk form is what the
    equivalence suite checks it against.
    """
    prep = _SegmentPrep()
    n = block.n_instructions
    prep.n = n
    if n == 0:
        # Zero-length segments (pure-sync epochs) still flow through
        # consumers that touch every slot — leave none unset.
        prep.key = None
        prep.class_counts = np.zeros(len(OP_CLASSES), dtype=np.int64)
        prep.mem_addr = np.zeros(0, dtype=np.int64)
        prep.mem_store = np.zeros(0, dtype=bool)
        prep.branch_pcs = None
        prep.branch_taken = None
        prep.loads = 0
        prep.chained_loads = 0
        prep.fetch = np.zeros(0, dtype=np.int64)
        prep.ilp_op = None
        prep.ilp_dep = None
        return prep
    prep.key = int(block.iline[0])
    prep.class_counts = block.class_counts()

    is_load = block.op == OP_LOAD
    is_store = block.op == OP_STORE
    mem_idx = np.flatnonzero(is_load | is_store)
    prep.mem_addr = block.addr[mem_idx]
    prep.mem_store = is_store[mem_idx]

    br_idx = np.flatnonzero(block.op == OP_BRANCH)
    if len(br_idx):
        prep.branch_pcs = instruction_pcs(block)[br_idx]
        prep.branch_taken = block.taken[br_idx].astype(np.int64)
    else:
        prep.branch_pcs = None
        prep.branch_taken = None

    load_idx = np.flatnonzero(is_load)
    prep.loads = len(load_idx)
    prep.chained_loads = 0
    if len(load_idx):
        d = block.dep[load_idx]
        producers = load_idx - d
        valid = (d > 0) & (producers >= 0)
        if valid.any():
            prep.chained_loads = int(
                (block.op[producers[valid]] == OP_LOAD).sum()
            )

    prep.fetch = fetch_lines(block)
    sample = ilp_sample(block)
    if sample is not None:
        prep.ilp_op, prep.ilp_dep = sample
    else:
        prep.ilp_op = None
        prep.ilp_dep = None
    return prep


# ---------------------------------------------------------------------------
# Vectorized fast path: arena-wide static precompute + batched replay
# ---------------------------------------------------------------------------


class _KeyRun:
    """One maximal run of consecutive same-key chunks in a segment.

    Pool accumulation happens per run, not per chunk: within a run the
    memory / branch / fetch streams are contiguous slices, so the
    per-chunk loop of the spec collapses to a handful of slot updates.
    """

    __slots__ = (
        "key", "n_chunks", "n_instructions", "class_counts", "loads",
        "mem_lo", "mem_hi", "br_lo", "br_cum", "fetch_lo", "fetch_hi",
    )


class _SegmentStatic:
    """Arena-wide static artifacts of one segment at one chunk size.

    A pure function of the block's op/iline columns — the content the
    engine's :attr:`~repro.workloads.ir.TraceBlock.static_key`
    identifies — so instances are shared across every segment expanded
    from the same static code.  All per-chunk data is exposed as
    boundary arrays over whole-segment arrays: consumers slice
    zero-copy views instead of materializing per-chunk objects.
    """

    __slots__ = (
        "n", "n_chunks", "offsets", "keys", "durations", "none_events",
        "runs", "run_of_chunk", "op",
        "mem_idx", "mem_store", "mem_counts",
        "br_idx", "branch_pcs",
        "load_idx", "load_lo", "load_run",
        "fetch_lines", "ilp_entries", "nbytes",
    )


def _segment_static(block: TraceBlock, chunk: int) -> _SegmentStatic:
    """One vectorized pass deriving every static artifact of a segment."""
    st = _SegmentStatic()
    n = block.n_instructions
    st.n = n
    offsets = chunk_offsets(n, chunk)
    st.offsets = offsets
    n_chunks = len(offsets) - 1
    st.n_chunks = n_chunks
    if n == 0:
        st.keys = np.zeros(0, dtype=np.int64)
        st.durations = [0.0]
        st.none_events = []
        st.runs = []
        st.run_of_chunk = np.zeros(0, dtype=np.int32)
        st.op = None
        st.mem_idx = np.zeros(0, dtype=np.int64)
        st.mem_store = np.zeros(0, dtype=bool)
        st.mem_counts = np.zeros(1, dtype=np.int64)
        st.br_idx = np.zeros(0, dtype=np.int64)
        st.branch_pcs = np.zeros(0, dtype=np.int64)
        st.load_idx = np.zeros(0, dtype=np.int64)
        st.load_lo = np.zeros(0, dtype=np.int64)
        st.load_run = np.zeros(0, dtype=np.int32)
        st.fetch_lines = np.zeros(0, dtype=np.int64)
        st.ilp_entries = []
        st.nbytes = 256
        return st

    op = block.op
    iline = block.iline
    st.op = op
    starts = offsets[:-1]
    sizes = np.diff(offsets)
    st.keys = iline[starts].astype(np.int64, copy=True)
    st.durations = [float(s) for s in sizes]
    st.none_events = [_NONE_EVENT] * (n_chunks - 1)

    # Per-chunk operand-class counts, one fused bincount.
    n_classes = len(OP_CLASSES)
    chunk_of = np.repeat(np.arange(n_chunks, dtype=np.int64), sizes)
    class_mat = np.bincount(
        chunk_of * n_classes + op, minlength=n_chunks * n_classes
    ).reshape(n_chunks, n_classes).astype(np.int64)

    is_load = op == OP_LOAD
    is_store = op == OP_STORE
    mem_idx = np.flatnonzero(is_load | is_store)
    st.mem_idx = mem_idx
    st.mem_store = is_store[mem_idx]
    mem_bounds = np.searchsorted(mem_idx, offsets)
    st.mem_counts = np.diff(mem_bounds)

    br_idx = np.flatnonzero(op == OP_BRANCH)
    st.br_idx = br_idx
    br_bounds = np.searchsorted(br_idx, offsets)

    # Synthetic PCs, arena-wide, with the per-chunk offset reset the
    # spec gets from computing instruction_pcs per chunk view.
    pos = np.arange(n, dtype=np.int64)
    changed = np.empty(n, dtype=bool)
    changed[0] = True
    changed[1:] = iline[1:] != iline[:-1]
    changed[starts] = True
    line_start = np.maximum.accumulate(np.where(changed, pos, 0))
    offset_in_line = np.minimum(pos - line_start, PC_SLOTS_PER_LINE - 1)
    st.branch_pcs = (iline * PC_SLOTS_PER_LINE + offset_in_line)[br_idx]

    # Fetch stream: one fetch per line transition, chunk starts forced
    # (the spec's per-chunk fetch_lines always fetches the first line).
    fetch_pos = np.flatnonzero(changed)
    st.fetch_lines = iline[fetch_pos]
    fetch_bounds = np.searchsorted(fetch_pos, offsets)

    load_idx = np.flatnonzero(is_load)
    st.load_idx = load_idx
    load_chunk = np.searchsorted(offsets, load_idx, side="right") - 1
    st.load_lo = offsets[load_chunk]
    load_bounds = np.searchsorted(load_idx, offsets)
    loads_per_chunk = np.diff(load_bounds)

    # Maximal runs of consecutive same-key chunks.
    keys = st.keys
    run_starts = np.flatnonzero(
        np.concatenate(([True], keys[1:] != keys[:-1]))
    )
    run_edges = np.append(run_starts, n_chunks)
    run_of_chunk = np.repeat(
        np.arange(len(run_starts), dtype=np.int32), np.diff(run_edges)
    )
    st.run_of_chunk = run_of_chunk
    st.load_run = run_of_chunk[load_chunk] if len(load_idx) else (
        np.zeros(0, dtype=np.int32)
    )
    runs: List[_KeyRun] = []
    for a, b in zip(run_edges[:-1], run_edges[1:]):
        run = _KeyRun()
        run.key = int(keys[a])
        run.n_chunks = int(b - a)
        run.n_instructions = int(offsets[b] - offsets[a])
        run.class_counts = class_mat[a:b].sum(axis=0)
        run.loads = int(load_bounds[b] - load_bounds[a])
        run.mem_lo = int(mem_bounds[a])
        run.mem_hi = int(mem_bounds[b])
        run.br_lo = int(br_bounds[a])
        #: Cumulative branch counts at the run's chunk edges (relative
        #: to the run) — the chunk-granular retention cap needs them.
        run.br_cum = br_bounds[a:b + 1] - br_bounds[a]
        run.fetch_lo = int(fetch_bounds[a])
        run.fetch_hi = int(fetch_bounds[b])
        runs.append(run)
    st.runs = runs

    # ILP-eligible chunks in order: (run, lo, take, static op slice).
    st.ilp_entries = []
    for c in np.flatnonzero(sizes >= ILP_MIN_SEGMENT):
        lo = int(offsets[c])
        take = int(min(sizes[c], MICROTRACE_LEN))
        st.ilp_entries.append(
            (int(run_of_chunk[c]), lo, take, op[lo:lo + take])
        )

    st.nbytes = int(
        op.nbytes + st.keys.nbytes + offsets.nbytes + mem_idx.nbytes
        + st.mem_store.nbytes + st.mem_counts.nbytes + br_idx.nbytes
        + st.branch_pcs.nbytes + load_idx.nbytes + st.load_lo.nbytes
        + st.load_run.nbytes + run_of_chunk.nbytes
        + st.fetch_lines.nbytes + 64 * max(len(runs), 1)
    )
    return st


class SegmentPrepCache:
    """Bounded memo of per-``(static_key, chunk)`` segment precompute.

    Keyed by the expansion engine's static-artifact identity
    (:func:`repro.workloads.engine.static_block_key`): blocks with
    equal keys have bit-identical op/iline columns, so their static
    prep is interchangeable.  Blocks without a key (hand-built traces,
    pre-key store payloads) bypass the cache and compute directly.
    """

    def __init__(
        self, max_entries: int = 4096, max_bytes: int = 256 << 20
    ) -> None:
        self._memo: "OrderedDict[Tuple, _SegmentStatic]" = OrderedDict()
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, block: TraceBlock, chunk: int) -> _SegmentStatic:
        skey = block.static_key
        if skey is None:
            return _segment_static(block, chunk)
        key = (skey, chunk)
        with self._lock:
            st = self._memo.get(key)
            if st is not None:
                self._memo.move_to_end(key)
                self.hits += 1
                return st
            self.misses += 1
        st = _segment_static(block, chunk)
        with self._lock:
            old = self._memo.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._memo[key] = st
            self._bytes += st.nbytes
            while self._memo and (
                len(self._memo) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                _, evicted = self._memo.popitem(last=False)
                self._bytes -= evicted.nbytes
        return st

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._memo),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
            }


#: Shared prep memo for sessionless calls (mirrors ``default_engine``).
_DEFAULT_PREP_CACHE = SegmentPrepCache()


def _chained_per_run(
    st: _SegmentStatic, block: TraceBlock
) -> Optional[np.ndarray]:
    """Per-run chained-load counts (the one dep-dependent statistic)."""
    load_idx = st.load_idx
    if not len(load_idx):
        return None
    d = block.dep[load_idx]
    producers = load_idx - d
    # Chunk-local validity: the spec resolves a producer only when it
    # falls inside the same chunk as its load.
    valid = (d > 0) & (producers >= st.load_lo)
    if not valid.any():
        return None
    chain = st.op[producers[valid]] == OP_LOAD
    if not chain.any():
        return None
    return np.bincount(st.load_run[valid][chain], minlength=len(st.runs))


class _ThreadPlan:
    """Per-thread replay program plus the arrays data emission needs."""

    __slots__ = (
        "events", "durations", "refs", "fetch_sched",
        "chunk_pool", "pool_cuts", "mem_bounds", "mem_addr", "mem_store",
    )


def _profile_trace(
    trace: WorkloadTrace,
    chunk: int,
    ilp_cache: Optional[ILPTableCache],
    branch_cache: Optional[BranchStatsCache],
    prep_cache: SegmentPrepCache,
) -> WorkloadProfile:
    """The vectorized profiling pipeline (prepare -> replay -> collect)."""
    n_threads = trace.n_threads
    pools: Dict[Tuple[int, int], _PoolAccum] = {}
    pool_list: List[_PoolAccum] = []
    plans: List[_ThreadPlan] = []

    with span("profile.prepare", threads=n_threads):
        for t in trace.threads:
            tid = t.thread_id
            plan = _ThreadPlan()
            events: List = []
            durations: List[float] = []
            refs: List[SegmentRef] = []
            fetch_sched: List[Tuple[int, np.ndarray]] = []
            chunk_pool_parts: List[np.ndarray] = []
            mem_count_parts: List[np.ndarray] = []
            mem_addr_parts: List[np.ndarray] = []
            mem_store_parts: List[np.ndarray] = []

            for seg in t.segments:
                block = seg.block
                st = prep_cache.get(block, chunk)
                durations.extend(st.durations)
                mem_count_parts.append(st.mem_counts)
                if st.n == 0:
                    events.append(seg.event)
                    refs.append(SegmentRef(
                        epoch=seg.epoch, label=seg.label, event=seg.event,
                        n_instructions=0, key=None,
                    ))
                    chunk_pool_parts.append(_EMPTY_POOL)
                    continue
                events.extend(st.none_events)
                events.append(seg.event)
                keys = st.keys
                offsets = st.offsets
                for c in range(st.n_chunks - 1):
                    refs.append(SegmentRef(
                        epoch=seg.epoch, label=seg.label, event=_NONE_EVENT,
                        n_instructions=int(offsets[c + 1] - offsets[c]),
                        key=int(keys[c]),
                    ))
                refs.append(SegmentRef(
                    epoch=seg.epoch, label=seg.label, event=seg.event,
                    n_instructions=int(offsets[-1] - offsets[-2]),
                    key=int(keys[-1]),
                ))

                taken_br = (
                    block.taken[st.br_idx].astype(np.int64)
                    if len(st.br_idx) else None
                )
                seg_run_pools: List[_PoolAccum] = []
                for run in st.runs:
                    accum = pools.get((tid, run.key))
                    if accum is None:
                        accum = _PoolAccum(run.key, len(pool_list))
                        pools[(tid, run.key)] = accum
                        pool_list.append(accum)
                    seg_run_pools.append(accum)
                    accum.n_instructions += run.n_instructions
                    accum.n_segments += run.n_chunks
                    accum.class_counts += run.class_counts
                    accum.loads += run.loads

                    n_br = int(run.br_cum[-1])
                    if n_br and accum.branch_stored < _BRANCH_CAP:
                        # The spec appends whole chunks while the pool's
                        # stored count is below the cap; reproduce that
                        # chunk-granular cut, then append one merged slice.
                        room = _BRANCH_CAP - accum.branch_stored
                        k = int(np.searchsorted(
                            run.br_cum[:-1], room, side="left"
                        ))
                        take = int(run.br_cum[k]) if k < run.n_chunks else n_br
                        if take:
                            lo = run.br_lo
                            accum.branch_streams.append((
                                st.branch_pcs[lo:lo + take],
                                taken_br[lo:lo + take],
                            ))
                            accum.branch_stored += take

                    fetch_sched.append((
                        accum.index,
                        st.fetch_lines[run.fetch_lo:run.fetch_hi],
                    ))
                    accum.n_fetches += run.fetch_hi - run.fetch_lo

                chained = _chained_per_run(st, block)
                if chained is not None:
                    for r, cnt in enumerate(chained):
                        if cnt:
                            seg_run_pools[r].chained_loads += int(cnt)

                if st.ilp_entries and any(
                    len(p.ilp_samples) < ILP_SAMPLES_PER_POOL
                    for p in seg_run_pools
                ):
                    dep = block.dep
                    for r, lo, take, op_slice in st.ilp_entries:
                        p = seg_run_pools[r]
                        if len(p.ilp_samples) < ILP_SAMPLES_PER_POOL:
                            p.ilp_samples.append(
                                (op_slice, dep[lo:lo + take].copy())
                            )

                mem_addr_parts.append(block.addr[st.mem_idx])
                mem_store_parts.append(st.mem_store)
                pool_per_run = np.fromiter(
                    (p.index for p in seg_run_pools),
                    dtype=np.int32, count=len(seg_run_pools),
                )
                chunk_pool_parts.append(pool_per_run[st.run_of_chunk])

            plan.events = events
            plan.durations = durations
            plan.refs = refs
            plan.fetch_sched = fetch_sched
            chunk_pool = (
                np.concatenate(chunk_pool_parts) if chunk_pool_parts
                else np.zeros(0, dtype=np.int32)
            )
            plan.chunk_pool = chunk_pool
            plan.pool_cuts = np.flatnonzero(
                chunk_pool[1:] != chunk_pool[:-1]
            ) + 1
            mem_counts = (
                np.concatenate(mem_count_parts) if mem_count_parts
                else np.zeros(0, dtype=np.int64)
            )
            plan.mem_bounds = np.concatenate(
                ([0], np.cumsum(mem_counts))
            )
            plan.mem_addr = (
                np.concatenate(mem_addr_parts) if mem_addr_parts
                else np.zeros(0, dtype=np.int64)
            )
            plan.mem_store = (
                np.concatenate(mem_store_parts) if mem_store_parts
                else np.zeros(0, dtype=bool)
            )
            plans.append(plan)

    with span("profile.replay"):
        # Replay: only the chunk interleaving depends on it.
        result = run_schedule_batched(
            [plan.events for plan in plans],
            [plan.durations for plan in plans],
        )

    with span("profile.collect", pools=len(pool_list)):
        # Emit the interleaved memory stream, one entry per maximal
        # same-pool sub-stride (merging adjacent same-pool chunks is
        # exactly equivalent for the batch locality engine).
        data_schedule: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
        for tid, lo, hi in result.order:
            plan = plans[tid]
            cuts = plan.pool_cuts
            chunk_pool = plan.chunk_pool
            bounds = plan.mem_bounds
            ci = int(np.searchsorted(cuts, lo, side="right"))
            a = lo
            while a < hi:
                if ci < len(cuts) and cuts[ci] < hi:
                    b = int(cuts[ci])
                    ci += 1
                else:
                    b = hi
                mlo = int(bounds[a])
                mhi = int(bounds[b])
                if mhi > mlo:
                    data_schedule.append((
                        tid, int(chunk_pool[a]),
                        plan.mem_addr[mlo:mhi], plan.mem_store[mlo:mhi],
                    ))
                a = b

        replay_data(data_schedule, n_threads, [a.locality for a in pool_list])
        ifetch_hists = [a.ifetch for a in pool_list]
        for plan in plans:
            replay_fetch(plan.fetch_sched, ifetch_hists)

        ilp_tables = build_ilp_tables(
            [a.ilp_samples for a in pool_list], cache=ilp_cache
        )

        threads: List[ThreadProfile] = []
        for t in trace.threads:
            thread_pools = {
                key: accum.finalize(ilp_tables[accum.index], branch_cache)
                for (tid, key), accum in pools.items()
                if tid == t.thread_id
            }
            threads.append(ThreadProfile(
                thread_id=t.thread_id,
                segments=plans[t.thread_id].refs,
                pools=thread_pools,
            ))
    return WorkloadProfile(
        name=trace.name,
        n_threads=n_threads,
        threads=threads,
        seed=trace.seed,
    )


#: Pool marker for the single chunk of a zero-length segment.
_EMPTY_POOL = np.full(1, -1, dtype=np.int32)


def profile_workload(
    workload: Union[WorkloadSpec, WorkloadTrace],
    chunk: int = 4096,
    session=None,
    *,
    ilp_cache: Optional[ILPTableCache] = None,
    trace_cache=None,
) -> WorkloadProfile:
    """Profile a workload once, for use across all target configurations.

    Parameters
    ----------
    workload:
        A spec (expanded deterministically) or an already-expanded trace.
    chunk:
        Interleaving granularity of the functional replay, in
        instructions.  Smaller chunks approximate instruction-grain
        interleaving more closely at higher profiling cost.
    session:
        Optional :class:`repro.core.session.Session` providing the
        artifact caches — trace expansion, per-pool ILP tables, branch
        statistics and segment precompute — plus usage counters.  This
        is the one cache surface; construct it with
        ``Session.from_store(...)`` or ``Session.ephemeral()``.

    .. deprecated::
        ``ilp_cache=`` / ``trace_cache=`` are deprecated shims kept for
        one release; pass a ``session`` instead.
    """
    if ilp_cache is not None or trace_cache is not None:
        warnings.warn(
            "profile_workload(ilp_cache=..., trace_cache=...) is "
            "deprecated; pass session=Session(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    traces = trace_cache
    branch_cache = None
    prep_cache = _DEFAULT_PREP_CACHE
    if session is not None:
        if traces is None:
            traces = session.traces
        if ilp_cache is None:
            ilp_cache = session.ilp
        branch_cache = session.branches
        prep_cache = session.prep
        session.record("profiles")
    if isinstance(workload, WorkloadSpec):
        trace = (
            traces.get(workload) if traces is not None
            else expand(workload)
        )
    else:
        trace = workload
    with span("profile", workload=trace.name, chunk=chunk):
        return _profile_trace(
            trace, chunk, ilp_cache, branch_cache, prep_cache
        )


def profile_workload_reference(
    workload: Union[WorkloadSpec, WorkloadTrace],
    chunk: int = 4096,
    ilp_cache: Optional[ILPTableCache] = None,
    trace_cache=None,
) -> WorkloadProfile:
    """The per-chunk scalar profiling pipeline (the executable spec).

    Chunks the trace, prepares every chunk with :func:`_prepare_block`,
    replays through the event-at-a-time DES scheduler and accumulates
    pools inside the execute callback — the original implementation,
    preserved verbatim so the equivalence suite can pin the vectorized
    fast path against it (identical profiles, same pool content).
    """
    if isinstance(workload, WorkloadSpec):
        trace = (
            trace_cache.get(workload) if trace_cache is not None
            else expand(workload)
        )
    else:
        trace = workload
    ctrace = chunk_trace(trace, chunk)
    n_threads = ctrace.n_threads

    preps = [
        [_prepare_block(seg.block) for seg in t.segments]
        for t in ctrace.threads
    ]
    pools: Dict[Tuple[int, int], _PoolAccum] = {}
    pool_list: List[_PoolAccum] = []
    #: Chunk interleaving in execution order, consumed by the batch
    #: locality engine after the replay.
    data_schedule: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
    fetch_schedule: List[List[Tuple[int, np.ndarray]]] = [
        [] for _ in range(n_threads)
    ]

    def _pool(tid: int, key: int) -> _PoolAccum:
        accum = pools.get((tid, key))
        if accum is None:
            accum = _PoolAccum(key, len(pool_list))
            pools[(tid, key)] = accum
            pool_list.append(accum)
        return accum

    def execute(tid: int, idx: int, start: float) -> float:
        prep = preps[tid][idx]
        n = prep.n
        if n == 0:
            return 0.0
        accum = _pool(tid, prep.key)
        accum.n_instructions += n
        accum.n_segments += 1
        accum.class_counts += prep.class_counts

        if len(prep.mem_addr):
            data_schedule.append(
                (tid, accum.index, prep.mem_addr, prep.mem_store)
            )

        if prep.branch_pcs is not None and accum.branch_stored < _BRANCH_CAP:
            accum.branch_streams.append(
                (prep.branch_pcs, prep.branch_taken)
            )
            accum.branch_stored += len(prep.branch_pcs)

        if (
            len(accum.ilp_samples) < ILP_SAMPLES_PER_POOL
            and prep.ilp_op is not None
        ):
            accum.ilp_samples.append(
                (prep.ilp_op.copy(), prep.ilp_dep.copy())
            )

        accum.loads += prep.loads
        accum.chained_loads += prep.chained_loads

        if len(prep.fetch):
            fetch_schedule[tid].append((accum.index, prep.fetch))
            accum.n_fetches += len(prep.fetch)
        return float(n)

    programs = [
        [seg.event for seg in t.segments] for t in ctrace.threads
    ]
    run_schedule(programs, execute)

    replay_data(
        data_schedule, n_threads, [a.locality for a in pool_list]
    )
    ifetch_hists = [a.ifetch for a in pool_list]
    for tid in range(n_threads):
        replay_fetch(fetch_schedule[tid], ifetch_hists)

    # One fused lockstep advance per width bucket covers every pool's
    # samples (cache hits skip their pools entirely).
    ilp_tables = build_ilp_tables(
        [a.ilp_samples for a in pool_list], cache=ilp_cache
    )

    threads: List[ThreadProfile] = []
    for t in ctrace.threads:
        refs = []
        for seg in t.segments:
            n = seg.block.n_instructions
            key: Optional[int] = int(seg.block.iline[0]) if n else None
            refs.append(
                SegmentRef(
                    epoch=seg.epoch,
                    label=seg.label,
                    event=seg.event,
                    n_instructions=n,
                    key=key,
                )
            )
        thread_pools = {
            key: accum.finalize(ilp_tables[accum.index])
            for (tid, key), accum in pools.items()
            if tid == t.thread_id
        }
        threads.append(
            ThreadProfile(
                thread_id=t.thread_id, segments=refs, pools=thread_pools
            )
        )
    return WorkloadProfile(
        name=ctrace.name,
        n_threads=n_threads,
        threads=threads,
        seed=ctrace.seed,
    )
