"""Profiler orchestration: trace -> :class:`WorkloadProfile`.

The profiler performs a *functional* replay of the workload (unit cost
per instruction) through the shared DES scheduler so that concurrent
threads interleave their memory streams chunk-by-chunk — the stand-in
for the particular interleaving a Pin profiling run would observe
(paper §III-A notes predictions are robust to the profiling
interleaving; tests verify this).

Statistics are pooled per (thread, code region): segments generated
from the same static code share one pool, exactly as a Pin tool
aggregates by static program location.  Pooling keeps profiles compact
even for workloads with millions of tiny critical sections.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.profiler.branchprof import branch_stats
from repro.profiler.histogram import RDHistogram
from repro.profiler.ilp import MICROTRACE_LEN, build_ilp_table
from repro.profiler.locality import (
    FetchLocality,
    LocalityCollector,
    PoolLocality,
)
from repro.profiler.profile import (
    DataLocalityStats,
    EpochProfile,
    SegmentRef,
    ThreadProfile,
    WorkloadProfile,
)
from repro.runtime.chunking import chunk_trace
from repro.runtime.scheduler import run_schedule
from repro.workloads.generator import expand
from repro.workloads.ir import (
    OP_CLASSES,
    OP_LOAD,
    OP_STORE,
    WorkloadTrace,
    fetch_lines,
    instruction_pcs,
)
from repro.workloads.spec import WorkloadSpec

#: Upper bound on branch outcomes retained per pool for entropy analysis.
_BRANCH_CAP = 100_000
#: Micro-trace samples retained per pool for ILP analysis.
_ILP_SAMPLES = 6


class _PoolAccum:
    """Mutable accumulator for one (thread, code-region) pool."""

    __slots__ = (
        "key", "n_instructions", "n_segments", "class_counts",
        "branch_streams", "branch_stored", "ilp_samples",
        "loads", "chained_loads", "locality", "ifetch", "n_fetches",
    )

    def __init__(self, key: int) -> None:
        self.key = key
        self.n_instructions = 0
        self.n_segments = 0
        self.class_counts = np.zeros(len(OP_CLASSES), dtype=np.int64)
        self.branch_streams: List[Tuple[np.ndarray, np.ndarray]] = []
        self.branch_stored = 0
        self.ilp_samples: List[Tuple[np.ndarray, np.ndarray]] = []
        self.loads = 0
        self.chained_loads = 0
        self.locality = PoolLocality()
        self.ifetch = RDHistogram()
        self.n_fetches = 0

    def finalize(self) -> EpochProfile:
        loads = max(1, self.loads)
        return EpochProfile(
            key=self.key,
            n_instructions=self.n_instructions,
            n_segments=self.n_segments,
            class_counts=self.class_counts,
            ilp=build_ilp_table(self.ilp_samples),
            branch=branch_stats(self.branch_streams),
            data=DataLocalityStats(
                private=self.locality.private_hist(),
                shared=self.locality.shared_hist(),
                n_accesses=self.locality.n_accesses,
                n_stores=self.locality.n_stores,
            ),
            ifetch=self.ifetch,
            n_fetches=self.n_fetches,
            load_chain_frac=self.chained_loads / loads if self.loads else 0.0,
            samples=list(self.ilp_samples),
        )


def profile_workload(
    workload: Union[WorkloadSpec, WorkloadTrace],
    chunk: int = 4096,
) -> WorkloadProfile:
    """Profile a workload once, for use across all target configurations.

    Parameters
    ----------
    workload:
        A spec (expanded deterministically) or an already-expanded trace.
    chunk:
        Interleaving granularity of the functional replay, in
        instructions.  Smaller chunks approximate instruction-grain
        interleaving more closely at higher profiling cost.
    """
    trace = expand(workload) if isinstance(workload, WorkloadSpec) else workload
    ctrace = chunk_trace(trace, chunk)
    n_threads = ctrace.n_threads

    collector = LocalityCollector(n_threads)
    fetchers = [FetchLocality() for _ in range(n_threads)]
    pools: Dict[Tuple[int, int], _PoolAccum] = {}

    def _pool(tid: int, key: int) -> _PoolAccum:
        accum = pools.get((tid, key))
        if accum is None:
            accum = _PoolAccum(key)
            pools[(tid, key)] = accum
        return accum

    def execute(tid: int, idx: int, start: float) -> float:
        block = ctrace.threads[tid].segments[idx].block
        n = block.n_instructions
        if n == 0:
            return 0.0
        key = int(block.iline[0])
        accum = _pool(tid, key)
        accum.n_instructions += n
        accum.n_segments += 1
        accum.class_counts += block.class_counts()

        mem_idx = block.memory_indices()
        if len(mem_idx):
            collector.process(
                tid,
                block.addr[mem_idx],
                block.op[mem_idx] == OP_STORE,
                accum.locality,
            )

        br_idx = block.branch_indices()
        if len(br_idx) and accum.branch_stored < _BRANCH_CAP:
            pcs = instruction_pcs(block)[br_idx]
            accum.branch_streams.append(
                (pcs, block.taken[br_idx].astype(np.int64))
            )
            accum.branch_stored += len(br_idx)

        if len(accum.ilp_samples) < _ILP_SAMPLES and n >= 64:
            take = min(n, MICROTRACE_LEN)
            accum.ilp_samples.append(
                (block.op[:take].copy(), block.dep[:take].copy())
            )

        load_idx = np.flatnonzero(block.op == OP_LOAD)
        accum.loads += len(load_idx)
        if len(load_idx):
            d = block.dep[load_idx]
            producers = load_idx - d
            valid = (d > 0) & (producers >= 0)
            if valid.any():
                accum.chained_loads += int(
                    (block.op[producers[valid]] == OP_LOAD).sum()
                )

        lines = fetch_lines(block)
        accum.n_fetches += fetchers[tid].process(lines, accum.ifetch)
        return float(n)

    programs = [
        [seg.event for seg in t.segments] for t in ctrace.threads
    ]
    run_schedule(programs, execute)

    threads: List[ThreadProfile] = []
    for t in ctrace.threads:
        refs = []
        for seg in t.segments:
            n = seg.block.n_instructions
            key: Optional[int] = int(seg.block.iline[0]) if n else None
            refs.append(
                SegmentRef(
                    epoch=seg.epoch,
                    label=seg.label,
                    event=seg.event,
                    n_instructions=n,
                    key=key,
                )
            )
        thread_pools = {
            key: accum.finalize()
            for (tid, key), accum in pools.items()
            if tid == t.thread_id
        }
        threads.append(
            ThreadProfile(
                thread_id=t.thread_id, segments=refs, pools=thread_pools
            )
        )
    return WorkloadProfile(
        name=ctrace.name,
        n_threads=n_threads,
        threads=threads,
        seed=ctrace.seed,
    )
