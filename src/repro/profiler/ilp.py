"""Micro-trace ILP profiling (paper §II-B, "Instruction-level parallelism").

The paper samples a micro-trace of a thousand instructions periodically
and records instruction mix and inter-instruction dependences at that
granularity.  Here we sample windows of ``MICROTRACE_LEN`` ops per pool
and replay each sample through a tiny dependence scoreboard for a grid
of instruction-window sizes and load latencies:

* an op dispatches once the op ``window`` before it has committed
  (in-order commit bounds window occupancy — the ROB constraint),
* an op issues once its producer (from the trace's dependence array)
  has completed, with canonical ISA execution latencies for non-load
  classes and the grid's ``load_lat`` for loads,
* commit is in order.

``ILP(W, l_load) = instructions / makespan`` of that replay.  The
window axis models the ROB; the load-latency axis lets the predictor
fold the target hierarchy's *average* data latency into the chains —
including, at the top of the grid, main-memory latency, which is how
Eq. 1's D-cache component is derived (the extra time of the replay
when loads carry the miss-inclusive average latency).

The same replay also measures the mean dispatch-to-completion time of
branch micro-ops — the branch *resolution time* ``c_res`` of Eq. 1's
branch component — and the dependence-imposed ceiling on overlapping
loads (for the explicit MLP model).

The per-op implementations here are the *executable spec* (mirroring
:mod:`repro.profiler.reference` for the locality engines): the
profiler runs the fused flat-grid engine in
:mod:`repro.profiler.ilp_batch`, which is tested for bit-identical
equivalence against these functions and is more than an order of
magnitude faster.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.profiler.profile import ILPTable
from repro.workloads.ir import OP_BRANCH, OP_LOAD

#: Canonical (ISA-reference) execution latencies per op class, indexed
#: by class code: ialu, imul, fp, load (placeholder), store, branch.
CANONICAL_LAT = (1, 3, 4, 0, 1, 1)

#: Default profiling grids.  Windows cover the Table IV ROB range;
#: load latencies run from an L1 hit to a miss-dominated average.
WINDOW_GRID = (16, 32, 64, 128, 288, 512)
LOAD_LAT_GRID = (2, 10, 30, 100, 250)

#: Micro-trace sample length (ops).
MICROTRACE_LEN = 512


def scoreboard_replay(
    op: Sequence[int],
    dep: Sequence[int],
    window: int,
    load_lat,
) -> Tuple[float, float]:
    """Replay one micro-trace; returns (ILP, branch slice load count).

    The replay is the idealized core of the interval model: unbounded
    dispatch width and issue ports, perfect branch prediction and
    caches — only data dependences and the ``window``-sized instruction
    window limit progress.  The resulting ILP is an upper bound that
    Eq. 1 clips by the pipeline width and port throughput.

    The second return value is the mean number of *loads* in the
    backward dependence slice of each branch (reach limited to the
    window): the exposure of branch resolution to outstanding cache
    misses, which drives Eq. 1's ``c_res``.

    ``load_lat`` is either a scalar (every load pays the same latency —
    the profiling-time grid) or a per-op latency sequence (prediction
    time: each load carries its own hierarchy-level latency, so fast
    and slow loads mix on the dependence chains exactly as they do in
    a cache-accurate execution).
    """
    n = len(op)
    if n == 0:
        return 1.0, 0.0
    lats = list(CANONICAL_LAT)
    per_op = None
    if isinstance(load_lat, (int, float)):
        lats[OP_LOAD] = load_lat
    else:
        per_op = load_lat
    comp: List[float] = [0.0] * n
    commit: List[float] = [0.0] * n
    # Loads in the backward dependence slice, reach limited to the
    # window: a branch fed (transitively) by in-flight loads resolves
    # only when those loads return.
    slice_loads: List[int] = [0] * n
    loads_sum = 0
    res_count = 0
    commit_prev = 0.0
    for i in range(n):
        dispatch = commit[i - window] if i >= window else 0.0
        d = dep[i]
        o = op[i]
        is_load = 1 if o == OP_LOAD else 0
        if per_op is not None and is_load:
            lat = per_op[i]
        else:
            lat = lats[o]
        if 0 < d <= i:
            ready = comp[i - d]
            nloads = (slice_loads[i - d] if d <= window else 0) + is_load
        else:
            ready = 0.0
            nloads = is_load
        slice_loads[i] = nloads
        start = dispatch if dispatch > ready else ready
        c = start + lat
        comp[i] = c
        commit_prev = commit_prev if commit_prev > c else c
        commit[i] = commit_prev
        if o == OP_BRANCH:
            loads_sum += nloads
            res_count += 1
    makespan = commit_prev
    ilp = n / makespan if makespan > 0 else float(n)
    res = loads_sum / res_count if res_count else 0.0
    return max(ilp, 1e-3), res


def hierarchy_ilp(
    samples: List[Tuple[np.ndarray, np.ndarray]],
    window: int,
    miss_rates: Tuple[float, float, float],
    level_lats: Tuple[float, float, float],
    mem_latency: float,
) -> float:
    """ILP with per-load latencies drawn from the hierarchy distribution.

    Every load is assigned a hierarchy level by a deterministic quantile
    (the same load keeps the same quantile across configurations, so
    predictions vary smoothly across a design space): a load with
    quantile ``u`` hits L1 when ``u >= m1``, L2 when ``m2 <= u < m1``,
    the LLC when ``m3 <= u < m2``, and goes to memory otherwise,
    paying the LLC lookup plus ``mem_latency``.  Pass ``mem_latency=0``
    for the hit-only replay (Eq. 1's base component); the full replay
    minus the hit-only replay is the D-cache component.

    This mixes fast and slow loads on the dependence chains exactly as
    a cache-accurate execution does — folding one *average* latency
    into every load systematically overestimates chain serialization.

    The replay runs through the batched engine
    (:func:`repro.profiler.ilp_batch.batch_hierarchy_ilp`): the
    latency arrays are passed straight through as NumPy arrays, never
    round-tripped through Python lists.
    """
    # Imported here: ilp_batch imports this module's constants.
    from repro.profiler.ilp_batch import batch_hierarchy_ilp

    m1, m2, m3 = miss_rates
    l1, l2, llc = level_lats
    if not samples:
        return 1.0
    per_op_lats = []
    for si, (op, _) in enumerate(samples):
        op_arr = np.asarray(op)
        rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence([0xA11CE, si]))
        )
        u = rng.random(len(op_arr))
        lat = np.full(len(op_arr), float(l1))
        lat[u < m1] = l2
        lat[u < m2] = llc
        lat[u < m3] = llc + mem_latency
        per_op_lats.append(lat)
    return batch_hierarchy_ilp(samples, window, per_op_lats)


def load_parallelism(
    op: Sequence[int], dep: Sequence[int], window: int
) -> float:
    """Dependence-imposed ceiling on overlapping loads per window.

    For each window: the number of loads divided by the longest
    *transitive* load-to-load chain (a load whose address computation
    passes through another load cannot overlap with it, whatever the
    MSHR count).  Averaged over the micro-trace's windows, weighted by
    load count.
    """
    n = len(op)
    if n == 0:
        return 1.0
    total_loads = 0
    total_depth = 0.0
    start = 0
    while start < n:
        end = min(start + window, n)
        ldepth: List[int] = [0] * (end - start)
        maxd = 0
        loads = 0
        for i in range(start, end):
            d = dep[i]
            base = ldepth[i - d - start] if 0 < d <= i - start else 0
            is_load = 1 if op[i] == OP_LOAD else 0
            loads += is_load
            val = base + is_load
            ldepth[i - start] = val
            if val > maxd:
                maxd = val
        total_loads += loads
        total_depth += max(maxd, 1)
        start = end
    if total_loads == 0:
        return 1.0
    return max(1.0, total_loads / total_depth)


def build_ilp_table(
    samples: List[Tuple[np.ndarray, np.ndarray]],
    windows: Sequence[int] = WINDOW_GRID,
    load_lats: Sequence[int] = LOAD_LAT_GRID,
) -> ILPTable:
    """Aggregate sampled micro-traces into an :class:`ILPTable`.

    ``samples`` is a list of (op, dep) array pairs.  With no samples
    (an epoch too small to sample), a conservative table of ILP=1 is
    returned.

    This is the scalar reference; the profiler builds its tables with
    :func:`repro.profiler.ilp_batch.build_ilp_tables`, which must
    agree with this function (see ``tests/test_ilp_batch.py``).
    """
    grid = np.ones((len(windows), len(load_lats)), dtype=np.float64)
    br_loads = np.zeros(len(windows), dtype=np.float64)
    lp = np.ones(len(windows), dtype=np.float64)
    if samples:
        ops = [np.asarray(o).tolist() for o, _ in samples]
        deps = [np.asarray(d).tolist() for _, d in samples]
        for wi, window in enumerate(windows):
            for li, lat in enumerate(load_lats):
                ilps = []
                loads = []
                for o, d in zip(ops, deps):
                    ilp_v, loads_v = scoreboard_replay(o, d, window, lat)
                    ilps.append(ilp_v)
                    loads.append(loads_v)
                # Rates average harmonically (times average linearly).
                grid[wi, li] = 1.0 / float(np.mean([1.0 / v for v in ilps]))
                if li == 0:  # slice load counts are latency-independent
                    br_loads[wi] = float(np.mean(loads))
            lp[wi] = float(np.mean([
                load_parallelism(o, d, window)
                for o, d in zip(ops, deps)
            ]))
    return ILPTable(
        windows=tuple(windows), load_lats=tuple(load_lats), ilp=grid,
        branch_loads=br_loads, load_par=lp,
    )
