"""Scalar reference reuse-distance collectors.

This module preserves the original per-access Python implementation of
the locality collectors (the pre-vectorization seed code) as an
executable specification.  The vectorized engine in
:mod:`repro.profiler.locality` must reproduce these collectors
*bit-for-bit* — ``tests/test_locality_vectorized.py`` checks the
equivalence on randomized multi-thread interleavings, and
``benchmarks/bench_profiler.py`` measures the speedup against them.

The classes mirror the public interface of their vectorized
counterparts (``process`` signatures, pool accumulation), so either
implementation can drive :func:`repro.profiler.profiler.profile_workload`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.profiler.histogram import RDHistogram, bin_index
from repro.profiler.locality import PoolLocality

_EXACT = 8


class ScalarLocalityCollector:
    """Per-access replay of the interleaved data stream (seed code)."""

    def __init__(self, n_threads: int) -> None:
        self.n_threads = n_threads
        self.global_seq = 0
        #: line -> global sequence number of the last access (any thread).
        self.global_last: Dict[int, int] = {}
        #: per thread: line -> (thread counter, global seq) at last access.
        self.priv_last: List[Dict[int, Tuple[int, int]]] = [
            {} for _ in range(n_threads)
        ]
        self.priv_count = [0] * n_threads
        #: line -> (writer thread, global seq of the write).
        self.last_write: Dict[int, Tuple[int, int]] = {}

    def process(
        self,
        tid: int,
        addrs: np.ndarray,
        stores: np.ndarray,
        pool: PoolLocality,
    ) -> None:
        """Feed one chunk's memory accesses (in program order)."""
        if len(addrs) == 0:
            return
        global_last = self.global_last
        priv_last = self.priv_last[tid]
        last_write = self.last_write
        g = self.global_seq
        c = self.priv_count[tid]
        priv_counts = pool.priv_counts
        glob_counts = pool.glob_counts
        addrs_list = addrs.tolist()
        stores_list = stores.tolist()
        for line, is_store in zip(addrs_list, stores_list):
            gl = global_last.get(line)
            if gl is None:
                pool.glob_cold += 1
            else:
                rd = g - gl - 1
                if rd < _EXACT:
                    glob_counts[rd] += 1
                else:
                    glob_counts[bin_index(rd)] += 1
            global_last[line] = g
            pl = priv_last.get(line)
            if pl is None:
                pool.priv_cold += 1
            else:
                pcount, pgseq = pl
                w = last_write.get(line)
                if w is not None and w[0] != tid and w[1] > pgseq:
                    pool.priv_inval += 1
                else:
                    rd = c - pcount - 1
                    if rd < _EXACT:
                        priv_counts[rd] += 1
                    else:
                        priv_counts[bin_index(rd)] += 1
            priv_last[line] = (c, g)
            if is_store:
                last_write[line] = (tid, g)
                pool.n_stores += 1
            g += 1
            c += 1
        self.global_seq = g
        self.priv_count[tid] = c
        pool.n_accesses += len(addrs_list)


class ScalarFetchLocality:
    """Per-access instruction-fetch reuse collector (seed code)."""

    __slots__ = ("last", "count")

    def __init__(self) -> None:
        self.last: Dict[int, int] = {}
        self.count = 0

    def process(self, lines: np.ndarray, hist: RDHistogram) -> int:
        """Feed one chunk's fetch stream; returns the number of fetches."""
        if len(lines) == 0:
            return 0
        last = self.last
        c = self.count
        counts = hist.counts
        for line in lines.tolist():
            prev = last.get(line)
            if prev is None:
                hist.cold += 1
            else:
                rd = c - prev - 1
                if rd < _EXACT:
                    counts[rd] += 1
                else:
                    counts[bin_index(rd)] += 1
            last[line] = c
            c += 1
        n = c - self.count
        self.count = c
        return n
