"""Microarchitecture-independent workload profiler (the Pin-tool substitute).

Runs a functional replay of a workload trace (unit cost per
instruction, fine-grained chunk interleaving across threads) and
collects, per thread and per static code region ("pool"):

* instruction mix,
* ILP tables from micro-trace critical-path analysis,
* branch-history entropy floors at multiple history depths,
* per-thread and global reuse-distance histograms, cold footprints and
  write-invalidation (coherence) counts — StatStack's multithreaded
  inputs,
* load-dependence chaining (for the MLP model),
* the full synchronization event structure.

Everything in the resulting :class:`~repro.profiler.profile.WorkloadProfile`
is independent of any particular core/cache/branch-predictor
configuration: one profile serves the whole design space (paper §III).
"""

from repro.profiler.histogram import NBINS, RDHistogram, bin_index, bin_rep
from repro.profiler.profile import (
    BranchStats,
    DataLocalityStats,
    EpochProfile,
    ILPTable,
    SegmentRef,
    ThreadProfile,
    WorkloadProfile,
)
from repro.profiler.profiler import profile_workload

__all__ = [
    "NBINS",
    "RDHistogram",
    "bin_index",
    "bin_rep",
    "BranchStats",
    "DataLocalityStats",
    "EpochProfile",
    "ILPTable",
    "SegmentRef",
    "ThreadProfile",
    "WorkloadProfile",
    "profile_workload",
]
