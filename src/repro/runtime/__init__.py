"""Shared execution runtime.

Three consumers replay a workload's synchronization structure:

* the profiler (unit-cost functional replay, to interleave memory
  streams for the global reuse-distance counters),
* the reference simulator (cycle-accounting replay),
* RPPM's prediction phase 2 (symbolic replay over *predicted* epoch
  times — the paper's Algorithm 2).

All three use the same discrete-event scheduler
(:mod:`repro.runtime.scheduler`) so synchronization semantics cannot
diverge between the model and its golden reference — only the *timing*
of epochs differs.
"""

from repro.runtime.chunking import chunk_trace
from repro.runtime.scheduler import DeadlockError, ScheduleResult, run_schedule
from repro.runtime.timeline import Interval, Timeline

__all__ = [
    "chunk_trace",
    "DeadlockError",
    "ScheduleResult",
    "run_schedule",
    "Interval",
    "Timeline",
]
