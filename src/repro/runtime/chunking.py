"""Split long trace segments into bounded chunks.

Both the profiler's functional replay and the reference simulator
advance threads chunk-by-chunk so that concurrently-running threads
interleave their shared-cache accesses at fine grain (the paper's Pin
profiler and Sniper interleave at instruction grain; chunking is our
tractable approximation).  Chunks are numpy views, not copies.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.workloads.ir import (
    Segment,
    SyncKind,
    SyncOp,
    ThreadTrace,
    TraceBlock,
    WorkloadTrace,
)

_NONE_EVENT = SyncOp(SyncKind.NONE)


def chunk_offsets(n: int, max_block: int) -> np.ndarray:
    """Chunk boundary offsets for a segment of ``n`` micro-ops.

    Returns the int64 array ``[0, max_block, 2*max_block, ..., n]`` —
    one more entry than there are chunks.  A zero-length segment still
    yields one (empty) chunk: pure-sync segments occupy exactly one
    replay slot, matching :func:`chunk_trace`.
    """
    if max_block <= 0:
        raise ValueError("max_block must be positive")
    if n <= 0:
        return np.zeros(2, dtype=np.int64)
    offsets = np.arange(0, n, max_block, dtype=np.int64)
    return np.append(offsets, n)


def _split_block(block: TraceBlock, max_block: int) -> List[TraceBlock]:
    n = block.n_instructions
    if n <= max_block:
        return [block]
    offsets = chunk_offsets(n, max_block)
    return [
        block.view(int(lo), int(hi))
        for lo, hi in zip(offsets[:-1], offsets[1:])
    ]


def chunk_trace(trace: WorkloadTrace, max_block: int = 4096) -> WorkloadTrace:
    """Return an equivalent trace whose blocks are at most ``max_block``.

    Oversized segments become several segments: all but the last end
    with a NONE event (no synchronization), the last keeps the original
    event, epoch index and label.  Dependence distances within later
    chunks may point before the chunk start; consumers treat those as
    cross-chunk dependences that are already resolved.
    """
    if max_block <= 0:
        raise ValueError("max_block must be positive")
    threads = []
    for t in trace.threads:
        segments: List[Segment] = []
        for seg in t.segments:
            pieces = _split_block(seg.block, max_block)
            for piece in pieces[:-1]:
                segments.append(
                    Segment(block=piece, event=_NONE_EVENT,
                            epoch=seg.epoch, label=seg.label)
                )
            segments.append(
                Segment(block=pieces[-1], event=seg.event,
                        epoch=seg.epoch, label=seg.label)
            )
        threads.append(ThreadTrace(thread_id=t.thread_id, segments=segments))
    return WorkloadTrace(name=trace.name, threads=threads, seed=trace.seed)
