"""Execution timelines: per-thread active/idle intervals.

A :class:`Timeline` is the common currency between the scheduler, the
CPI-stack sync component and the bottlegraph construction: it records,
for every thread, when it was actively executing and when it sat idle
at a synchronization event (and why).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Interval:
    """A half-open time interval [start, end)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """Per-thread activity record of one (real or symbolic) execution."""

    n_threads: int
    active: List[List[Interval]] = field(default_factory=list)
    #: Idle intervals, tagged with the blocking cause (sync kind value).
    idle: List[List[Tuple[Interval, str]]] = field(default_factory=list)
    created_at: List[Optional[float]] = field(default_factory=list)
    ended_at: List[Optional[float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.active:
            self.active = [[] for _ in range(self.n_threads)]
        if not self.idle:
            self.idle = [[] for _ in range(self.n_threads)]
        if not self.created_at:
            self.created_at = [None] * self.n_threads
        if not self.ended_at:
            self.ended_at = [None] * self.n_threads

    def record_active(self, tid: int, start: float, end: float) -> None:
        if end > start:
            self.active[tid].append(Interval(start, end))

    def record_idle(self, tid: int, start: float, end: float,
                    cause: str) -> None:
        if end > start:
            self.idle[tid].append((Interval(start, end), cause))

    def active_time(self, tid: int) -> float:
        """Total time thread ``tid`` spent executing instructions."""
        return sum(iv.duration for iv in self.active[tid])

    def idle_time(self, tid: int) -> float:
        """Total time thread ``tid`` spent blocked at sync events."""
        return sum(iv.duration for iv, _ in self.idle[tid])

    def idle_by_cause(self, tid: int) -> Dict[str, float]:
        """Idle time of ``tid`` broken down by blocking cause."""
        out: Dict[str, float] = {}
        for iv, cause in self.idle[tid]:
            out[cause] = out.get(cause, 0.0) + iv.duration
        return out

    def digest(self) -> str:
        """Stable SHA-256 digest of the full timeline content.

        Covers every active interval, every idle interval with its
        blocking cause, and the per-thread creation/end times — two
        timelines digest equal iff they are bit-identical (float bit
        patterns included).  This is the identity the batched-replay
        equivalence suite pins against the event-at-a-time DES spec.
        """
        h = hashlib.sha256()
        h.update(f"timeline|{self.n_threads}".encode())
        for tid in range(self.n_threads):
            created = self.created_at[tid]
            ended = self.ended_at[tid]
            h.update(
                f"|t{tid}"
                f"|{'-' if created is None else float(created).hex()}"
                f"|{'-' if ended is None else float(ended).hex()}".encode()
            )
            for iv in self.active[tid]:
                h.update(struct.pack("<dd", iv.start, iv.end))
            h.update(b"|idle")
            for iv, cause in self.idle[tid]:
                h.update(struct.pack("<dd", iv.start, iv.end))
                h.update(cause.encode())
        return h.hexdigest()

    @property
    def end_time(self) -> float:
        """Completion time of the whole execution (last thread to end)."""
        ends = [e for e in self.ended_at if e is not None]
        return max(ends) if ends else 0.0

    def events(self) -> List[float]:
        """Sorted unique boundary times across all active intervals."""
        points = set()
        for ivs in self.active:
            for iv in ivs:
                points.add(iv.start)
                points.add(iv.end)
        return sorted(points)

    def parallelism_profile(self) -> List[Tuple[Interval, int]]:
        """Piecewise-constant count of concurrently *running* threads.

        Only actively-executing threads count (idle waiters do not),
        matching the bottlegraph definition of parallelism [13].
        Implemented as a sweep over interval boundaries so it stays
        linear in the number of intervals.
        """
        deltas: Dict[float, int] = {}
        for ivs in self.active:
            for iv in ivs:
                deltas[iv.start] = deltas.get(iv.start, 0) + 1
                deltas[iv.end] = deltas.get(iv.end, 0) - 1
        if not deltas:
            return []
        points = sorted(deltas)
        profile: List[Tuple[Interval, int]] = []
        count = 0
        for lo, hi in zip(points[:-1], points[1:]):
            count += deltas[lo]
            profile.append((Interval(lo, hi), count))
        return profile
