"""Discrete-event scheduler over a workload's synchronization structure.

This is the one implementation of the paper's synchronization semantics
(§III-B: thread creation, barriers, critical sections, condition
variables in barrier and producer-consumer idioms, thread joining).
Callers provide an ``execute(tid, segment_index, start_time) -> duration``
callback; the scheduler coordinates the threads:

* the profiler's functional replay passes unit cost per instruction,
* the reference simulator passes cycle-accounting cost,
* RPPM's phase 2 passes *predicted* epoch times — making this scheduler
  literally Algorithm 2 of the paper ("proceed the unblocked thread with
  the shortest time to its next synchronization event").

Events are processed in global event-time order (a classic DES), so
lock-grant and item-consumption ordering is deterministic: FIFO by
arrival time, ties broken by a monotone sequence number.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.runtime.timeline import Timeline
from repro.workloads.ir import SyncKind, SyncOp

#: ``execute(thread_id, segment_index, start_time) -> duration``.
ExecuteFn = Callable[[int, int, float], float]


class DeadlockError(RuntimeError):
    """Raised when no thread can make progress before all have ended."""


@dataclass
class ScheduleResult:
    """Outcome of replaying a workload's synchronization structure."""

    timeline: Timeline
    end_time: float
    active: List[float]
    idle: List[float]

    def total_time(self) -> float:
        """Overall execution time (the paper's predicted/simulated time)."""
        return self.end_time


@dataclass
class _ThreadState:
    next_segment: int = 0
    time: float = 0.0
    started: bool = False
    done: bool = False
    #: Set while blocked at an event; (block_time, cause).
    blocked_since: Optional[Tuple[float, str]] = None


class _Scheduler:
    def __init__(self, programs: List[List[SyncOp]], execute: ExecuteFn):
        self.programs = programs
        self.execute = execute
        self.n = len(programs)
        self.threads = [_ThreadState() for _ in range(self.n)]
        self.timeline = Timeline(n_threads=self.n)
        # Event queue holds (event_time, seq, tid) for threads whose next
        # segment has been executed and whose terminating event is pending.
        self.queue: List[Tuple[float, int, int]] = []
        self._seq = 0
        # Synchronization-object state.
        self.barrier_arrivals: Dict[int, List[Tuple[int, float]]] = {}
        self.lock_owner: Dict[int, Optional[int]] = {}
        self.lock_waiters: Dict[int, List[Tuple[float, int, int]]] = {}
        self.items: Dict[int, List[float]] = {}
        self.item_waiters: Dict[int, List[Tuple[float, int, int]]] = {}
        self.join_waiters: Dict[int, List[Tuple[int, float]]] = {}
        self.end_times: Dict[int, float] = {}

    # -- thread progression -------------------------------------------------

    def _start_thread(self, tid: int, time: float) -> None:
        state = self.threads[tid]
        if state.started:
            raise DeadlockError(f"thread {tid} started twice")
        state.started = True
        state.time = time
        self.timeline.created_at[tid] = time
        self._advance(tid)

    def _advance(self, tid: int) -> None:
        """Execute the thread's next segment and queue its event."""
        state = self.threads[tid]
        if state.next_segment >= len(self.programs[tid]):
            raise DeadlockError(f"thread {tid} ran past its last segment")
        start = state.time
        duration = self.execute(tid, state.next_segment, start)
        if duration < 0:
            raise ValueError("segment duration must be non-negative")
        end = start + duration
        self.timeline.record_active(tid, start, end)
        state.time = end
        self._seq += 1
        heapq.heappush(self.queue, (end, self._seq, tid))

    def _resume(self, tid: int, time: float, cause: str) -> None:
        """Unblock ``tid`` at ``time`` (idle from block point to time)."""
        state = self.threads[tid]
        if state.blocked_since is not None:
            since, _ = state.blocked_since
            self.timeline.record_idle(tid, since, time, cause)
            state.blocked_since = None
        state.time = max(state.time, time)
        state.next_segment += 1
        if not state.done:
            self._advance(tid)

    def _block(self, tid: int, time: float, cause: str) -> None:
        self.threads[tid].blocked_since = (time, cause)

    # -- event handlers -----------------------------------------------------

    def _handle(self, tid: int, time: float, event: SyncOp) -> None:
        kind = event.kind
        state = self.threads[tid]
        if kind is SyncKind.NONE:
            state.next_segment += 1
            self._advance(tid)
        elif kind is SyncKind.CREATE:
            self._start_thread(event.obj, time)
            state.next_segment += 1
            self._advance(tid)
        elif kind in (SyncKind.BARRIER, SyncKind.CV_BARRIER):
            self._handle_barrier(tid, time, event)
        elif kind is SyncKind.LOCK:
            self._handle_lock(tid, time, event)
        elif kind is SyncKind.UNLOCK:
            self._handle_unlock(tid, time, event)
        elif kind is SyncKind.PC_PUT:
            self._handle_put(tid, time, event)
        elif kind is SyncKind.PC_GET:
            self._handle_get(tid, time, event)
        elif kind is SyncKind.JOIN:
            self._handle_join(tid, time, event)
        elif kind is SyncKind.END:
            self._handle_end(tid, time)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unhandled sync kind {kind}")

    def _handle_barrier(self, tid: int, time: float, event: SyncOp) -> None:
        cause = event.kind.value
        arrivals = self.barrier_arrivals.setdefault(event.obj, [])
        arrivals.append((tid, time))
        if len(arrivals) < len(event.participants):
            self._block(tid, time, cause)
            return
        # Last arriver releases the barrier: everyone proceeds at ``time``
        # (the paper: the slowest thread determines the epoch's end).
        del self.barrier_arrivals[event.obj]
        for other, arrived in arrivals:
            if other == tid:
                self.threads[tid].next_segment += 1
                self._advance(tid)
            else:
                self._resume(other, time, cause)

    def _handle_lock(self, tid: int, time: float, event: SyncOp) -> None:
        owner = self.lock_owner.get(event.obj)
        if owner is None:
            self.lock_owner[event.obj] = tid
            self.threads[tid].next_segment += 1
            self._advance(tid)
        else:
            self._seq += 1
            heapq.heappush(
                self.lock_waiters.setdefault(event.obj, []),
                (time, self._seq, tid),
            )
            self._block(tid, time, SyncKind.LOCK.value)

    def _handle_unlock(self, tid: int, time: float, event: SyncOp) -> None:
        if self.lock_owner.get(event.obj) != tid:
            raise DeadlockError(
                f"thread {tid} unlocked mutex {event.obj} it does not hold"
            )
        waiters = self.lock_waiters.get(event.obj)
        if waiters:
            _, _, nxt = heapq.heappop(waiters)
            self.lock_owner[event.obj] = nxt
            self._resume(nxt, time, SyncKind.LOCK.value)
        else:
            self.lock_owner[event.obj] = None
        self.threads[tid].next_segment += 1
        self._advance(tid)

    def _handle_put(self, tid: int, time: float, event: SyncOp) -> None:
        queue = self.items.setdefault(event.obj, [])
        queue.extend([time] * event.items)
        waiters = self.item_waiters.get(event.obj)
        while waiters and queue:
            _, _, consumer = heapq.heappop(waiters)
            queue.pop(0)
            self._resume(consumer, time, SyncKind.PC_GET.value)
        self.threads[tid].next_segment += 1
        self._advance(tid)

    def _handle_get(self, tid: int, time: float, event: SyncOp) -> None:
        queue = self.items.setdefault(event.obj, [])
        if queue:
            posted = queue.pop(0)
            state = self.threads[tid]
            state.next_segment += 1
            state.time = max(time, posted)
            if posted > time:
                self.timeline.record_idle(
                    tid, time, posted, SyncKind.PC_GET.value
                )
            self._advance(tid)
        else:
            self._seq += 1
            heapq.heappush(
                self.item_waiters.setdefault(event.obj, []),
                (time, self._seq, tid),
            )
            self._block(tid, time, SyncKind.PC_GET.value)

    def _handle_join(self, tid: int, time: float, event: SyncOp) -> None:
        child = event.obj
        if child in self.end_times:
            state = self.threads[tid]
            end = self.end_times[child]
            state.next_segment += 1
            state.time = max(time, end)
            if end > time:
                self.timeline.record_idle(
                    tid, time, end, SyncKind.JOIN.value
                )
            self._advance(tid)
        else:
            self.join_waiters.setdefault(child, []).append((tid, time))
            self._block(tid, time, SyncKind.JOIN.value)

    def _handle_end(self, tid: int, time: float) -> None:
        state = self.threads[tid]
        state.done = True
        self.end_times[tid] = time
        self.timeline.ended_at[tid] = time
        for waiter, _ in self.join_waiters.pop(tid, []):
            self._resume(waiter, time, SyncKind.JOIN.value)

    # -- main loop ----------------------------------------------------------

    def run(self) -> ScheduleResult:
        self._start_thread(0, 0.0)
        while self.queue:
            time, _, tid = heapq.heappop(self.queue)
            event = self.programs[tid][self.threads[tid].next_segment]
            self._handle(tid, time, event)
        not_done = [t for t, s in enumerate(self.threads)
                    if s.started and not s.done]
        never_started = [t for t, s in enumerate(self.threads)
                         if not s.started]
        if not_done or never_started:
            raise DeadlockError(
                f"execution stalled: blocked threads {not_done}, "
                f"never created {never_started}"
            )
        active = [self.timeline.active_time(t) for t in range(self.n)]
        idle = [self.timeline.idle_time(t) for t in range(self.n)]
        return ScheduleResult(
            timeline=self.timeline,
            end_time=self.timeline.end_time,
            active=active,
            idle=idle,
        )


def run_schedule(
    programs: List[List[SyncOp]], execute: ExecuteFn
) -> ScheduleResult:
    """Replay a workload's synchronization structure.

    Parameters
    ----------
    programs:
        Per-thread lists of segment-terminating events (the structure of
        a :class:`~repro.workloads.ir.WorkloadTrace`, or of a profile).
    execute:
        Callback computing each segment's duration; called exactly once
        per segment, in deterministic order.
    """
    return _Scheduler(programs, execute).run()
