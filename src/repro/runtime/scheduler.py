"""Discrete-event scheduler over a workload's synchronization structure.

This is the one implementation of the paper's synchronization semantics
(§III-B: thread creation, barriers, critical sections, condition
variables in barrier and producer-consumer idioms, thread joining).
Callers provide an ``execute(tid, segment_index, start_time) -> duration``
callback; the scheduler coordinates the threads:

* the profiler's functional replay passes unit cost per instruction,
* the reference simulator passes cycle-accounting cost,
* RPPM's phase 2 passes *predicted* epoch times — making this scheduler
  literally Algorithm 2 of the paper ("proceed the unblocked thread with
  the shortest time to its next synchronization event").

Events are processed in global event-time order (a classic DES), so
lock-grant and item-consumption ordering is deterministic: FIFO by
arrival time, ties broken by a monotone sequence number.

When every segment duration is known up front (the profiler's unit
costs, RPPM's phase-1 predictions), :func:`run_schedule_batched`
replays the same structure in batched strides: a thread whose upcoming
segments carry no synchronization executes them without heap
round-trips whenever no pending event could interleave.  The batched
path is exact by construction — a stride segment is admitted only when
the spec scheduler would pop this thread's freshly pushed event next
anyway — and :class:`_Scheduler` is preserved as the executable spec,
with bit-identity (digest-identical timelines, identical execute
order) enforced by the equivalence suite.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.timeline import Interval, Timeline
from repro.workloads.ir import SyncKind, SyncOp

#: ``execute(thread_id, segment_index, start_time) -> duration``.
ExecuteFn = Callable[[int, int, float], float]


class DeadlockError(RuntimeError):
    """Raised when no thread can make progress before all have ended."""


@dataclass
class ScheduleResult:
    """Outcome of replaying a workload's synchronization structure."""

    timeline: Timeline
    end_time: float
    active: List[float]
    idle: List[float]

    def total_time(self) -> float:
        """Overall execution time (the paper's predicted/simulated time)."""
        return self.end_time


@dataclass
class _ThreadState:
    next_segment: int = 0
    time: float = 0.0
    started: bool = False
    done: bool = False
    #: Set while blocked at an event; (block_time, cause).
    blocked_since: Optional[Tuple[float, str]] = None


class _Scheduler:
    def __init__(self, programs: List[List[SyncOp]], execute: ExecuteFn):
        self.programs = programs
        self.execute = execute
        self.n = len(programs)
        self.threads = [_ThreadState() for _ in range(self.n)]
        self.timeline = Timeline(n_threads=self.n)
        # Event queue holds (event_time, seq, tid) for threads whose next
        # segment has been executed and whose terminating event is pending.
        self.queue: List[Tuple[float, int, int]] = []
        self._seq = 0
        # Synchronization-object state.
        self.barrier_arrivals: Dict[int, List[Tuple[int, float]]] = {}
        self.lock_owner: Dict[int, Optional[int]] = {}
        self.lock_waiters: Dict[int, List[Tuple[float, int, int]]] = {}
        self.items: Dict[int, List[float]] = {}
        self.item_waiters: Dict[int, List[Tuple[float, int, int]]] = {}
        self.join_waiters: Dict[int, List[Tuple[int, float]]] = {}
        self.end_times: Dict[int, float] = {}

    # -- thread progression -------------------------------------------------

    def _start_thread(self, tid: int, time: float) -> None:
        state = self.threads[tid]
        if state.started:
            raise DeadlockError(f"thread {tid} started twice")
        state.started = True
        state.time = time
        self.timeline.created_at[tid] = time
        self._advance(tid)

    def _advance(self, tid: int) -> None:
        """Execute the thread's next segment and queue its event."""
        state = self.threads[tid]
        if state.next_segment >= len(self.programs[tid]):
            raise DeadlockError(f"thread {tid} ran past its last segment")
        start = state.time
        duration = self.execute(tid, state.next_segment, start)
        if duration < 0:
            raise ValueError("segment duration must be non-negative")
        end = start + duration
        self.timeline.record_active(tid, start, end)
        state.time = end
        self._seq += 1
        heapq.heappush(self.queue, (end, self._seq, tid))

    def _resume(self, tid: int, time: float, cause: str) -> None:
        """Unblock ``tid`` at ``time`` (idle from block point to time)."""
        state = self.threads[tid]
        if state.blocked_since is not None:
            since, _ = state.blocked_since
            self.timeline.record_idle(tid, since, time, cause)
            state.blocked_since = None
        state.time = max(state.time, time)
        state.next_segment += 1
        if not state.done:
            self._advance(tid)

    def _block(self, tid: int, time: float, cause: str) -> None:
        self.threads[tid].blocked_since = (time, cause)

    # -- event handlers -----------------------------------------------------

    def _handle(self, tid: int, time: float, event: SyncOp) -> None:
        kind = event.kind
        state = self.threads[tid]
        if kind is SyncKind.NONE:
            state.next_segment += 1
            self._advance(tid)
        elif kind is SyncKind.CREATE:
            self._start_thread(event.obj, time)
            state.next_segment += 1
            self._advance(tid)
        elif kind in (SyncKind.BARRIER, SyncKind.CV_BARRIER):
            self._handle_barrier(tid, time, event)
        elif kind is SyncKind.LOCK:
            self._handle_lock(tid, time, event)
        elif kind is SyncKind.UNLOCK:
            self._handle_unlock(tid, time, event)
        elif kind is SyncKind.PC_PUT:
            self._handle_put(tid, time, event)
        elif kind is SyncKind.PC_GET:
            self._handle_get(tid, time, event)
        elif kind is SyncKind.JOIN:
            self._handle_join(tid, time, event)
        elif kind is SyncKind.END:
            self._handle_end(tid, time)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unhandled sync kind {kind}")

    def _handle_barrier(self, tid: int, time: float, event: SyncOp) -> None:
        cause = event.kind.value
        arrivals = self.barrier_arrivals.setdefault(event.obj, [])
        arrivals.append((tid, time))
        if len(arrivals) < len(event.participants):
            self._block(tid, time, cause)
            return
        # Last arriver releases the barrier: everyone proceeds at ``time``
        # (the paper: the slowest thread determines the epoch's end).
        del self.barrier_arrivals[event.obj]
        for other, arrived in arrivals:
            if other == tid:
                self.threads[tid].next_segment += 1
                self._advance(tid)
            else:
                self._resume(other, time, cause)

    def _handle_lock(self, tid: int, time: float, event: SyncOp) -> None:
        owner = self.lock_owner.get(event.obj)
        if owner is None:
            self.lock_owner[event.obj] = tid
            self.threads[tid].next_segment += 1
            self._advance(tid)
        else:
            self._seq += 1
            heapq.heappush(
                self.lock_waiters.setdefault(event.obj, []),
                (time, self._seq, tid),
            )
            self._block(tid, time, SyncKind.LOCK.value)

    def _handle_unlock(self, tid: int, time: float, event: SyncOp) -> None:
        if self.lock_owner.get(event.obj) != tid:
            raise DeadlockError(
                f"thread {tid} unlocked mutex {event.obj} it does not hold"
            )
        waiters = self.lock_waiters.get(event.obj)
        if waiters:
            _, _, nxt = heapq.heappop(waiters)
            self.lock_owner[event.obj] = nxt
            self._resume(nxt, time, SyncKind.LOCK.value)
        else:
            self.lock_owner[event.obj] = None
        self.threads[tid].next_segment += 1
        self._advance(tid)

    def _handle_put(self, tid: int, time: float, event: SyncOp) -> None:
        queue = self.items.setdefault(event.obj, [])
        queue.extend([time] * event.items)
        waiters = self.item_waiters.get(event.obj)
        while waiters and queue:
            _, _, consumer = heapq.heappop(waiters)
            queue.pop(0)
            self._resume(consumer, time, SyncKind.PC_GET.value)
        self.threads[tid].next_segment += 1
        self._advance(tid)

    def _handle_get(self, tid: int, time: float, event: SyncOp) -> None:
        queue = self.items.setdefault(event.obj, [])
        if queue:
            posted = queue.pop(0)
            state = self.threads[tid]
            state.next_segment += 1
            state.time = max(time, posted)
            if posted > time:
                self.timeline.record_idle(
                    tid, time, posted, SyncKind.PC_GET.value
                )
            self._advance(tid)
        else:
            self._seq += 1
            heapq.heappush(
                self.item_waiters.setdefault(event.obj, []),
                (time, self._seq, tid),
            )
            self._block(tid, time, SyncKind.PC_GET.value)

    def _handle_join(self, tid: int, time: float, event: SyncOp) -> None:
        child = event.obj
        if child in self.end_times:
            state = self.threads[tid]
            end = self.end_times[child]
            state.next_segment += 1
            state.time = max(time, end)
            if end > time:
                self.timeline.record_idle(
                    tid, time, end, SyncKind.JOIN.value
                )
            self._advance(tid)
        else:
            self.join_waiters.setdefault(child, []).append((tid, time))
            self._block(tid, time, SyncKind.JOIN.value)

    def _handle_end(self, tid: int, time: float) -> None:
        state = self.threads[tid]
        state.done = True
        self.end_times[tid] = time
        self.timeline.ended_at[tid] = time
        for waiter, _ in self.join_waiters.pop(tid, []):
            self._resume(waiter, time, SyncKind.JOIN.value)

    # -- main loop ----------------------------------------------------------

    def run(self) -> ScheduleResult:
        self._start_thread(0, 0.0)
        while self.queue:
            time, _, tid = heapq.heappop(self.queue)
            event = self.programs[tid][self.threads[tid].next_segment]
            self._handle(tid, time, event)
        not_done = [t for t, s in enumerate(self.threads)
                    if s.started and not s.done]
        never_started = [t for t, s in enumerate(self.threads)
                         if not s.started]
        if not_done or never_started:
            raise DeadlockError(
                f"execution stalled: blocked threads {not_done}, "
                f"never created {never_started}"
            )
        active = [self.timeline.active_time(t) for t in range(self.n)]
        idle = [self.timeline.idle_time(t) for t in range(self.n)]
        return ScheduleResult(
            timeline=self.timeline,
            end_time=self.timeline.end_time,
            active=active,
            idle=idle,
        )


@dataclass
class BatchedScheduleResult(ScheduleResult):
    """A :class:`ScheduleResult` plus the chunk execution order.

    ``order`` lists maximal strides ``(tid, lo, hi)``: thread ``tid``
    executed segments ``lo..hi-1`` consecutively, with no other
    thread's segment in between.  Flattening the strides reproduces the
    spec scheduler's per-segment ``execute`` call order exactly.
    """

    order: List[Tuple[int, int, int]] = field(default_factory=list)


class _BatchedScheduler(_Scheduler):
    """DES replay over precomputed durations, advanced in strides.

    The spec scheduler pushes ``(end, seq, tid)`` per segment and pops
    it right back when no earlier event is pending.  With durations
    known up front, that round-trip is skipped: while the thread's
    upcoming segments terminate in NONE and each end time is *strictly*
    earlier than the earliest pending event, the segments execute
    inline.  Strictness matters — at equal times the pending heap entry
    carries the smaller sequence number and pops first — and the
    sequence counter still advances once per segment so every later
    FIFO tie-break matches the spec bit for bit.
    """

    def __init__(
        self,
        programs: List[List[SyncOp]],
        durations: Sequence[Sequence[float]],
    ) -> None:
        if len(durations) != len(programs):
            raise ValueError("need one duration list per thread")
        for tid, (prog, durs) in enumerate(zip(programs, durations)):
            if len(durs) != len(prog):
                raise ValueError(
                    f"thread {tid}: {len(durs)} durations for "
                    f"{len(prog)} segments"
                )
        self._durations = [list(map(float, durs)) for durs in durations]
        self.order: List[Tuple[int, int, int]] = []
        super().__init__(programs, self._replay_execute)
        # none_runs[tid][i]: number of consecutive segments starting at
        # i whose terminating event is NONE (the stride-eligible run).
        self._none_runs = []
        for prog in programs:
            runs = [0] * (len(prog) + 1)
            for i in range(len(prog) - 1, -1, -1):
                if prog[i].kind is SyncKind.NONE:
                    runs[i] = runs[i + 1] + 1
            self._none_runs.append(runs)

    def _replay_execute(self, tid: int, idx: int, start: float) -> float:
        # _push_order, inlined: this runs once per non-strided segment.
        order = self.order
        if order and order[-1][0] == tid and order[-1][2] == idx:
            order[-1] = (tid, order[-1][1], idx + 1)
        else:
            order.append((tid, idx, idx + 1))
        return self._durations[tid][idx]

    def _push_order(self, tid: int, lo: int, hi: int) -> None:
        order = self.order
        if order and order[-1][0] == tid and order[-1][2] == lo:
            order[-1] = (tid, order[-1][1], hi)
        else:
            order.append((tid, lo, hi))

    def _handle(self, tid: int, time: float, event: SyncOp) -> None:
        # Strides are taken only from the NONE handler: it is the one
        # handler that advances exactly this thread, so the heap top is
        # a complete picture of what could interleave.  Handlers that
        # wake several threads (CREATE, barrier release, unlock, puts)
        # advance them mid-update, and a stride there would run ahead
        # of events those threads are about to push.
        if event.kind is not SyncKind.NONE:
            super()._handle(tid, time, event)
            return
        state = self.threads[tid]
        state.next_segment += 1
        nxt = state.next_segment
        runs = self._none_runs[tid]
        k = runs[nxt] if nxt < len(runs) - 1 else 0
        if k:
            durs = self._durations[tid]
            top = self.queue[0][0] if self.queue else None
            active = self.timeline.active[tid]
            t = state.time
            done = 0
            for i in range(nxt, nxt + k):
                dur = durs[i]
                if dur < 0:
                    break  # defer to the spec path's ValueError
                end = t + dur
                if top is not None and end >= top:
                    break  # the pending event pops first (ties by seq)
                if end > t:
                    active.append(Interval(t, end))
                t = end
                done += 1
            if done:
                self._push_order(tid, nxt, nxt + done)
                self._seq += done
                state.time = t
                state.next_segment = nxt + done
        self._advance(tid)


def run_schedule(
    programs: List[List[SyncOp]], execute: ExecuteFn
) -> ScheduleResult:
    """Replay a workload's synchronization structure.

    Parameters
    ----------
    programs:
        Per-thread lists of segment-terminating events (the structure of
        a :class:`~repro.workloads.ir.WorkloadTrace`, or of a profile).
    execute:
        Callback computing each segment's duration; called exactly once
        per segment, in deterministic order.
    """
    return _Scheduler(programs, execute).run()


def run_schedule_batched(
    programs: List[List[SyncOp]],
    durations: Sequence[Sequence[float]],
) -> BatchedScheduleResult:
    """Replay a synchronization structure over precomputed durations.

    Bit-identical to :func:`run_schedule` with a callback returning
    ``durations[tid][idx]`` — same timeline (digest-equal), same
    deadlock diagnostics, same deterministic segment order — but
    synchronization-free runs advance in batched strides instead of one
    heap event per segment.  The result additionally carries ``order``,
    the exact interleaving the spec scheduler would have produced,
    which the profiler feeds to the batch locality engine.
    """
    scheduler = _BatchedScheduler(programs, durations)
    result = scheduler.run()
    return BatchedScheduleResult(
        timeline=result.timeline,
        end_time=result.end_time,
        active=result.active,
        idle=result.idle,
        order=scheduler.order,
    )
