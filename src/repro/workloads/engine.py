"""Columnar two-phase trace-expansion engine (planner/executor).

:mod:`repro.workloads.generator` expands a workload one segment at a
time, re-deriving the *static-code* artifacts — the layout-shuffled
loop body and the hidden periodic branch pattern — for every dynamic
segment, although they are a pure function of
``(layout_seed, code_region, mix, body_len)`` and therefore identical
across every epoch and thread executing the same code region.  With
the profiler's array work closed, that redundancy made expansion the
suite loop's dominant cost (~40% per the CI cProfile artifact).

This engine splits expansion into two phases:

1. **Plan** — walk one workload (or a whole suite of workloads),
   collect every ``(spec, thread, segment)`` expansion job, size one
   contiguous per-thread **arena** per trace column, and memoize the
   static-code artifacts: the loop-body layout (one
   ``layout_rng.permutation`` per static key instead of per segment)
   and, per ``(static key, n)``, the tiled op/iline columns plus the
   memory/branch/load index sets every dynamic fill needs.
2. **Execute** — run the per-segment dynamic draws (dependence
   distances, addresses, branch-outcome noise) writing straight into
   the arena; the resulting :class:`~repro.workloads.ir.TraceBlock`
   objects are zero-copy views of it.

Bit-identity with the legacy path is structural, not incidental: the
dynamic streams still come from ``SeedSequence([seed, thread, index])``
exactly as in :mod:`~repro.workloads.generator`, the static memo
replays the same ``layout_rng`` draw sequence once per key, and the
dynamic fills consume their generator in the same order and sizes as
the legacy helpers.  ``generator.expand`` is preserved as the
executable spec; the hypothesis suite in ``tests/test_engine.py`` pins
digest-identical output across the spec space.

:func:`pack_trace` / :func:`unpack_trace` are the columnar wire format
the content-addressed ``"traces"`` store kind persists
(:mod:`repro.experiments.store`).
"""

from __future__ import annotations

import pickle
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import span
from repro.workloads import branches as _branches
from repro.workloads import patterns as _patterns
from repro.workloads.generator import (
    _class_counts,
    _iline_array,
    _layout_rng,
    _segment_rng,
)
from repro.workloads.ir import (
    OP_BRANCH,
    OP_CLASSES,
    OP_LOAD,
    OP_STORE,
    Segment,
    ThreadTrace,
    TraceBlock,
    WorkloadTrace,
)
from repro.workloads.spec import EpochSpec, WorkloadSpec


class EngineStats:
    """Process-wide expansion counters (monotonic, thread-safe).

    Surfaced by the serving subsystem's ``/healthz`` and diffed by the
    bench harness for the ``expand`` section of
    ``BENCH_profiler.json``.
    """

    _FIELDS = (
        "workloads", "segments", "instructions", "arena_bytes",
        "layout_hits", "layout_misses", "image_hits", "image_misses",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)

    def record_workload(
        self, segments: int, instructions: int, arena_bytes: int
    ) -> None:
        with self._lock:
            self.workloads += 1
            self.segments += segments
            self.instructions += instructions
            self.arena_bytes += arena_bytes

    def record_layout(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.layout_hits += 1
            else:
                self.layout_misses += 1

    def record_image(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.image_hits += 1
            else:
                self.image_misses += 1

    def snapshot(self) -> Dict[str, float]:
        """Counter snapshot plus derived memo hit rates."""
        with self._lock:
            out: Dict[str, float] = {
                name: getattr(self, name) for name in self._FIELDS
            }
        lookups = out["image_hits"] + out["image_misses"]
        out["memo_hit_rate"] = (
            out["image_hits"] / lookups if lookups else 0.0
        )
        return out


#: The process-wide counter instance every engine feeds.
ENGINE_STATS = EngineStats()


@dataclass
class _StaticCode:
    """Layout-seed artifacts of one static code region.

    Reproduces exactly the ``layout_rng`` draw sequence of the legacy
    path: class counts (no draws), one body permutation, then — only
    for periodic branch specs whose body contains a branch — the
    hidden pattern.
    """

    body: np.ndarray  # uint8 loop body, layout-shuffled
    pattern: Optional[np.ndarray]  # hidden periodic branch pattern


@dataclass
class _CodeImage:
    """Per-``(static key, n)`` columns and index sets.

    Everything the dynamic fills need that does not depend on the
    segment RNG: the tiled op/iline columns and the memory / branch /
    load index sets the legacy helpers re-derive per segment.
    """

    n: int
    op: np.ndarray  # uint8, tiled body
    iline: np.ndarray  # int64
    positions: np.ndarray  # int32 arange(n), for the dep clamp
    mem_idx: np.ndarray  # int64 positions of LOAD/STORE ops
    mem_store: np.ndarray  # bool per mem_idx entry
    has_store: bool
    n_store: int
    load_idx: np.ndarray  # int32 positions of LOAD ops
    br_idx: np.ndarray  # int64 positions of BRANCH ops
    pattern: Optional[np.ndarray]  # shared with the _StaticCode
    nbytes: int = 0  # memo-eviction accounting


def _mix_key(mix: Dict[str, float]) -> Tuple:
    return tuple(
        sorted((name, float(f)) for name, f in mix.items() if f)
    )


def _layout_key(layout_seed: int, spec: EpochSpec, body_len: int) -> Tuple:
    """Identity of the static-code artifacts.

    Everything that shapes the ``layout_rng`` draw sequence: the seed
    and code region pick the generator, ``body_len`` and the mix fix
    the permutation's size and content, and the branch kind/period fix
    whether (and how large) the hidden-pattern draw is.
    """
    return (
        layout_seed, spec.code_region, body_len, _mix_key(spec.mix),
        spec.branch.kind, spec.branch.period,
    )


def static_block_key(layout_seed: int, spec: EpochSpec) -> Tuple:
    """Identity of a segment's static artifacts (op/iline columns).

    This is exactly the engine's code-image memo key: two blocks
    expanded under equal keys carry bit-identical ``op`` and ``iline``
    columns (the dynamic ``dep``/``addr``/``taken`` columns still
    differ per segment RNG).  The expansion engine stamps it on every
    arena block as :attr:`~repro.workloads.ir.TraceBlock.static_key`,
    and the profiler's segment-prep cache memoizes per-key precompute
    off it.
    """
    body_len = min(spec.n, spec.code_lines * spec.instrs_per_line)
    lkey = _layout_key(layout_seed, spec, body_len)
    return (lkey, spec.n, spec.code_lines, spec.instrs_per_line)


def _build_static(
    layout_seed: int, spec: EpochSpec, body_len: int
) -> _StaticCode:
    layout_rng = _layout_rng(layout_seed, spec.code_region)
    counts = _class_counts(body_len, spec.mix, layout_rng)
    body = layout_rng.permutation(
        np.repeat(np.arange(len(OP_CLASSES), dtype=np.uint8), counts)
    )
    pattern = None
    # The legacy path draws the hidden pattern iff the (tiled) op
    # stream contains a branch; body_len == min(n, body capacity)
    # guarantees the full body appears in every tiling, so "branch in
    # body" is exactly that condition.
    if spec.branch.kind == "periodic" and bool((body == OP_BRANCH).any()):
        pattern = _branches.hidden_pattern(spec.branch, layout_rng)
    return _StaticCode(body=body, pattern=pattern)


def _build_image(static: _StaticCode, spec: EpochSpec, n: int) -> _CodeImage:
    body = static.body
    reps = -(-n // len(body))  # ceil
    op = np.tile(body, reps)[:n]
    is_load = op == OP_LOAD
    is_store = op == OP_STORE
    mem_idx = np.flatnonzero(is_load | is_store)
    mem_store = is_store[mem_idx]
    image = _CodeImage(
        n=n,
        op=op,
        iline=_iline_array(spec, n),
        positions=np.arange(n, dtype=np.int32),
        mem_idx=mem_idx,
        mem_store=mem_store,
        has_store=bool(mem_store.any()),
        n_store=int(mem_store.sum()),
        load_idx=np.flatnonzero(is_load).astype(np.int32),
        br_idx=np.flatnonzero(op == OP_BRANCH),
        pattern=static.pattern,
    )
    image.nbytes = sum(
        getattr(image, name).nbytes
        for name in ("op", "iline", "positions", "mem_idx",
                     "mem_store", "load_idx", "br_idx")
    )
    return image


# -- dynamic fills -----------------------------------------------------------
#
# Mirrors of the legacy ``_dep_array`` / ``_addr_array`` /
# ``_taken_array`` helpers with the index work hoisted into the
# memoized _CodeImage.  Each consumes the segment generator with the
# exact same calls, in the same order, with the same sizes — the
# bit-identity contract.


def _fill_dep(
    spec: EpochSpec,
    image: _CodeImage,
    rng: np.random.Generator,
    out: np.ndarray,
) -> None:
    dep = rng.geometric(1.0 / spec.mean_dep, size=image.n).astype(
        np.int32
    )
    np.minimum(dep, image.positions, out=dep)  # cannot reach before block
    if spec.load_chain_frac > 0.0:
        load_idx = image.load_idx
        if len(load_idx) > 1:
            chained = rng.random(len(load_idx) - 1) < spec.load_chain_frac
            targets = load_idx[1:][chained]
            producers = load_idx[:-1][chained]
            dep[targets] = targets - producers
    out[:] = dep


def _fill_addr(
    spec: EpochSpec,
    image: _CodeImage,
    rng: np.random.Generator,
    thread_id: int,
    out: np.ndarray,
) -> None:
    out.fill(-1)
    mem_idx = image.mem_idx
    if len(mem_idx) == 0:
        return
    patterns = list(spec.mem)
    weights = np.array([p.weight for p in patterns], dtype=float)
    load_w = weights / weights.sum()
    store_ok = np.array([p.store_ok for p in patterns], dtype=bool)
    choice = rng.choice(len(patterns), size=len(mem_idx), p=load_w)
    if image.has_store and not store_ok.all():
        sw = np.where(store_ok, weights, 0.0)
        sw = sw / sw.sum()
        choice[image.mem_store] = rng.choice(
            len(patterns), size=image.n_store, p=sw
        )
    for pi, pattern in enumerate(patterns):
        slots = mem_idx[choice == pi]
        if len(slots) == 0:
            continue
        out[slots] = _patterns.addresses(
            pattern, len(slots), rng, thread_id
        )


def _fill_taken(
    spec: EpochSpec,
    image: _CodeImage,
    rng: np.random.Generator,
    out: np.ndarray,
) -> None:
    out.fill(0)
    br_idx = image.br_idx
    if len(br_idx):
        out[br_idx] = _branches.outcomes(
            spec.branch, len(br_idx), rng, pattern=image.pattern
        )


@dataclass
class _Job:
    """One planned segment expansion: spec + RNG identity + arena view."""

    spec: EpochSpec
    thread_id: int
    index: int
    block: TraceBlock  # zero-copy arena views this job fills
    image: _CodeImage  # memoized static-code artifacts


class ExpansionEngine:
    """Planner/executor expansion with memoized static-code artifacts.

    One engine instance is meant to be long-lived (module singleton,
    service engine): its static memo carries loop-body layouts and
    code images across workloads, so a suite whose benchmarks share
    seeds and code regions pays each static artifact once.  Thread
    safe; duplicate memo builds under concurrency are possible and
    harmless (last writer wins, all writers are bit-identical).
    """

    def __init__(
        self,
        max_layouts: int = 1024,
        max_images: int = 512,
        max_image_bytes: int = 256 << 20,
        stats: Optional[EngineStats] = None,
    ) -> None:
        self._layouts: "OrderedDict[Tuple, _StaticCode]" = OrderedDict()
        self._images: "OrderedDict[Tuple, _CodeImage]" = OrderedDict()
        self.max_layouts = max_layouts
        self.max_images = max_images
        #: Byte budget for the image memo: each _CodeImage holds O(n)
        #: columns (~25 B per instruction), so a long-lived engine
        #: serving many distinct spec shapes must evict by bytes, not
        #: just entry count.
        self.max_image_bytes = max_image_bytes
        self._image_bytes = 0
        self._lock = threading.Lock()
        self.stats = stats if stats is not None else ENGINE_STATS

    # -- static memo --------------------------------------------------------

    def _static(
        self, lkey: Tuple, layout_seed: int, spec: EpochSpec, body_len: int
    ) -> _StaticCode:
        with self._lock:
            static = self._layouts.get(lkey)
            if static is not None:
                self._layouts.move_to_end(lkey)
        self.stats.record_layout(hit=static is not None)
        if static is None:
            static = _build_static(layout_seed, spec, body_len)
            with self._lock:
                self._layouts[lkey] = static
                while len(self._layouts) > self.max_layouts:
                    self._layouts.popitem(last=False)
        return static

    def _image(
        self,
        layout_seed: int,
        spec: EpochSpec,
        ikey: Optional[Tuple] = None,
    ) -> _CodeImage:
        body_len = min(spec.n, spec.code_lines * spec.instrs_per_line)
        lkey = _layout_key(layout_seed, spec, body_len)
        # iline additionally depends on the (code_lines, instrs_per_line)
        # split, which body_len alone does not pin down.
        if ikey is None:
            ikey = (lkey, spec.n, spec.code_lines, spec.instrs_per_line)
        with self._lock:
            image = self._images.get(ikey)
            if image is not None:
                self._images.move_to_end(ikey)
        self.stats.record_image(hit=image is not None)
        if image is None:
            static = self._static(lkey, layout_seed, spec, body_len)
            image = _build_image(static, spec, spec.n)
            with self._lock:
                old = self._images.pop(ikey, None)
                if old is not None:
                    self._image_bytes -= old.nbytes
                self._images[ikey] = image
                self._image_bytes += image.nbytes
                while self._images and (
                    len(self._images) > self.max_images
                    or self._image_bytes > self.max_image_bytes
                ):
                    _, evicted = self._images.popitem(last=False)
                    self._image_bytes -= evicted.nbytes
        return image

    # -- expansion ----------------------------------------------------------

    def expand(self, workload: WorkloadSpec) -> WorkloadTrace:
        """Expand one workload spec (see :meth:`expand_many`)."""
        with span("expand", workload=workload.name):
            return self.expand_many([workload])[0]

    def expand_many(
        self, workloads: Sequence[WorkloadSpec]
    ) -> List[WorkloadTrace]:
        """Expand a batch of workload specs sharing one planning pass.

        Phase 1 collects every ``(spec, thread, index)`` job across
        *all* workloads, allocating one contiguous arena per thread
        and memoizing static-code artifacts; phase 2 executes the
        dynamic draws job by job.  Traces are validated exactly as the
        legacy path validates them.
        """
        jobs: List[Tuple[int, _Job]] = []
        traces: List[WorkloadTrace] = []
        for w in workloads:
            threads: List[ThreadTrace] = []
            n_segments = 0
            n_instructions = 0
            arena_bytes = 0
            for tid, plan_list in enumerate(w.plans):
                total = sum(
                    plan.spec.n
                    for plan in plan_list
                    if plan.spec is not None
                )
                arena = _ThreadArena(total)
                arena_bytes += arena.nbytes
                offset = 0
                segments: List[Segment] = []
                for idx, plan in enumerate(plan_list):
                    if plan.spec is None or plan.spec.n == 0:
                        block = TraceBlock.empty()
                    else:
                        n = plan.spec.n
                        block = arena.view(offset, offset + n)
                        offset += n
                        ikey = static_block_key(w.seed, plan.spec)
                        block.static_key = ikey
                        jobs.append((
                            w.seed,
                            _Job(
                                spec=plan.spec, thread_id=tid,
                                index=idx, block=block,
                                image=self._image(w.seed, plan.spec, ikey),
                            ),
                        ))
                    segments.append(
                        Segment(
                            block=block, event=plan.event, epoch=idx,
                            label=plan.label,
                        )
                    )
                    n_segments += 1
                n_instructions += offset
                threads.append(
                    ThreadTrace(thread_id=tid, segments=segments)
                )
            traces.append(
                WorkloadTrace(name=w.name, threads=threads, seed=w.seed)
            )
            self.stats.record_workload(
                segments=n_segments,
                instructions=n_instructions,
                arena_bytes=arena_bytes,
            )

        for seed, job in jobs:
            self._execute(seed, job)
        for trace in traces:
            trace.validate()
        return traces

    def _execute(self, seed: int, job: _Job) -> None:
        spec = job.spec
        image = job.image
        rng = _segment_rng(seed, job.thread_id, job.index)
        block = job.block
        np.copyto(block.op, image.op)
        _fill_dep(spec, image, rng, block.dep)
        _fill_addr(spec, image, rng, job.thread_id, block.addr)
        _fill_taken(spec, image, rng, block.taken)
        np.copyto(block.iline, image.iline)


class _ThreadArena:
    """One thread's contiguous trace columns."""

    __slots__ = ("op", "dep", "addr", "taken", "iline")

    def __init__(self, total: int) -> None:
        self.op = np.empty(total, dtype=np.uint8)
        self.dep = np.empty(total, dtype=np.int32)
        self.addr = np.empty(total, dtype=np.int64)
        self.taken = np.empty(total, dtype=np.uint8)
        self.iline = np.empty(total, dtype=np.int64)

    @property
    def nbytes(self) -> int:
        return sum(
            getattr(self, name).nbytes for name in self.__slots__
        )

    def view(self, lo: int, hi: int) -> TraceBlock:
        return TraceBlock(
            op=self.op[lo:hi],
            dep=self.dep[lo:hi],
            addr=self.addr[lo:hi],
            taken=self.taken[lo:hi],
            iline=self.iline[lo:hi],
        )


#: Process-wide engine: shared static memo for every caller that does
#: not need private memo accounting (the bench harness constructs its
#: own to measure clean hit rates).
_DEFAULT: Optional[ExpansionEngine] = None
_DEFAULT_LOCK = threading.Lock()


def default_engine() -> ExpansionEngine:
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = ExpansionEngine()
        return _DEFAULT


def expand(workload: WorkloadSpec) -> WorkloadTrace:
    """Expand a workload through the shared columnar engine.

    Drop-in, bit-identical replacement for
    :func:`repro.workloads.generator.expand` (the preserved executable
    spec); production call sites route here — usually via a
    :class:`~repro.experiments.store.TraceCache` so repeated
    expansions of the same spec are cache hits.
    """
    return default_engine().expand(workload)


def expand_many(workloads: Sequence[WorkloadSpec]) -> List[WorkloadTrace]:
    """Batch expansion through the shared columnar engine."""
    return default_engine().expand_many(workloads)


# -- columnar wire format ----------------------------------------------------


def pack_trace(trace: WorkloadTrace) -> dict:
    """Columnar payload of a trace (consumed by the ``"traces"`` store kind).

    One concatenated column per array per thread plus per-segment
    metadata — the arena layout, serialized.  Pickles compactly (numpy
    arrays dump as raw buffers) and restores with zero-copy views.
    """
    threads = []
    for t in trace.threads:
        blocks = [seg.block for seg in t.segments]
        threads.append({
            "ns": [b.n_instructions for b in blocks],
            "op": _concat(blocks, "op", np.uint8),
            "dep": _concat(blocks, "dep", np.int32),
            "addr": _concat(blocks, "addr", np.int64),
            "taken": _concat(blocks, "taken", np.uint8),
            "iline": _concat(blocks, "iline", np.int64),
            "events": [seg.event for seg in t.segments],
            "epochs": [seg.epoch for seg in t.segments],
            "labels": [seg.label for seg in t.segments],
            # Static-artifact identities ride along so store-loaded
            # traces stay eligible for the profiler's segment-prep
            # memo; payloads predating the field restore to None.
            "skeys": [seg.block.static_key for seg in t.segments],
        })
    return {"name": trace.name, "seed": trace.seed, "threads": threads}


def _concat(blocks: List[TraceBlock], name: str, dtype) -> np.ndarray:
    arrays = [getattr(b, name) for b in blocks if b.n_instructions]
    if not arrays:
        return np.zeros(0, dtype=dtype)
    return np.ascontiguousarray(np.concatenate(arrays), dtype=dtype)


def unpack_trace(payload: dict) -> WorkloadTrace:
    """Rebuild a trace from :func:`pack_trace` output (zero-copy views)."""
    threads = []
    for tid, t in enumerate(payload["threads"]):
        segments = []
        offset = 0
        skeys = t.get("skeys") or [None] * len(t["ns"])
        for n, event, epoch, label, skey in zip(
            t["ns"], t["events"], t["epochs"], t["labels"], skeys
        ):
            if n == 0:
                block = TraceBlock.empty()
            else:
                lo, hi = offset, offset + n
                block = TraceBlock(
                    op=t["op"][lo:hi],
                    dep=t["dep"][lo:hi],
                    addr=t["addr"][lo:hi],
                    taken=t["taken"][lo:hi],
                    iline=t["iline"][lo:hi],
                    static_key=skey,
                )
                offset += n
            segments.append(
                Segment(block=block, event=event, epoch=epoch, label=label)
            )
        threads.append(ThreadTrace(thread_id=tid, segments=segments))
    return WorkloadTrace(
        name=payload["name"], threads=threads, seed=payload["seed"]
    )


# -- raw-buffer arena format (mmap-friendly) ---------------------------------
#
# The pickled columnar payload above restores cheaply but still copies
# every column out of the pickle stream on load.  The *arena* layout
# below is the zero-copy variant the shared store serves to a pre-fork
# fleet: a pickled metadata header (segment lengths, events, epochs,
# static keys, column directory) followed by the raw column bytes,
# 64-byte aligned.  :func:`load_trace_arena` accepts any buffer — in
# particular an ``mmap.mmap(..., ACCESS_READ)`` — and builds the
# ``TraceBlock`` views directly over it via ``np.frombuffer``, so N
# worker processes mapping the same artifact share one page-cache copy
# and pay no per-process deserialization of the column data.  Arrays
# built over a read-only map come out ``writeable=False``, which is
# the aliasing contract: a consumer cannot corrupt the shared mapping.

ARENA_MAGIC = b"RPPMARN1"
_ARENA_ALIGN = 64
#: Column name -> dtype, fixed by the wire format (matches TraceBlock).
_ARENA_COLUMNS = (
    ("op", np.uint8),
    ("dep", np.int32),
    ("addr", np.int64),
    ("taken", np.uint8),
    ("iline", np.int64),
)


def _arena_pad(offset: int) -> int:
    return (-offset) % _ARENA_ALIGN


def pack_trace_arena(
    trace: WorkloadTrace, meta: Optional[Dict[str, Any]] = None
) -> bytes:
    """Serialize a trace into the raw-buffer arena layout.

    ``meta`` rides along in the pickled header (the store puts its
    schema version and content digest there) and comes back verbatim
    from :func:`load_trace_arena`.

    Layout: ``ARENA_MAGIC | u64 header_len | pickled header | pad |
    column bytes``.  Column offsets in the header are relative to the
    64-byte-aligned start of the data region, so the header needs no
    knowledge of its own serialized size.
    """
    chunks: List[bytes] = []
    rel = 0
    threads_meta = []
    for t in trace.threads:
        blocks = [seg.block for seg in t.segments]
        cols = {}
        for name, dtype in _ARENA_COLUMNS:
            arr = _concat(blocks, name, dtype)
            pad = _arena_pad(rel)
            if pad:
                chunks.append(b"\x00" * pad)
                rel += pad
            data = arr.tobytes()
            cols[name] = (rel, int(arr.size))
            chunks.append(data)
            rel += len(data)
        threads_meta.append({
            "ns": [b.n_instructions for b in blocks],
            "events": [seg.event for seg in t.segments],
            "epochs": [seg.epoch for seg in t.segments],
            "labels": [seg.label for seg in t.segments],
            "skeys": [seg.block.static_key for seg in t.segments],
            "cols": cols,
        })
    header = pickle.dumps({
        "meta": dict(meta or {}),
        "name": trace.name,
        "seed": trace.seed,
        "threads": threads_meta,
    }, protocol=pickle.HIGHEST_PROTOCOL)
    prefix = ARENA_MAGIC + struct.pack("<Q", len(header)) + header
    return b"".join(
        [prefix, b"\x00" * _arena_pad(len(prefix))] + chunks
    )


def is_arena_payload(buf) -> bool:
    """True when ``buf`` starts with the arena magic."""
    return bytes(memoryview(buf)[: len(ARENA_MAGIC)]) == ARENA_MAGIC


def load_trace_arena(buf) -> Tuple[Dict[str, Any], WorkloadTrace]:
    """Rebuild ``(meta, trace)`` from an arena buffer, zero-copy.

    ``buf`` may be ``bytes`` or an ``mmap`` object; every trace column
    is an ``np.frombuffer`` view over it (read-only when the buffer
    is), and the returned blocks keep the buffer alive through their
    ``.base`` chain — the caller may drop its own reference.  Raises
    ``ValueError`` on a malformed payload; the store maps that to
    quarantine exactly like a corrupt pickle.
    """
    mv = memoryview(buf)
    if not is_arena_payload(mv):
        raise ValueError("not an arena payload (bad magic)")
    header_start = len(ARENA_MAGIC) + 8
    if len(mv) < header_start:
        raise ValueError("truncated arena prefix")
    (header_len,) = struct.unpack_from("<Q", mv, len(ARENA_MAGIC))
    if header_start + header_len > len(mv):
        raise ValueError("truncated arena header")
    header = pickle.loads(bytes(mv[header_start:header_start + header_len]))
    data_start = header_start + header_len
    data_start += _arena_pad(data_start)
    threads = []
    for tmeta in header["threads"]:
        t = {
            key: tmeta[key]
            for key in ("ns", "events", "epochs", "labels", "skeys")
        }
        for name, dtype in _ARENA_COLUMNS:
            rel, count = tmeta["cols"][name]
            offset = data_start + rel
            end = offset + count * np.dtype(dtype).itemsize
            if end > len(mv):
                raise ValueError(f"truncated arena column {name!r}")
            t[name] = np.frombuffer(
                buf, dtype=dtype, count=count, offset=offset
            )
        threads.append(t)
    payload = {
        "name": header["name"],
        "seed": header["seed"],
        "threads": threads,
    }
    return header.get("meta", {}), unpack_trace(payload)


__all__ = [
    "ARENA_MAGIC",
    "ENGINE_STATS",
    "EngineStats",
    "ExpansionEngine",
    "default_engine",
    "expand",
    "expand_many",
    "is_arena_payload",
    "load_trace_arena",
    "pack_trace",
    "pack_trace_arena",
    "static_block_key",
    "unpack_trace",
]
