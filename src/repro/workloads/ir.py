"""Abstract-instruction intermediate representation.

A workload expands into one :class:`ThreadTrace` per thread: an ordered
list of :class:`Segment` objects, each a dense :class:`TraceBlock` of
micro-ops terminated by a :class:`SyncOp`.  Segments correspond to the
paper's *inter-synchronization epochs* (Fig. 3a).

Micro-ops carry exactly the information the profiler and simulator need:

* ``op``    - functional-unit class (IALU/IMUL/FP/LOAD/STORE/BRANCH),
* ``dep``   - backward distance (in micro-ops) to the producer of this
  op's input register operand, 0 when the op starts a fresh chain,
* ``addr``  - cache-line index touched by LOAD/STORE ops (-1 otherwise),
* ``taken`` - branch outcome for BRANCH ops (0 otherwise),
* ``iline`` - instruction-cache line holding the op.

All arrays are numpy so profiling and simulation stay tractable in pure
Python.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Functional-unit class codes (indices into :data:`OP_CLASSES`).
OP_IALU = 0
OP_IMUL = 1
OP_FP = 2
OP_LOAD = 3
OP_STORE = 4
OP_BRANCH = 5

#: Class code -> name, in code order.
OP_CLASSES: Tuple[str, ...] = ("ialu", "imul", "fp", "load", "store", "branch")

#: Name -> class code.
OP_CODES: Dict[str, int] = {name: code for code, name in enumerate(OP_CLASSES)}


class SyncKind(enum.Enum):
    """Synchronization event kinds (paper §III-B).

    ``CV_BARRIER`` is a condition-variable-implemented barrier (the
    marker-annotated idiom of Algorithm 1); ``PC_PUT``/``PC_GET`` are the
    producer/consumer condition-variable idiom (broadcast marker / wait
    marker).  ``NONE`` terminates a segment without synchronizing — used
    when a long epoch is split into several trace blocks.
    """

    NONE = "none"
    CREATE = "create"
    JOIN = "join"
    BARRIER = "barrier"
    LOCK = "lock"
    UNLOCK = "unlock"
    CV_BARRIER = "cv_barrier"
    PC_PUT = "pc_put"
    PC_GET = "pc_get"
    END = "end"


@dataclass(frozen=True)
class SyncOp:
    """A synchronization event terminating a segment.

    Parameters
    ----------
    kind:
        Event kind.
    obj:
        Identity of the synchronization object (barrier id, mutex id,
        condition-variable id) or the target thread id for CREATE/JOIN.
    participants:
        For BARRIER / CV_BARRIER: ids of the threads that take part.
    items:
        For PC_PUT: number of items produced by this event.
    """

    kind: SyncKind
    obj: int = 0
    participants: Tuple[int, ...] = ()
    items: int = 1

    def __post_init__(self) -> None:
        if self.kind in (SyncKind.BARRIER, SyncKind.CV_BARRIER):
            if len(self.participants) < 1:
                raise ValueError(f"{self.kind.value} needs participants")
        if self.kind is SyncKind.PC_PUT and self.items < 1:
            raise ValueError("PC_PUT must produce at least one item")


@dataclass
class TraceBlock:
    """A dense block of micro-ops executed by one thread."""

    op: np.ndarray  # uint8
    dep: np.ndarray  # int32, backward producer distance (0 = none)
    addr: np.ndarray  # int64 cache-line index, -1 for non-memory ops
    taken: np.ndarray  # uint8 branch outcome, 0 for non-branches
    iline: np.ndarray  # int64 instruction cache-line index
    #: Identity of the block's *static* artifacts (op and iline
    #: columns), set by the expansion engine: two blocks with equal
    #: keys have bit-identical op/iline content.  ``None`` when the
    #: producer cannot vouch for that (hand-built blocks, chunk views,
    #: traces from stores predating the key).  Deliberately excluded
    #: from :meth:`WorkloadTrace.content_digest` — it is a memo hint,
    #: not content.
    static_key: Optional[Tuple] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        n = len(self.op)
        for name in ("dep", "addr", "taken", "iline"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"array {name!r} length mismatch")

    def __len__(self) -> int:
        return len(self.op)

    @property
    def n_instructions(self) -> int:
        """Number of micro-ops in the block."""
        return len(self.op)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the block's arrays, in bytes.

        For arena-backed blocks (zero-copy views produced by the
        expansion engine) this counts the bytes the view *covers*, not
        the whole arena — summing over a trace's blocks therefore
        equals the arena footprint exactly.
        """
        return sum(
            len(getattr(self, name)) * getattr(self, name).itemsize
            for name in ("op", "dep", "addr", "taken", "iline")
        )

    @classmethod
    def empty(cls) -> "TraceBlock":
        """A zero-instruction block (used for pure-sync segments)."""
        return cls(
            op=np.zeros(0, dtype=np.uint8),
            dep=np.zeros(0, dtype=np.int32),
            addr=np.full(0, -1, dtype=np.int64),
            taken=np.zeros(0, dtype=np.uint8),
            iline=np.zeros(0, dtype=np.int64),
        )

    def view(self, lo: int, hi: int) -> "TraceBlock":
        """Zero-copy sub-block of ops ``lo..hi-1`` (arena-view helper).

        The view does not inherit :attr:`static_key`: the key
        identifies the *whole* block's static columns, which a slice
        no longer matches.
        """
        return TraceBlock(
            op=self.op[lo:hi],
            dep=self.dep[lo:hi],
            addr=self.addr[lo:hi],
            taken=self.taken[lo:hi],
            iline=self.iline[lo:hi],
        )

    def class_counts(self) -> np.ndarray:
        """Micro-op count per functional-unit class (len == len(OP_CLASSES))."""
        return np.bincount(self.op, minlength=len(OP_CLASSES)).astype(np.int64)

    def memory_indices(self) -> np.ndarray:
        """Positions of LOAD/STORE ops within the block."""
        return np.flatnonzero((self.op == OP_LOAD) | (self.op == OP_STORE))

    def branch_indices(self) -> np.ndarray:
        """Positions of BRANCH ops within the block."""
        return np.flatnonzero(self.op == OP_BRANCH)


#: Maximum instructions per cache line assumed by the PC encoding below.
PC_SLOTS_PER_LINE = 16


def instruction_pcs(block: TraceBlock) -> np.ndarray:
    """Synthetic program counters for the ops of ``block``.

    A PC is ``iline * PC_SLOTS_PER_LINE + offset`` where ``offset`` is
    the op's position since the last instruction-cache-line change.  The
    profiler's branch-context statistics and the simulator's predictor
    tables share this definition, exactly as a Pin tool and a simulator
    share real PCs.
    """
    n = len(block.iline)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    pos = np.arange(n, dtype=np.int64)
    changed = np.empty(n, dtype=bool)
    changed[0] = True
    changed[1:] = block.iline[1:] != block.iline[:-1]
    line_start = np.maximum.accumulate(np.where(changed, pos, 0))
    offset = np.minimum(pos - line_start, PC_SLOTS_PER_LINE - 1)
    return block.iline * PC_SLOTS_PER_LINE + offset


def fetch_lines(block: TraceBlock) -> np.ndarray:
    """Instruction-cache fetch stream: ilines with consecutive runs
    collapsed (one fetch per line transition)."""
    n = len(block.iline)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    changed = np.empty(n, dtype=bool)
    changed[0] = True
    changed[1:] = block.iline[1:] != block.iline[:-1]
    return block.iline[changed]


@dataclass
class Segment:
    """A trace block plus the synchronization event that ends it."""

    block: TraceBlock
    event: SyncOp
    #: Epoch index the segment belongs to (used for per-epoch profiles).
    epoch: int = 0
    #: Optional tag for diagnostics (phase name in the workload spec).
    label: str = ""


@dataclass
class ThreadTrace:
    """The full dynamic trace of one thread."""

    thread_id: int
    segments: List[Segment] = field(default_factory=list)

    @property
    def n_instructions(self) -> int:
        """Total micro-ops across all segments."""
        return sum(seg.block.n_instructions for seg in self.segments)

    def sync_events(self) -> List[SyncOp]:
        """All terminating events in order."""
        return [seg.event for seg in self.segments]


@dataclass
class WorkloadTrace:
    """The full dynamic trace of a multithreaded workload.

    Thread 0 is the main thread (created implicitly at start-up, paper
    §III-B); all other threads must be the target of exactly one CREATE
    event before their first segment runs.
    """

    name: str
    threads: List[ThreadTrace]
    #: Seed the trace was expanded with (determinism audit trail).
    seed: int = 0

    def __post_init__(self) -> None:
        ids = [t.thread_id for t in self.threads]
        if ids != list(range(len(ids))):
            raise ValueError("threads must be dense and ordered by id")

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    @property
    def n_instructions(self) -> int:
        """Total dynamic micro-op count across all threads."""
        return sum(t.n_instructions for t in self.threads)

    @property
    def nbytes(self) -> int:
        """Total array footprint across all threads and segments."""
        return sum(
            seg.block.nbytes
            for t in self.threads
            for seg in t.segments
        )

    def thread(self, tid: int) -> ThreadTrace:
        return self.threads[tid]

    def content_digest(self) -> str:
        """Stable SHA-256 digest of the trace's full dynamic content.

        Covers every micro-op array, every synchronization event and
        the thread/segment structure — two traces digest equal iff they
        are bit-identical, regardless of how their arrays are backed
        (legacy per-segment buffers or arena views).  This is the
        identity the content-addressed trace store and the expansion
        equivalence suite hang off.
        """
        h = hashlib.sha256()
        h.update(
            f"trace|{self.name}|{self.seed}|{len(self.threads)}".encode()
        )
        for t in self.threads:
            for seg in t.segments:
                e = seg.event
                h.update(
                    f"|{t.thread_id}|{seg.epoch}|{seg.label}"
                    f"|{e.kind.value}|{e.obj}|{e.participants}"
                    f"|{e.items}|{seg.block.n_instructions}".encode()
                )
                b = seg.block
                for arr in (b.op, b.dep, b.addr, b.taken, b.iline):
                    h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()

    def validate(self) -> None:
        """Check structural well-formedness; raise ValueError if broken.

        Verifies that every non-main thread is created exactly once, that
        every thread's trace ends with END, and that LOCK/UNLOCK pair up
        per thread.
        """
        created = {0}
        for t in self.threads:
            for seg in t.segments:
                if seg.event.kind is SyncKind.CREATE:
                    child = seg.event.obj
                    if child in created:
                        raise ValueError(f"thread {child} created twice")
                    if not 0 <= child < self.n_threads:
                        raise ValueError(f"created unknown thread {child}")
                    created.add(child)
        missing = set(range(self.n_threads)) - created
        if missing:
            raise ValueError(f"threads never created: {sorted(missing)}")
        for t in self.threads:
            if not t.segments or t.segments[-1].event.kind is not SyncKind.END:
                raise ValueError(f"thread {t.thread_id} does not END")
            depth = 0
            for seg in t.segments:
                if seg.event.kind is SyncKind.LOCK:
                    depth += 1
                elif seg.event.kind is SyncKind.UNLOCK:
                    depth -= 1
                    if depth < 0:
                        raise ValueError(
                            f"thread {t.thread_id} UNLOCK without LOCK"
                        )
            if depth != 0:
                raise ValueError(f"thread {t.thread_id} leaves a lock held")
