"""Fluent construction of :class:`WorkloadSpec` programs.

The builder owns the allocation of synchronization-object identities
(barrier/mutex/condition-variable ids) and enforces the structural rules
the trace validator checks later (create-before-use, balanced locks,
END-terminated threads).  All the Rodinia/Parsec workload definitions
are written against this API.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.workloads.ir import SyncKind, SyncOp
from repro.workloads.spec import EpochSpec, SegmentPlan, WorkloadSpec

#: A per-thread epoch description: a single spec used by every thread, a
#: mapping thread-id -> spec, or a callable thread-id -> spec.
SpecLike = Union[EpochSpec, Dict[int, EpochSpec], Callable[[int], EpochSpec]]


def _resolve(spec: SpecLike, thread_id: int) -> EpochSpec:
    if isinstance(spec, EpochSpec):
        return spec
    if isinstance(spec, dict):
        return spec[thread_id]
    return spec(thread_id)


class WorkloadBuilder:
    """Incrementally build a multithreaded workload program."""

    def __init__(self, name: str, n_threads: int, seed: int = 0x5EED):
        if n_threads <= 0:
            raise ValueError("need at least one thread")
        self.name = name
        self.n_threads = n_threads
        self.seed = seed
        self._plans: List[List[SegmentPlan]] = [[] for _ in range(n_threads)]
        self._ids = itertools.count(1)
        self._finished = False

    @property
    def main(self) -> int:
        """Thread id of the main thread."""
        return 0

    @property
    def workers(self) -> List[int]:
        """Thread ids of all non-main threads."""
        return list(range(1, self.n_threads))

    @property
    def all_threads(self) -> List[int]:
        return list(range(self.n_threads))

    def new_id(self) -> int:
        """Allocate a fresh synchronization-object identity."""
        return next(self._ids)

    def add(
        self,
        thread: int,
        spec: Optional[EpochSpec],
        event: SyncOp,
        label: str = "",
    ) -> "WorkloadBuilder":
        """Append one raw segment to ``thread``'s plan."""
        if self._finished:
            raise RuntimeError("workload already finished")
        self._plans[thread].append(SegmentPlan(spec, event, label))
        return self

    def compute(
        self, thread: int, spec: EpochSpec, label: str = ""
    ) -> "WorkloadBuilder":
        """Computation segment with no synchronization at its end."""
        return self.add(thread, spec, SyncOp(SyncKind.NONE), label)

    def spawn_workers(
        self, init_spec: Optional[EpochSpec] = None, label: str = "init"
    ) -> "WorkloadBuilder":
        """Main thread runs ``init_spec`` then creates every worker."""
        first = True
        for child in self.workers:
            spec = init_spec if first else None
            self.add(self.main, spec, SyncOp(SyncKind.CREATE, obj=child),
                     label if first else "")
            first = False
        if first and init_spec is not None:
            # Single-threaded workload: keep the init work anyway.
            self.compute(self.main, init_spec, label)
        return self

    def barrier(
        self,
        spec: SpecLike,
        participants: Optional[Sequence[int]] = None,
        label: str = "",
        condvar: bool = False,
    ) -> "WorkloadBuilder":
        """All ``participants`` compute then meet at a fresh barrier."""
        parts = tuple(participants) if participants else tuple(
            self.all_threads
        )
        bid = self.new_id()
        kind = SyncKind.CV_BARRIER if condvar else SyncKind.BARRIER
        event = SyncOp(kind, obj=bid, participants=parts)
        for tid in parts:
            self.add(tid, _resolve(spec, tid), event, label)
        return self

    def barrier_phases(
        self,
        n_phases: int,
        spec: SpecLike,
        participants: Optional[Sequence[int]] = None,
        label: str = "",
        condvar: bool = False,
    ) -> "WorkloadBuilder":
        """``n_phases`` consecutive barrier-delimited parallel phases."""
        for phase in range(n_phases):
            self.barrier(spec, participants,
                         label=f"{label}[{phase}]" if label else "",
                         condvar=condvar)
        return self

    def critical_loop(
        self,
        threads: Sequence[int],
        iterations: int,
        outer_spec: SpecLike,
        cs_spec: SpecLike,
        mutex: Optional[int] = None,
        label: str = "",
    ) -> "WorkloadBuilder":
        """Each thread loops: parallel work, then a critical section.

        All iterations contend on the same mutex (a fresh one unless
        ``mutex`` is given), producing the lock-dominated behaviour of
        benchmarks like fluidanimate.
        """
        mid = self.new_id() if mutex is None else mutex
        for _ in range(iterations):
            for tid in threads:
                self.add(tid, _resolve(outer_spec, tid),
                         SyncOp(SyncKind.LOCK, obj=mid), label)
                self.add(tid, _resolve(cs_spec, tid),
                         SyncOp(SyncKind.UNLOCK, obj=mid), label)
        return self

    def produce(
        self,
        thread: int,
        spec: Optional[EpochSpec],
        condvar: int,
        items: int = 1,
        label: str = "",
    ) -> "WorkloadBuilder":
        """``thread`` performs work then posts ``items`` to ``condvar``."""
        return self.add(thread, spec,
                        SyncOp(SyncKind.PC_PUT, obj=condvar, items=items),
                        label)

    def consume(
        self,
        thread: int,
        spec: Optional[EpochSpec],
        condvar: int,
        label: str = "",
    ) -> "WorkloadBuilder":
        """``thread`` performs work then waits for an item on ``condvar``."""
        return self.add(thread, spec,
                        SyncOp(SyncKind.PC_GET, obj=condvar), label)

    def join_all(
        self,
        final_spec: Optional[EpochSpec] = None,
        worker_final: Optional[SpecLike] = None,
        label: str = "finalize",
    ) -> WorkloadSpec:
        """Terminate: workers END, main JOINs each then ENDs.

        Returns the finished :class:`WorkloadSpec`.
        """
        for tid in self.workers:
            spec = _resolve(worker_final, tid) if worker_final else None
            self.add(tid, spec, SyncOp(SyncKind.END))
        for tid in self.workers:
            self.add(self.main, None, SyncOp(SyncKind.JOIN, obj=tid))
        self.add(self.main, final_spec, SyncOp(SyncKind.END), label)
        self._finished = True
        return WorkloadSpec(
            name=self.name,
            n_threads=self.n_threads,
            plans=self._plans,
            seed=self.seed,
        )
