"""Synthetic multithreaded workload substrate (the Pin-input substitute).

The paper profiles real Rodinia/Parsec binaries with a Pin tool.  Here,
workloads are *specifications* (:mod:`repro.workloads.spec`) expanded
deterministically into concrete abstract-instruction traces
(:mod:`repro.workloads.generator`).  The same traces feed both the
profiler (:mod:`repro.profiler`) and the reference simulator
(:mod:`repro.simulator`), so model and golden reference observe the same
dynamic instruction stream, exactly as Pin and Sniper observe the same
binary.
"""

from repro.workloads.ir import (
    OP_BRANCH,
    OP_CLASSES,
    OP_FP,
    OP_IALU,
    OP_IMUL,
    OP_LOAD,
    OP_STORE,
    Segment,
    SyncKind,
    SyncOp,
    ThreadTrace,
    TraceBlock,
    WorkloadTrace,
)
from repro.workloads.spec import (
    BranchSpec,
    EpochSpec,
    MemPattern,
    WorkloadSpec,
)
from repro.workloads.generator import expand
from repro.workloads.engine import (
    ExpansionEngine,
    default_engine,
    expand_many,
)
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.rodinia import RODINIA, rodinia_workload
from repro.workloads.parsec import PARSEC, parsec_workload
from repro.workloads.microbench import barrier_loop_workload

__all__ = [
    "OP_BRANCH",
    "OP_CLASSES",
    "OP_FP",
    "OP_IALU",
    "OP_IMUL",
    "OP_LOAD",
    "OP_STORE",
    "Segment",
    "SyncKind",
    "SyncOp",
    "ThreadTrace",
    "TraceBlock",
    "WorkloadTrace",
    "BranchSpec",
    "EpochSpec",
    "MemPattern",
    "WorkloadSpec",
    "WorkloadBuilder",
    "ExpansionEngine",
    "default_engine",
    "expand",
    "expand_many",
    "RODINIA",
    "PARSEC",
    "rodinia_workload",
    "parsec_workload",
    "barrier_loop_workload",
]
