"""Branch-outcome stream generation for :class:`BranchSpec`.

Outcome streams are generated vectorized.  The ``periodic`` kind embeds
a hidden repeating pattern that history-based predictors (and the
entropy profiler) can learn, with an irreducible i.i.d. noise floor —
this is what lets the branch-entropy model and the simulated tournament
predictor disagree in realistic, size-dependent ways.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.spec import BranchSpec


def hidden_pattern(
    spec: BranchSpec, pattern_rng: np.random.Generator
) -> np.ndarray:
    """Draw the hidden repeating bit-pattern of a ``periodic`` spec.

    Part of the *static* workload: every dynamic execution of the same
    code region carries the same pattern, so the expansion engine
    memoizes this per code region instead of re-drawing it per segment.
    """
    pattern = pattern_rng.integers(0, 2, size=spec.period).astype(
        np.uint8
    )
    if pattern.min() == pattern.max():
        # Degenerate constant patterns carry no periodic signal;
        # force at least one transition so the kind behaves as named.
        pattern[0] ^= 1
    return pattern


def outcomes(
    spec: BranchSpec,
    n: int,
    rng: np.random.Generator,
    start_offset: int = 0,
    pattern_rng: np.random.Generator = None,
    pattern: np.ndarray = None,
) -> np.ndarray:
    """Generate ``n`` branch outcomes (uint8, 1 = taken).

    ``start_offset`` keeps periodic patterns phase-continuous when one
    epoch is expanded in several blocks.  ``pattern_rng`` draws the
    *hidden pattern* of the ``periodic`` kind; callers pass a stable
    per-code-region generator so every dynamic execution of the same
    static code carries the same pattern (defaults to ``rng``).  A
    pre-drawn ``pattern`` (from :func:`hidden_pattern`) takes
    precedence over ``pattern_rng`` — the expansion engine's memoized
    path, bit-identical because only the pattern draw moves, never the
    dynamic ``rng`` draws.
    """
    if n == 0:
        return np.zeros(0, dtype=np.uint8)
    if spec.kind == "biased":
        return (rng.random(n) < spec.p_taken).astype(np.uint8)
    if spec.kind == "loop":
        # Taken period-1 times, then not-taken once.
        idx = (start_offset + np.arange(n)) % spec.period
        return (idx != spec.period - 1).astype(np.uint8)
    if spec.kind == "periodic":
        # Hidden pattern: part of the (static) workload, so the profiler
        # and the simulator see the same learnable structure.
        if pattern is None:
            pattern = hidden_pattern(
                spec, pattern_rng if pattern_rng is not None else rng
            )
        idx = (start_offset + np.arange(n)) % spec.period
        base = pattern[idx]
        flips = (rng.random(n) < spec.noise).astype(np.uint8)
        return base ^ flips
    raise ValueError(f"unknown branch kind {spec.kind!r}")
