"""Parsec v3.0 workload definitions (pthread-based).

Ten benchmarks matching the paper's evaluation subset, with the
synchronization structure of Table III (critical sections, barriers,
condition variables — scaled down ~100x with the instruction budget)
and the balance classes of Figure 6:

* **balanced** (blackscholes, canneal, fluidanimate, raytrace,
  swaptions): the main thread spawns four workers, divides the work and
  performs none itself;
* **main-works** (facesim, freqmine): main + three workers, the main
  thread computes too (freqmine's main is the bottleneck);
* **imbalanced** (bodytrack, streamcluster, vips): main + three/four
  workers, the main thread only does bookkeeping, so worker parallelism
  is capped below the core count.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List

from repro.workloads import kernels as k
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.ir import SyncKind, SyncOp
from repro.workloads.spec import EpochSpec, WorkloadSpec

#: Paper Table III dynamic synchronization event counts (for reports).
PAPER_TABLE_III: Dict[str, Dict[str, int]] = {
    "blackscholes": {"critical_sections": 0, "barriers": 0, "condvars": 0},
    "bodytrack": {"critical_sections": 6700, "barriers": 98, "condvars": 25},
    "canneal": {"critical_sections": 4, "barriers": 64, "condvars": 0},
    "facesim": {"critical_sections": 10472, "barriers": 0,
                "condvars": 1232},
    "fluidanimate": {"critical_sections": 2_140_206, "barriers": 50,
                     "condvars": 0},
    "freqmine": {"critical_sections": 0, "barriers": 0, "condvars": 0},
    "raytrace": {"critical_sections": 47, "barriers": 0, "condvars": 15},
    "streamcluster": {"critical_sections": 68, "barriers": 13003,
                      "condvars": 34},
    "swaptions": {"critical_sections": 0, "barriers": 0, "condvars": 0},
    "vips": {"critical_sections": 8973, "barriers": 0, "condvars": 1433},
}


def _seed_for(name: str) -> int:
    return zlib.crc32(f"parsec.{name}".encode()) & 0x3FFFFFFF


def _bookkeeping(n: int, region: int) -> EpochSpec:
    """Light main-thread bookkeeping work."""
    return EpochSpec(
        n=n, mix=dict(k.GENERIC),
        mem=(k.working_set(800, region=region),),
        branch=k.BR_MEDIUM, code_lines=32, code_region=region,
    )


def _init_spec(n: int, region: int = 20) -> EpochSpec:
    return EpochSpec(
        n=n, mix=dict(k.GENERIC),
        mem=(k.stream(8_000, region=region, reuse=10),),
        branch=k.BR_MEDIUM, code_lines=64, code_region=region,
    )


def _blackscholes(scale: float) -> WorkloadSpec:
    # Embarrassingly parallel FP option pricing: 4 equal workers,
    # join-only synchronization, streaming over the option array.
    b = WorkloadBuilder("parsec.blackscholes", 5,
                        seed=_seed_for("blackscholes"))
    work = EpochSpec(
        n=int(42_000 * scale), mix=dict(k.FP_COMPUTE),
        mem=(k.stream(50_000, region=0, reuse=10),
             k.working_set(1_000, region=1, weight=0.6, hot_frac=1.0,
                           hot_lines=1_000)),
        branch=k.BR_BIASED, mean_dep=5.0, code_lines=80, code_region=1,
    )
    b.spawn_workers(_init_spec(int(3_000 * scale)))
    for tid in b.workers:
        b.compute(tid, work, label="price")
    return b.join_all()


def _bodytrack(scale: float) -> WorkloadSpec:
    # Particle-filter body tracking: condvar barriers between stages,
    # critical sections around the shared work queue; main only
    # coordinates (imbalanced class).
    b = WorkloadBuilder("parsec.bodytrack", 4, seed=_seed_for("bodytrack"))
    worker_work = EpochSpec(
        n=int(2_800 * scale),
        mix=dict(k.mix(ialu=0.30, fp=0.26, load=0.26, store=0.06,
                       branch=0.12)),
        mem=(k.working_set(30_000, hot_lines=1_500, hot_frac=0.96,
                           region=0),
             k.shared_read(8_000, region=1, weight=0.5, hot_frac=0.95)),
        branch=k.BR_MEDIUM, mean_dep=3.2, code_lines=96, code_region=1,
    )
    queue_outer = EpochSpec(
        n=int(220 * scale), mix=dict(k.INT_CONTROL),
        mem=(k.working_set(600, region=2),), branch=k.BR_HARD,
        code_lines=24, code_region=2,
    )
    queue_cs = EpochSpec(
        n=int(70 * scale), mix=dict(k.INT_CONTROL),
        mem=(k.shared_rw(96, region=3),), branch=k.BR_BIASED,
        code_lines=8, code_region=3,
    )
    main_book = _bookkeeping(int(200 * scale), region=4)
    b.spawn_workers(_init_spec(int(7_000 * scale)))
    for phase in range(12):
        b.critical_loop(b.workers, 2, queue_outer, queue_cs,
                        label=f"queue{phase}")
        b.barrier(
            lambda tid: main_book if tid == b.main else worker_work,
            condvar=True, label=f"stage{phase}",
        )
    return b.join_all()


def _canneal(scale: float) -> WorkloadSpec:
    # Simulated annealing of a netlist: random swaps over a huge shared
    # read-write structure (coherence traffic), barrier per temperature
    # step, one lock per worker at setup.
    b = WorkloadBuilder("parsec.canneal", 5, seed=_seed_for("canneal"))
    work = EpochSpec(
        n=int(2_600 * scale), mix=dict(k.INT_CONTROL),
        mem=(k.shared_rw(20_000, region=0, hot_frac=0.92),
             k.working_set(1_500, region=1, weight=0.5, hot_frac=1.0,
                           hot_lines=1_500)),
        branch=k.BR_HARD, mean_dep=2.8, load_chain_frac=0.20,
        code_lines=72, code_region=1,
    )
    setup_cs = EpochSpec(
        n=int(100 * scale), mix=dict(k.GENERIC),
        mem=(k.shared_rw(64, region=2),), branch=k.BR_BIASED,
        code_lines=8, code_region=2,
    )
    b.spawn_workers(_init_spec(int(9_000 * scale)))
    mid = b.new_id()
    for tid in b.workers:
        b.add(tid, None, SyncOp(SyncKind.LOCK, obj=mid), label="setup")
        b.add(tid, setup_cs, SyncOp(SyncKind.UNLOCK, obj=mid),
              label="setup")
    main_book = _bookkeeping(int(120 * scale), region=4)
    for phase in range(16):
        b.barrier(
            lambda tid: main_book if tid == b.main else work,
            label=f"temp{phase}",
        )
    return b.join_all()


def _facesim(scale: float) -> WorkloadSpec:
    # Physics-based face simulation: condvar-barrier task handoffs plus
    # many small critical sections; the main thread computes too and
    # carries slightly more work (Fig. 6's "fairly well balanced").
    b = WorkloadBuilder("parsec.facesim", 4, seed=_seed_for("facesim"))
    work = EpochSpec(
        n=int(3_400 * scale), mix=dict(k.FP_COMPUTE),
        mem=(k.working_set(45_000, hot_lines=2_500, hot_frac=0.96,
                           region=0),),
        branch=k.BR_MEDIUM, mean_dep=2.6, load_chain_frac=0.08,
        code_lines=112, code_region=1,
    )
    task_outer = EpochSpec(
        n=int(160 * scale), mix=dict(k.INT_CONTROL),
        mem=(k.working_set(400, region=2),), branch=k.BR_MEDIUM,
        code_lines=16, code_region=2,
    )
    task_cs = EpochSpec(
        n=int(50 * scale), mix=dict(k.INT_CONTROL),
        mem=(k.shared_rw(64, region=3),), branch=k.BR_BIASED,
        code_lines=8, code_region=3,
    )
    b.spawn_workers(_init_spec(int(8_000 * scale)))
    for phase in range(12):
        b.critical_loop(b.all_threads, 2, task_outer, task_cs,
                        label=f"tasks{phase}")
        b.barrier(
            lambda tid: work.scaled(1.12) if tid == b.main else work,
            condvar=True, label=f"frame{phase}",
        )
    return b.join_all()


def _fluidanimate(scale: float) -> WorkloadSpec:
    # SPH fluid simulation: fine-grained per-cell locking (the paper's
    # 2.1M critical sections) between frame barriers; balanced workers.
    b = WorkloadBuilder("parsec.fluidanimate", 5,
                        seed=_seed_for("fluidanimate"))
    cell_outer = EpochSpec(
        n=int(260 * scale), mix=dict(k.FP_COMPUTE),
        mem=(k.working_set(9_000, hot_lines=700, hot_frac=0.97,
                           region=0),),
        branch=k.BR_EASY, mean_dep=3.4, code_lines=64, code_region=1,
    )
    cell_cs = EpochSpec(
        n=int(40 * scale), mix=dict(k.MEM_STREAM),
        mem=(k.shared_rw(2_000, region=2, hot_frac=0.9),),
        branch=k.BR_BIASED, code_lines=12, code_region=2,
    )
    frame_work = EpochSpec(
        n=int(750 * scale), mix=dict(k.FP_COMPUTE),
        mem=(k.stream(12_000, region=3, reuse=10),),
        branch=k.BR_EASY, mean_dep=4.0, code_lines=48, code_region=3,
    )
    main_book = _bookkeeping(int(100 * scale), region=4)
    b.spawn_workers(_init_spec(int(8_000 * scale)))
    for phase in range(10):
        b.critical_loop(b.workers, 15, cell_outer, cell_cs,
                        label=f"cells{phase}")
        b.barrier(
            lambda tid: main_book if tid == b.main else frame_work,
            label=f"frame{phase}",
        )
    return b.join_all()


def _freqmine(scale: float) -> WorkloadSpec:
    # FP-growth frequent itemset mining: join-only synchronization; the
    # main thread builds the FP-tree (a large serial share) and is the
    # scalability bottleneck of Fig. 6.
    b = WorkloadBuilder("parsec.freqmine", 4, seed=_seed_for("freqmine"))
    main_work = EpochSpec(
        n=int(52_000 * scale), mix=dict(k.INT_CONTROL),
        mem=(k.pointer_chase(3_500, region=0),
             k.working_set(2_000, region=1, weight=0.8, hot_frac=1.0,
                           hot_lines=2_000)),
        branch=k.BR_HARD, mean_dep=2.6, load_chain_frac=0.35,
        code_lines=128, code_region=1,
    )
    worker_work = EpochSpec(
        n=int(30_000 * scale), mix=dict(k.INT_CONTROL),
        mem=(k.pointer_chase(3_000, region=2),
             k.shared_read(12_000, region=3, weight=0.6, hot_frac=0.95)),
        branch=k.BR_HARD, mean_dep=2.8, load_chain_frac=0.30,
        code_lines=128, code_region=2,
    )
    b.spawn_workers(_init_spec(int(7_000 * scale)))
    b.compute(b.main, main_work, label="fptree")
    for tid in b.workers:
        b.compute(tid, worker_work, label="mine")
    return b.join_all()


def _raytrace(scale: float) -> WorkloadSpec:
    # Real-time raytracing: balanced tile workers over a shared
    # read-only BVH, a few work-queue critical sections and one condvar
    # barrier per frame pair.
    b = WorkloadBuilder("parsec.raytrace", 5, seed=_seed_for("raytrace"))
    work = EpochSpec(
        n=int(12_500 * scale), mix=dict(k.FP_COMPUTE),
        mem=(k.shared_read(90_000, region=0, hot_frac=0.93),
             k.working_set(1_200, region=1, weight=0.7, hot_frac=1.0,
                           hot_lines=1_200)),
        branch=k.BR_PERIODIC, mean_dep=3.0, load_chain_frac=0.15,
        code_lines=112, code_region=1,
    )
    queue_outer = EpochSpec(
        n=int(150 * scale), mix=dict(k.INT_CONTROL),
        mem=(k.working_set(300, region=2),), branch=k.BR_MEDIUM,
        code_lines=12, code_region=2,
    )
    queue_cs = EpochSpec(
        n=int(40 * scale), mix=dict(k.INT_CONTROL),
        mem=(k.shared_rw(48, region=3),), branch=k.BR_BIASED,
        code_lines=6, code_region=3,
    )
    main_book = _bookkeeping(int(150 * scale), region=4)
    b.spawn_workers(_init_spec(int(8_000 * scale)))
    for frame in range(3):
        b.critical_loop(b.workers, 2, queue_outer, queue_cs,
                        label=f"queue{frame}")
        b.barrier(
            lambda tid: main_book if tid == b.main else work,
            condvar=True, label=f"frame{frame}",
        )
    return b.join_all()


def _streamcluster(scale: float) -> WorkloadSpec:
    # Online clustering: the paper's barrier-heavy extreme (13k
    # barriers); main only coordinates, three workers stream through a
    # shared point block (imbalanced class).
    b = WorkloadBuilder("parsec.streamcluster", 4,
                        seed=_seed_for("streamcluster"))
    work = EpochSpec(
        n=int(430 * scale), mix=dict(k.MEM_STREAM),
        mem=(k.shared_read(130_000, region=0, hot_frac=0.90),
             k.working_set(1_500, region=1, weight=0.5, hot_frac=1.0,
                           hot_lines=1_500)),
        branch=k.BR_MEDIUM, mean_dep=4.5, load_chain_frac=0.05,
        code_lines=64, code_region=1,
    )
    cs_spec = EpochSpec(
        n=int(60 * scale), mix=dict(k.GENERIC),
        mem=(k.shared_rw(64, region=2),), branch=k.BR_BIASED,
        code_lines=8, code_region=2,
    )
    main_book = _bookkeeping(int(25 * scale), region=4)
    b.spawn_workers(_init_spec(int(6_000 * scale)))
    for phase in range(150):
        if phase % 40 == 0:
            b.critical_loop(b.workers, 1,
                            _bookkeeping(int(80 * scale), region=5),
                            cs_spec, label="open")
        b.barrier(
            lambda tid: main_book if tid == b.main else work,
            condvar=(phase % 25 == 0), label=f"pass{phase}",
        )
    return b.join_all()


def _swaptions(scale: float) -> WorkloadSpec:
    # Monte-Carlo swaption pricing: perfectly balanced independent
    # workers, join-only.
    b = WorkloadBuilder("parsec.swaptions", 5, seed=_seed_for("swaptions"))
    work = EpochSpec(
        n=int(40_000 * scale), mix=dict(k.FP_COMPUTE),
        mem=(k.working_set(2_500, hot_lines=2_500, hot_frac=1.0,
                           region=0),),
        branch=k.BR_EASY, mean_dep=4.5, code_lines=96, code_region=1,
    )
    b.spawn_workers(_init_spec(int(6_000 * scale)))
    for tid in b.workers:
        b.compute(tid, work, label="simulate")
    return b.join_all()


def _vips(scale: float) -> WorkloadSpec:
    # Image pipeline with a thread pool: the main thread produces work
    # items through a condvar-protected queue (producer-consumer idiom),
    # workers consume; plus per-item critical sections (imbalanced
    # class: main does little actual work).
    b = WorkloadBuilder("parsec.vips", 4, seed=_seed_for("vips"))
    produce_spec = EpochSpec(
        n=int(50 * scale), mix=dict(k.GENERIC),
        mem=(k.working_set(500, region=4),), branch=k.BR_MEDIUM,
        code_lines=24, code_region=4,
    )
    consume_work = EpochSpec(
        n=int(2_300 * scale), mix=dict(k.MEM_STREAM),
        mem=(k.stream(20_000, region=0, reuse=10),
             k.shared_read(4_000, region=1, weight=0.4, hot_frac=0.95)),
        branch=k.BR_MEDIUM, mean_dep=4.2, code_lines=96, code_region=1,
    )
    tile_cs = EpochSpec(
        n=int(45 * scale), mix=dict(k.INT_CONTROL),
        mem=(k.shared_rw(48, region=3),), branch=k.BR_BIASED,
        code_lines=6, code_region=3,
    )
    b.spawn_workers(_init_spec(int(3_000 * scale)))
    n_items = 36
    per_worker = n_items // len(b.workers)
    queue = b.new_id()
    for item in range(n_items):
        b.produce(b.main, produce_spec, queue, label=f"item{item}")
    for tid in b.workers:
        for i in range(per_worker):
            b.consume(tid, None if i == 0 else consume_work, queue)
            b.critical_loop([tid], 3,
                            _bookkeeping(int(30 * scale), region=5),
                            tile_cs, label="tile")
        b.compute(tid, consume_work, label="drain")
    return b.join_all()


_BUILDERS: Dict[str, Callable[[float], WorkloadSpec]] = {
    "blackscholes": _blackscholes,
    "bodytrack": _bodytrack,
    "canneal": _canneal,
    "facesim": _facesim,
    "fluidanimate": _fluidanimate,
    "freqmine": _freqmine,
    "raytrace": _raytrace,
    "streamcluster": _streamcluster,
    "swaptions": _swaptions,
    "vips": _vips,
}

#: Benchmark names in the paper's Figure 4/6 order.
PARSEC: List[str] = list(_BUILDERS)

#: Figure 6 balance classes (for the bottlegraph experiment's checks).
BALANCE_CLASS: Dict[str, str] = {
    "blackscholes": "balanced",
    "canneal": "balanced",
    "fluidanimate": "balanced",
    "raytrace": "balanced",
    "swaptions": "balanced",
    "facesim": "main_works",
    "freqmine": "main_works",
    "bodytrack": "imbalanced",
    "streamcluster": "imbalanced",
    "vips": "imbalanced",
}


def parsec_workload(name: str, scale: float = 1.0) -> WorkloadSpec:
    """Build the named Parsec benchmark as a workload spec."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown Parsec benchmark {name!r}; known: {sorted(_BUILDERS)}"
        ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    return builder(scale)


def all_parsec(scale: float = 1.0) -> List[WorkloadSpec]:
    """All ten Parsec benchmarks in paper order."""
    return [parsec_workload(name, scale=scale) for name in PARSEC]
