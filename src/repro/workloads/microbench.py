"""The barrier-synchronized micro-benchmark of Table I (paper §II-A).

A loop of N iterations; each iteration does the same amount of work on
every thread and ends at a barrier.  The paper uses it to demonstrate
that *unbiased* per-epoch prediction errors accumulate into a biased
overall over-estimation, because each inter-barrier epoch's length is
the maximum over threads.
"""

from __future__ import annotations

from repro.workloads.builder import WorkloadBuilder
from repro.workloads.spec import BranchSpec, EpochSpec, MemPattern, WorkloadSpec


def _iteration_spec(work: int) -> EpochSpec:
    return EpochSpec(
        n=work,
        mean_dep=4.0,
        mem=(MemPattern(kind="working_set", lines=64, hot_frac=1.0,
                        hot_lines=64),),
        branch=BranchSpec(kind="loop", period=16),
        code_lines=16,
        code_region=0,
    )


def barrier_loop_workload(
    threads: int = 4,
    iterations: int = 100,
    work_per_iteration: int = 400,
    seed: int = 0xB0B0,
) -> WorkloadSpec:
    """The Table I micro-benchmark, scaled.

    Every thread executes ``iterations`` identical epochs of
    ``work_per_iteration`` micro-ops, with a barrier after each.
    """
    if threads < 1:
        raise ValueError("need at least one thread")
    builder = WorkloadBuilder(
        f"barrier_loop_t{threads}", threads, seed=seed
    )
    spec = _iteration_spec(work_per_iteration)
    builder.spawn_workers()
    builder.barrier_phases(iterations, spec, label="loop")
    return builder.join_all()
