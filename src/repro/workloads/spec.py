"""Statistical workload specifications.

A :class:`WorkloadSpec` is the microarchitecture-independent *source* of
a synthetic workload: per-thread sequences of :class:`SegmentPlan`
(an :class:`EpochSpec` describing the instruction stream of one
inter-synchronization epoch, plus the :class:`~repro.workloads.ir.SyncOp`
ending it).  :mod:`repro.workloads.generator` expands a spec into a
concrete :class:`~repro.workloads.ir.WorkloadTrace` deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.workloads.ir import OP_CODES, PC_SLOTS_PER_LINE, SyncOp

#: Default instruction mix: a generic integer-dominated workload.
DEFAULT_MIX: Dict[str, float] = {
    "ialu": 0.40,
    "imul": 0.02,
    "fp": 0.10,
    "load": 0.25,
    "store": 0.08,
    "branch": 0.15,
}


@dataclass(frozen=True)
class MemPattern:
    """One component of an epoch's memory-access behaviour.

    Patterns are mixed by ``weight``: each dynamic memory access draws a
    pattern with probability proportional to the weights, then takes the
    next address from that pattern's stream.

    Kinds
    -----
    ``stream``
        Sequential sweep over ``lines`` cache lines with ``stride``,
        touching each line ``reuse`` times in a row (spatial locality of
        word-granularity accesses within a line).
    ``working_set``
        Random accesses: probability ``hot_frac`` uniform over the first
        ``hot_lines`` lines, otherwise uniform over the remainder.
    ``pointer_chase``
        Uniform random over ``lines``; the *dependence* side of the
        generator additionally chains these loads (see
        :attr:`EpochSpec.load_chain_frac`).
    """

    kind: str
    lines: int
    weight: float = 1.0
    region: int = 0
    #: Shared patterns resolve to the same address region for all
    #: threads; private patterns get per-thread regions.
    shared: bool = False
    #: Whether store micro-ops may be assigned to this pattern.  Shared
    #: read-only data (positive interference without coherence traffic)
    #: sets this False.
    store_ok: bool = True
    hot_frac: float = 0.9
    hot_lines: int = 0
    stride: int = 1
    reuse: int = 4

    _KINDS = ("stream", "working_set", "pointer_chase")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown pattern kind {self.kind!r}")
        if self.lines <= 0:
            raise ValueError("pattern footprint must be positive")
        if self.weight <= 0:
            raise ValueError("pattern weight must be positive")
        if not 0.0 <= self.hot_frac <= 1.0:
            raise ValueError("hot_frac must be a probability")
        if self.hot_lines < 0 or self.hot_lines > self.lines:
            raise ValueError("hot_lines must be within the footprint")
        if self.stride <= 0 or self.reuse <= 0:
            raise ValueError("stride and reuse must be positive")

    def effective_hot_lines(self) -> int:
        """Hot-subset size; defaults to 1/16 of the footprint."""
        if self.hot_lines:
            return self.hot_lines
        return max(1, self.lines // 16)


@dataclass(frozen=True)
class BranchSpec:
    """Branch-outcome behaviour of an epoch.

    Kinds
    -----
    ``biased``
        i.i.d. outcomes, taken with probability ``p_taken``.
    ``periodic``
        A hidden random bit-pattern of length ``period`` repeated
        forever, with each outcome independently flipped with
        probability ``noise``.  History-based predictors with enough
        history learn the pattern; the ``noise`` floor is irreducible.
    ``loop``
        Backward-branch idiom: taken ``period - 1`` times, then
        not-taken once (noise-free periodic special case).
    """

    kind: str = "biased"
    p_taken: float = 0.6
    period: int = 8
    noise: float = 0.02

    _KINDS = ("biased", "periodic", "loop")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown branch kind {self.kind!r}")
        if not 0.0 <= self.p_taken <= 1.0:
            raise ValueError("p_taken must be a probability")
        if self.period < 2:
            raise ValueError("period must be at least 2")
        if not 0.0 <= self.noise <= 0.5:
            raise ValueError("noise must be in [0, 0.5]")


@dataclass(frozen=True)
class EpochSpec:
    """Statistical description of one thread's inter-sync epoch.

    Parameters
    ----------
    n:
        Dynamic micro-op count of the epoch.
    mix:
        Fraction of micro-ops per functional-unit class; must sum to 1.
    mean_dep:
        Mean backward dependence distance (geometric); larger values
        mean longer independent chains, i.e. more ILP.
    load_chain_frac:
        Fraction of loads whose producer is the previous load
        (pointer chasing) — throttles memory-level parallelism.
    mem:
        Memory-pattern mixture (see :class:`MemPattern`).
    branch:
        Branch-outcome behaviour.
    code_lines:
        Instruction-cache footprint of the epoch's loop body, in lines.
    instrs_per_line:
        Micro-ops per instruction-cache line (~4 for x86-64).
    code_region:
        Identity of the code region; epochs sharing a region share
        instruction-cache lines (worker threads running the same
        function).
    """

    n: int
    mix: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    mean_dep: float = 3.0
    load_chain_frac: float = 0.0
    mem: Tuple[MemPattern, ...] = (
        MemPattern(kind="working_set", lines=256),
    )
    branch: BranchSpec = field(default_factory=BranchSpec)
    code_lines: int = 64
    instrs_per_line: int = 4
    code_region: int = 0

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ValueError("instruction count must be non-negative")
        unknown = set(self.mix) - set(OP_CODES)
        if unknown:
            raise ValueError(f"unknown micro-op classes {sorted(unknown)}")
        total = sum(self.mix.values())
        if self.n > 0 and abs(total - 1.0) > 1e-6:
            raise ValueError(f"mix must sum to 1 (got {total})")
        if self.mean_dep < 1.0:
            raise ValueError("mean dependence distance must be >= 1")
        if not 0.0 <= self.load_chain_frac <= 1.0:
            raise ValueError("load_chain_frac must be a probability")
        if not self.mem:
            raise ValueError("at least one memory pattern is required")
        if self.code_lines <= 0 or self.instrs_per_line <= 0:
            raise ValueError("code footprint must be positive")
        if self.instrs_per_line > PC_SLOTS_PER_LINE:
            # The synthetic PC encoding packs at most PC_SLOTS_PER_LINE
            # ops per instruction-cache line; beyond that,
            # ``instruction_pcs`` would silently clamp offsets and
            # alias distinct branch sites onto one PC, corrupting
            # branch-context statistics and predictor tables alike.
            raise ValueError(
                f"instrs_per_line {self.instrs_per_line} exceeds the "
                f"PC encoding's {PC_SLOTS_PER_LINE} slots per line"
            )
        if self.n > 0 and self.mix.get("load", 0.0) + self.mix.get(
            "store", 0.0
        ) > 0 and not any(p.store_ok for p in self.mem):
            if self.mix.get("store", 0.0) > 0:
                raise ValueError(
                    "mix contains stores but no pattern accepts stores"
                )

    def scaled(self, factor: float) -> "EpochSpec":
        """Copy with the instruction count scaled by ``factor``.

        Used to introduce per-thread load imbalance without changing any
        other characteristic.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return replace(self, n=int(round(self.n * factor)))


@dataclass(frozen=True)
class SegmentPlan:
    """One planned segment: an optional epoch spec plus its sync event."""

    spec: Optional[EpochSpec]
    event: SyncOp
    label: str = ""


@dataclass
class WorkloadSpec:
    """A complete multithreaded workload specification."""

    name: str
    n_threads: int
    plans: List[List[SegmentPlan]]
    seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise ValueError("need at least one thread")
        if len(self.plans) != self.n_threads:
            raise ValueError("one plan list per thread required")

    @property
    def n_instructions(self) -> int:
        """Total planned dynamic micro-op count."""
        return sum(
            plan.spec.n
            for thread_plans in self.plans
            for plan in thread_plans
            if plan.spec is not None
        )
