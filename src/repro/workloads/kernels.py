"""Reusable kernel ingredients for the benchmark definitions.

Mix/branch/memory-pattern presets with documented performance
personalities; the Rodinia and Parsec workload definitions compose
these into benchmark-specific phase structures.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.spec import BranchSpec, MemPattern


def mix(
    ialu: float = 0.0,
    imul: float = 0.0,
    fp: float = 0.0,
    load: float = 0.0,
    store: float = 0.0,
    branch: float = 0.0,
) -> Dict[str, float]:
    """Normalized instruction-mix dictionary."""
    total = ialu + imul + fp + load + store + branch
    if total <= 0:
        raise ValueError("mix must have positive total")
    return {
        "ialu": ialu / total,
        "imul": imul / total,
        "fp": fp / total,
        "load": load / total,
        "store": store / total,
        "branch": branch / total,
    }


#: Floating-point compute kernel (solvers, physics).
FP_COMPUTE = mix(ialu=0.25, imul=0.02, fp=0.35, load=0.22, store=0.06,
                 branch=0.10)
#: Integer/control-heavy kernel (graph traversal, parsing).
INT_CONTROL = mix(ialu=0.42, imul=0.01, fp=0.02, load=0.26, store=0.07,
                  branch=0.22)
#: Memory-streaming kernel (copies, reductions over big arrays).
MEM_STREAM = mix(ialu=0.30, fp=0.12, load=0.34, store=0.14, branch=0.10)
#: Balanced general-purpose kernel.
GENERIC = mix(ialu=0.40, imul=0.02, fp=0.10, load=0.25, store=0.08,
              branch=0.15)


#: Very predictable loop branches (~7% misses on the base predictor).
BR_EASY = BranchSpec(kind="loop", period=16)
#: Moderately data-dependent branches (~10% misses).
BR_MEDIUM = BranchSpec(kind="biased", p_taken=0.92)
#: Data-dependent, hard-to-predict branches (~20% misses, the upper
#: end of what the paper's benchmarks exhibit).
BR_HARD = BranchSpec(kind="biased", p_taken=0.85)
#: Strongly biased (easy for bimodal even without history, ~4%).
BR_BIASED = BranchSpec(kind="biased", p_taken=0.97)
#: Short learnable periodic pattern with a small noise floor (~8%).
BR_PERIODIC = BranchSpec(kind="periodic", period=4, noise=0.01)


def stream(lines: int, region: int = 0, weight: float = 1.0,
           reuse: int = 4) -> MemPattern:
    """Private sequential sweep (stencil rows, big-array passes)."""
    return MemPattern(kind="stream", lines=lines, region=region,
                      weight=weight, reuse=reuse)


def working_set(lines: int, hot_lines: int = 0, hot_frac: float = 0.9,
                region: int = 0, weight: float = 1.0) -> MemPattern:
    """Private hot/cold random accesses (tables, tiles)."""
    return MemPattern(kind="working_set", lines=lines, hot_lines=hot_lines,
                      hot_frac=hot_frac, region=region, weight=weight)


def pointer_chase(lines: int, region: int = 0,
                  weight: float = 1.0) -> MemPattern:
    """Private random accesses that the dependence generator chains."""
    return MemPattern(kind="pointer_chase", lines=lines, region=region,
                      weight=weight)


def shared_read(lines: int, region: int = 0, hot_frac: float = 0.8,
                weight: float = 1.0) -> MemPattern:
    """Read-only data shared by all threads (positive interference)."""
    return MemPattern(kind="working_set", lines=lines, region=region,
                      shared=True, store_ok=False, hot_frac=hot_frac,
                      weight=weight)


def shared_rw(lines: int, region: int = 0, hot_frac: float = 0.9,
              weight: float = 1.0) -> MemPattern:
    """Read-write shared data (coherence invalidation traffic)."""
    return MemPattern(kind="working_set", lines=lines, region=region,
                      shared=True, hot_frac=hot_frac, weight=weight)
