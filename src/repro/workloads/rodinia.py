"""Rodinia v3.1 workload definitions (OpenMP, barrier-synchronized).

Sixteen benchmarks matching the paper's evaluation set (Tables II/V).
Each definition reproduces the benchmark's *performance personality* —
instruction mix, locality class, branch predictability, ILP, phase
structure and balance — scaled to tractable instruction counts (the
``scale`` parameter multiplies the per-phase budget; 1.0 corresponds to
roughly 2x10^5 ROI instructions, ~3 orders of magnitude below the real
inputs, see DESIGN.md §2).

Rodinia benchmarks are barrier-only (paper §IV): the main thread works
alongside the workers in every parallel phase, so MAIN is a reasonable
(if synchronization-blind) baseline here, unlike on Parsec.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.workloads import kernels as k
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.spec import BranchSpec, EpochSpec, MemPattern, WorkloadSpec


@dataclass(frozen=True)
class RodiniaDef:
    """Declarative description of one Rodinia benchmark."""

    name: str
    paper_input: str
    mix: Dict[str, float]
    mem: Tuple[MemPattern, ...]
    branch: BranchSpec
    mean_dep: float
    load_chain_frac: float
    phases: int
    work_per_phase: int  # per-thread micro-ops at scale=1.0
    #: Per-thread imbalance factors, rotated across phases.
    imbalance: Tuple[float, ...]
    #: Phase-dependent work profile (triangular solvers etc.).
    phase_profile: str = "flat"  # flat | triangular | wavefront
    init_work: int = 6000
    final_work: int = 3000
    code_lines: int = 96


def _phase_factor(profile: str, phase: int, n_phases: int) -> float:
    if profile == "flat":
        return 1.0
    if profile == "triangular":
        # Shrinking work per phase (LU factorization).
        return 2.0 * (n_phases - phase) / (n_phases + 1)
    if profile == "wavefront":
        # Grow-then-shrink anti-diagonal sweep (Needleman-Wunsch).
        half = (n_phases + 1) / 2.0
        return min(phase + 1, n_phases - phase) / half
    raise ValueError(f"unknown phase profile {profile!r}")


_DEFS: List[RodiniaDef] = [
    RodiniaDef(
        name="backprop", paper_input="4,194,304",
        # Neural-net training: FP streaming over weight matrices far
        # beyond the LLC; independent loads give the paper's MLP ~5 and
        # the suite's highest MPKI (paper: up to 40).
        mix=k.MEM_STREAM,
        mem=(k.stream(100_000, region=0, reuse=8),),
        branch=k.BR_BIASED, mean_dep=6.0, load_chain_frac=0.02,
        phases=8, work_per_phase=5200,
        imbalance=(1.0, 0.98, 1.02, 1.0),
    ),
    RodiniaDef(
        name="bfs", paper_input="graph8M",
        # Breadth-first search: pointer chasing over the frontier with
        # data-dependent branches; low MLP, poor predictability.
        mix=k.INT_CONTROL,
        mem=(k.pointer_chase(3_000, region=0),
             k.working_set(400, region=1, weight=0.6, hot_frac=1.0,
                           hot_lines=400)),
        branch=k.BR_HARD, mean_dep=2.4, load_chain_frac=0.45,
        phases=10, work_per_phase=3600,
        imbalance=(1.0, 1.08, 0.94, 0.98),
    ),
    RodiniaDef(
        name="cfd", paper_input="fvcorr.domn.010K",
        # Unstructured-grid solver: long FP dependence chains (low ILP,
        # the paper's dominant base-component error) on L2-resident data.
        mix=k.FP_COMPUTE,
        mem=(k.working_set(60_000, hot_lines=2_500, hot_frac=0.97,
                           region=0),),
        branch=k.BR_BIASED, mean_dep=1.8, load_chain_frac=0.10,
        phases=8, work_per_phase=5000,
        imbalance=(1.0, 0.99, 1.01, 1.0),
    ),
    RodiniaDef(
        name="heartwall", paper_input="test.avi 10",
        # Image tracking: mixed integer/FP on tile-sized working sets.
        mix=k.mix(ialu=0.34, fp=0.22, load=0.26, store=0.06, branch=0.12),
        mem=(k.working_set(12_000, hot_lines=450, hot_frac=0.96,
                           region=0),),
        branch=k.BR_PERIODIC, mean_dep=3.5, load_chain_frac=0.05,
        phases=10, work_per_phase=4200,
        imbalance=(1.0, 1.04, 0.97, 0.99),
    ),
    RodiniaDef(
        name="hotspot", paper_input="16384 5",
        # Stencil iteration: streaming rows, very predictable branches,
        # many barrier-delimited time steps.
        mix=k.MEM_STREAM,
        mem=(k.stream(24_000, region=0, reuse=12),
             k.working_set(1_200, region=1, weight=0.8, hot_frac=1.0,
                           hot_lines=1_200)),
        branch=k.BR_EASY, mean_dep=5.0, load_chain_frac=0.0,
        phases=20, work_per_phase=2200,
        imbalance=(1.0, 0.99, 1.01, 1.0),
    ),
    RodiniaDef(
        name="kmeans", paper_input="kdd cup",
        # Clustering: hot centroid table + streaming points; FP distance
        # computation with biased convergence branches.
        mix=k.mix(ialu=0.26, fp=0.30, load=0.28, store=0.05, branch=0.11),
        mem=(k.working_set(90_000, hot_lines=500, hot_frac=0.95,
                           region=0),),
        branch=k.BR_BIASED, mean_dep=4.0, load_chain_frac=0.03,
        phases=8, work_per_phase=5200,
        imbalance=(1.0, 1.02, 0.98, 1.0),
    ),
    RodiniaDef(
        name="lavaMD", paper_input="10",
        # N-body within cut-off boxes: compute-dense FP, small footprint.
        mix=k.FP_COMPUTE,
        mem=(k.working_set(1_600, hot_lines=1_600, hot_frac=1.0,
                           region=0),),
        branch=k.BR_EASY, mean_dep=5.5, load_chain_frac=0.0,
        phases=6, work_per_phase=7200,
        imbalance=(1.0, 1.01, 0.99, 1.0),
    ),
    RodiniaDef(
        name="leukocyte", paper_input="testfile.avi 5",
        # Cell tracking: FP stencils on frame tiles, mostly L1-resident.
        mix=k.FP_COMPUTE,
        mem=(k.working_set(6_000, hot_lines=450, hot_frac=0.98,
                           region=0),),
        branch=k.BR_MEDIUM, mean_dep=3.8, load_chain_frac=0.04,
        phases=10, work_per_phase=4300,
        imbalance=(1.0, 0.98, 1.03, 0.99),
    ),
    RodiniaDef(
        name="lud", paper_input="2048.dat",
        # LU decomposition: triangular phase profile — later phases do
        # less work, stressing the barrier model's idle accounting.
        mix=k.FP_COMPUTE,
        mem=(k.working_set(40_000, hot_lines=2_500, hot_frac=0.95,
                           region=0),),
        branch=k.BR_EASY, mean_dep=3.0, load_chain_frac=0.05,
        phases=12, work_per_phase=4200,
        imbalance=(1.0, 1.10, 0.92, 0.98), phase_profile="triangular",
    ),
    RodiniaDef(
        name="myocyte", paper_input="100 1 0",
        # ODE integration: dominated by the main thread's sequential
        # solver with small parallel slices (near-degenerate bottlegraph).
        mix=k.FP_COMPUTE,
        mem=(k.working_set(900, hot_lines=900, hot_frac=1.0, region=0),),
        branch=k.BR_BIASED, mean_dep=2.0, load_chain_frac=0.08,
        phases=6, work_per_phase=1800,
        imbalance=(1.0, 0.97, 1.02, 1.01),
        init_work=26_000, final_work=12_000,
    ),
    RodiniaDef(
        name="nn", paper_input="4096k",
        # Nearest neighbour: one streaming reduction pass, memory-bound.
        mix=k.MEM_STREAM,
        mem=(k.stream(220_000, region=0, reuse=8),
             k.working_set(400, region=1, weight=0.3, hot_frac=1.0,
                           hot_lines=400)),
        branch=k.BR_BIASED, mean_dep=6.5, load_chain_frac=0.0,
        phases=4, work_per_phase=8400,
        imbalance=(1.0, 1.0, 1.01, 0.99),
    ),
    RodiniaDef(
        name="nw", paper_input="16k x 16k",
        # Needleman-Wunsch wavefront: work per anti-diagonal grows then
        # shrinks (the paper's hardest DSE case).
        mix=k.mix(ialu=0.38, fp=0.08, load=0.28, store=0.10, branch=0.16),
        mem=(k.working_set(110_000, hot_lines=3_000, hot_frac=0.94,
                           region=0),),
        branch=k.BR_MEDIUM, mean_dep=2.6, load_chain_frac=0.12,
        phases=14, work_per_phase=3400,
        imbalance=(1.0, 1.07, 0.95, 0.99), phase_profile="wavefront",
    ),
    RodiniaDef(
        name="particlefilter", paper_input="128 x 128 x 10",
        # Monte-Carlo tracking: random table lookups, branchy resampling.
        mix=k.INT_CONTROL,
        mem=(k.working_set(5_000, hot_lines=800, hot_frac=0.95,
                           region=0),),
        branch=k.BR_HARD, mean_dep=3.0, load_chain_frac=0.10,
        phases=10, work_per_phase=4200,
        imbalance=(1.0, 1.03, 0.96, 1.01),
    ),
    RodiniaDef(
        name="pathfinder", paper_input="1M x 1k",
        # Grid dynamic programming: short rows, many barriers, streaming.
        mix=k.mix(ialu=0.40, fp=0.04, load=0.28, store=0.12, branch=0.16),
        mem=(k.stream(16_000, region=0, reuse=16),),
        branch=k.BR_MEDIUM, mean_dep=3.2, load_chain_frac=0.06,
        phases=24, work_per_phase=1800,
        imbalance=(1.0, 1.02, 0.98, 1.0),
    ),
    RodiniaDef(
        name="srad", paper_input="2048",
        # Speckle-reducing diffusion: FP stencil streaming, two passes
        # per iteration.
        mix=k.FP_COMPUTE,
        mem=(k.stream(30_000, region=0, reuse=12),
             k.working_set(2_000, region=1, weight=0.5, hot_frac=1.0,
                           hot_lines=2_000)),
        branch=k.BR_EASY, mean_dep=3.6, load_chain_frac=0.02,
        phases=16, work_per_phase=2800,
        imbalance=(1.0, 0.99, 1.02, 1.0),
    ),
    RodiniaDef(
        name="streamcluster", paper_input="256k",
        # Online clustering: shared read-mostly centre table, many
        # barriers, memory-bound (the paper's hardest DSE benchmark).
        mix=k.MEM_STREAM,
        mem=(k.shared_read(140_000, region=0, hot_frac=0.90),
             k.working_set(2_000, region=1, weight=0.7, hot_frac=1.0,
                           hot_lines=2_000),),
        branch=k.BR_MEDIUM, mean_dep=4.5, load_chain_frac=0.08,
        phases=30, work_per_phase=1600,
        imbalance=(1.0, 1.04, 0.97, 0.99),
    ),
]

#: Benchmark name -> definition.
RODINIA: Dict[str, RodiniaDef] = {d.name: d for d in _DEFS}


def _seed_for(name: str) -> int:
    # Stable across processes (unlike hash(), which is salted).
    return zlib.crc32(f"rodinia.{name}".encode()) & 0x3FFFFFFF


def rodinia_workload(
    name: str,
    threads: int = 4,
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> WorkloadSpec:
    """Build the named Rodinia benchmark as a workload spec.

    ``threads`` counts the main thread (paper: a pool of threads-1
    workers plus the main thread, all participating in every barrier).
    """
    try:
        d = RODINIA[name]
    except KeyError:
        raise ValueError(
            f"unknown Rodinia benchmark {name!r}; "
            f"known: {sorted(RODINIA)}"
        ) from None
    if threads < 1:
        raise ValueError("need at least one thread")
    builder = WorkloadBuilder(
        f"rodinia.{name}", threads,
        seed=_seed_for(name) if seed is None else seed,
    )
    base = EpochSpec(
        n=max(1, int(d.work_per_phase * scale)),
        mix=dict(d.mix),
        mean_dep=d.mean_dep,
        load_chain_frac=d.load_chain_frac,
        mem=d.mem,
        branch=d.branch,
        code_lines=d.code_lines,
        code_region=1,
    )
    init = EpochSpec(
        n=max(1, int(d.init_work * scale)),
        mix=dict(k.GENERIC),
        mem=(k.stream(6_000, region=7),),
        branch=k.BR_MEDIUM,
        code_lines=64,
        code_region=0,
    )
    final = EpochSpec(
        n=max(1, int(d.final_work * scale)),
        mix=dict(k.GENERIC),
        mem=(k.working_set(3_000, region=8),),
        branch=k.BR_MEDIUM,
        code_lines=48,
        code_region=2,
    )
    builder.spawn_workers(init)
    for phase in range(d.phases):
        pf = _phase_factor(d.phase_profile, phase, d.phases)

        def spec_for(tid: int, _pf: float = pf, _phase: int = phase):
            factor = d.imbalance[(tid + _phase) % len(d.imbalance)]
            return base.scaled(_pf * factor)

        builder.barrier(spec_for, label=f"phase{phase}")
    return builder.join_all(final_spec=final)


def all_rodinia(threads: int = 4, scale: float = 1.0) -> List[WorkloadSpec]:
    """All sixteen Rodinia benchmarks (Table V's rows, in order)."""
    return [
        rodinia_workload(name, threads=threads, scale=scale)
        for name in RODINIA
    ]
