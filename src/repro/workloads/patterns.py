"""Memory-address stream generation for :class:`MemPattern` components.

Addresses are cache-line indices (int64).  Private patterns resolve to a
per-thread region so threads never falsely share; shared patterns
resolve to a single global region so all threads touch the same lines
(positive interference and, with stores, coherence traffic).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.spec import MemPattern

#: Address-space layout (in cache-line indices).  Regions are spaced far
#: enough apart that no realistic footprint can overlap a neighbour.
_PRIVATE_BASE = 1 << 40
_PRIVATE_THREAD_STRIDE = 1 << 34
_REGION_STRIDE = 1 << 26
_SHARED_BASE = 1 << 50
_CODE_BASE = 1 << 58
_CODE_REGION_STRIDE = 1 << 22


def region_base(pattern: MemPattern, thread_id: int) -> int:
    """Base cache-line index of ``pattern``'s address region.

    Shared patterns map to one global region per ``region`` id; private
    patterns additionally stride by thread so each thread works on its
    own copy of the data structure.
    """
    if pattern.shared:
        return _SHARED_BASE + pattern.region * _REGION_STRIDE
    return (
        _PRIVATE_BASE
        + thread_id * _PRIVATE_THREAD_STRIDE
        + pattern.region * _REGION_STRIDE
    )


def code_base(code_region: int) -> int:
    """Base instruction-cache-line index for a code region."""
    return _CODE_BASE + code_region * _CODE_REGION_STRIDE


def addresses(
    pattern: MemPattern,
    n: int,
    rng: np.random.Generator,
    thread_id: int,
    start_offset: int = 0,
) -> np.ndarray:
    """Generate ``n`` cache-line addresses for ``pattern``.

    ``start_offset`` lets streaming patterns continue where the previous
    segment of the same epoch left off, so splitting an epoch into
    blocks does not reset spatial locality.
    """
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    base = region_base(pattern, thread_id)
    if pattern.kind == "stream":
        seq = (start_offset + np.arange(n, dtype=np.int64)) // pattern.reuse
        offs = (seq * pattern.stride) % pattern.lines
        return base + offs
    if pattern.kind == "working_set":
        hot = pattern.effective_hot_lines()
        cold = pattern.lines - hot
        is_hot = rng.random(n) < pattern.hot_frac if cold > 0 else np.ones(
            n, dtype=bool
        )
        offs = np.empty(n, dtype=np.int64)
        n_hot = int(is_hot.sum())
        offs[is_hot] = rng.integers(0, hot, size=n_hot)
        if cold > 0:
            offs[~is_hot] = hot + rng.integers(0, cold, size=n - n_hot)
        return base + offs
    if pattern.kind == "pointer_chase":
        return base + rng.integers(0, pattern.lines, size=n, dtype=np.int64)
    raise ValueError(f"unknown pattern kind {pattern.kind!r}")
