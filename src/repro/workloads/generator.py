"""Deterministic expansion of workload specifications into traces.

Expansion is a pure function of ``(spec, spec.seed)``: every segment
derives its RNG from ``SeedSequence([seed, thread, segment])``, so the
same spec always yields bit-identical traces.  This mirrors the paper's
requirement that the profile be collected once and reused — our "binary"
is the spec, and re-running it is deterministic.

This module is the preserved *executable spec* of expansion: simple,
per-segment, and allocation-per-block.  Production call sites route
through the columnar planner/executor in
:mod:`repro.workloads.engine` (usually via a
:class:`~repro.experiments.store.TraceCache`), which memoizes the
static-code artifacts and writes into per-thread arenas —
bit-identical to this path, pinned by the hypothesis suite in
``tests/test_engine.py``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.workloads import branches as _branches
from repro.workloads import patterns as _patterns
from repro.workloads.ir import (
    OP_BRANCH,
    OP_CLASSES,
    OP_LOAD,
    OP_STORE,
    Segment,
    ThreadTrace,
    TraceBlock,
    WorkloadTrace,
)
from repro.workloads.spec import EpochSpec, WorkloadSpec


def _class_counts(n: int, mix: dict, rng: np.random.Generator) -> np.ndarray:
    """Integer micro-op counts per class honouring ``mix`` exactly."""
    fracs = np.array([mix.get(name, 0.0) for name in OP_CLASSES])
    counts = np.floor(fracs * n).astype(np.int64)
    remainder = n - int(counts.sum())
    if remainder > 0:
        # Hand the leftover slots to the classes with the largest
        # fractional parts (ties broken deterministically by class code).
        fractional = fracs * n - counts
        order = np.argsort(-fractional, kind="stable")
        counts[order[:remainder]] += 1
    return counts


def _op_array(
    n: int, spec: EpochSpec, layout_rng: np.random.Generator
) -> np.ndarray:
    """Micro-op classes laid out as a repeated loop body.

    Real code executes a static loop body over and over: the class at a
    given PC is fixed across iterations.  We therefore build one body of
    ``code_lines * instrs_per_line`` ops honouring the mix, shuffle it
    once, and tile it across the epoch — so branches (and every other
    class) sit at stable static locations, repeating with the
    instruction-cache layout.  Without this, synthetic "branch PCs"
    would never repeat and no predictor (real or modeled) could learn.

    The shuffle comes from ``layout_rng``, which is derived from the
    *code region* rather than the dynamic segment: every execution of
    the same static code has the same layout, exactly as a binary's
    text section does not change between loop iterations or threads.
    """
    body_len = min(n, spec.code_lines * spec.instrs_per_line)
    counts = _class_counts(body_len, spec.mix, layout_rng)
    body = layout_rng.permutation(
        np.repeat(np.arange(len(OP_CLASSES), dtype=np.uint8), counts)
    )
    reps = -(-n // body_len)  # ceil
    return np.tile(body, reps)[:n]


def _dep_array(
    spec: EpochSpec, op: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    n = len(op)
    dep = rng.geometric(1.0 / spec.mean_dep, size=n).astype(np.int32)
    positions = np.arange(n, dtype=np.int32)
    dep = np.minimum(dep, positions)  # cannot reach before the block
    if spec.load_chain_frac > 0.0:
        load_idx = np.flatnonzero(op == OP_LOAD).astype(np.int32)
        if len(load_idx) > 1:
            chained = rng.random(len(load_idx) - 1) < spec.load_chain_frac
            targets = load_idx[1:][chained]
            producers = load_idx[:-1][chained]
            dep[targets] = targets - producers
    return dep


def _addr_array(
    spec: EpochSpec,
    op: np.ndarray,
    rng: np.random.Generator,
    thread_id: int,
) -> np.ndarray:
    n = len(op)
    addr = np.full(n, -1, dtype=np.int64)
    is_load = op == OP_LOAD
    is_store = op == OP_STORE
    mem_idx = np.flatnonzero(is_load | is_store)
    if len(mem_idx) == 0:
        return addr
    patterns = list(spec.mem)
    weights = np.array([p.weight for p in patterns], dtype=float)
    load_w = weights / weights.sum()
    store_ok = np.array([p.store_ok for p in patterns], dtype=bool)
    # Assign each memory op to a pattern.  Stores may only land on
    # patterns that accept them (shared read-only data stays read-only).
    choice = rng.choice(len(patterns), size=len(mem_idx), p=load_w)
    store_mask = is_store[mem_idx]
    if store_mask.any() and not store_ok.all():
        sw = np.where(store_ok, weights, 0.0)
        sw = sw / sw.sum()
        choice[store_mask] = rng.choice(
            len(patterns), size=int(store_mask.sum()), p=sw
        )
    for pi, pattern in enumerate(patterns):
        slots = mem_idx[choice == pi]
        if len(slots) == 0:
            continue
        addr[slots] = _patterns.addresses(
            pattern, len(slots), rng, thread_id
        )
    return addr


def _taken_array(
    spec: EpochSpec,
    op: np.ndarray,
    rng: np.random.Generator,
    pattern_rng: np.random.Generator,
) -> np.ndarray:
    n = len(op)
    taken = np.zeros(n, dtype=np.uint8)
    br_idx = np.flatnonzero(op == OP_BRANCH)
    if len(br_idx):
        taken[br_idx] = _branches.outcomes(
            spec.branch, len(br_idx), rng, pattern_rng=pattern_rng
        )
    return taken


def _iline_array(spec: EpochSpec, n: int) -> np.ndarray:
    base = _patterns.code_base(spec.code_region)
    seq = np.arange(n, dtype=np.int64) // spec.instrs_per_line
    return base + seq % spec.code_lines


def expand_epoch(
    spec: EpochSpec,
    thread_id: int,
    rng: np.random.Generator,
    layout_seed: int = 0,
) -> TraceBlock:
    """Expand one epoch spec into a concrete trace block.

    ``rng`` drives the dynamic randomness (addresses, dependence draws,
    outcome noise) and differs per segment; the static-code properties
    (loop-body layout, hidden branch patterns) derive from
    ``layout_seed`` and the spec's code region only, so every dynamic
    execution of the same code region looks like the same binary.
    """
    if spec.n == 0:
        return TraceBlock.empty()
    layout_rng = _layout_rng(layout_seed, spec.code_region)
    op = _op_array(spec.n, spec, layout_rng)
    return TraceBlock(
        op=op,
        dep=_dep_array(spec, op, rng),
        addr=_addr_array(spec, op, rng, thread_id),
        taken=_taken_array(spec, op, rng, pattern_rng=layout_rng),
        iline=_iline_array(spec, spec.n),
    )


def _segment_rng(seed: int, thread_id: int, index: int) -> np.random.Generator:
    return np.random.Generator(
        np.random.PCG64(np.random.SeedSequence([seed, thread_id, index]))
    )


def _layout_rng(seed: int, code_region: int) -> np.random.Generator:
    return np.random.Generator(
        np.random.PCG64(np.random.SeedSequence([seed, 0x1A10, code_region]))
    )


def expand(workload: WorkloadSpec) -> WorkloadTrace:
    """Expand a workload spec into its full dynamic trace.

    The result is validated for structural well-formedness (threads
    created before use, balanced locks, END-terminated traces).
    """
    threads: List[ThreadTrace] = []
    for tid, plan_list in enumerate(workload.plans):
        segments: List[Segment] = []
        for idx, plan in enumerate(plan_list):
            rng = _segment_rng(workload.seed, tid, idx)
            if plan.spec is None:
                block = TraceBlock.empty()
            else:
                block = expand_epoch(
                    plan.spec, tid, rng, layout_seed=workload.seed
                )
            segments.append(
                Segment(block=block, event=plan.event, epoch=idx,
                        label=plan.label)
            )
        threads.append(ThreadTrace(thread_id=tid, segments=segments))
    trace = WorkloadTrace(
        name=workload.name, threads=threads, seed=workload.seed
    )
    trace.validate()
    return trace
