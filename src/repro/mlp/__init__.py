"""Memory-level parallelism model (Van den Steen & Eeckhout [36])."""

from repro.mlp.model import predict_mlp

__all__ = ["predict_mlp"]
