"""Microarchitecture-independent MLP prediction.

Eq. 1's D-cache component divides the long-latency miss penalty by the
average number of outstanding misses (MLP).  Following Van den Steen &
Eeckhout [36], MLP is predicted from microarchitecture-independent
workload statistics plus the target's window resources:

* **candidates** — the ROB holds ``W`` instructions, of which
  ``W * loads_per_instr * miss_rate`` are expected long-latency misses:
  the pool of potentially-overlapping accesses;
* **dependence ceiling** — a miss whose address depends (transitively,
  through any chain of loads) on another in-flight miss cannot issue
  concurrently with it; the profiler's load-parallelism statistic
  (loads per window / longest transitive load chain) caps the overlap;
* **MSHRs** cap the number of in-flight misses the hardware tracks.

MLP is at least 1 (the blocking miss itself).
"""

from __future__ import annotations

from repro.arch.config import CoreConfig


def predict_mlp(
    rob_size: int,
    mshr_entries: int,
    loads_per_instr: float,
    llc_miss_rate_per_load: float,
    load_parallelism: float,
) -> float:
    """Average outstanding long-latency misses when at least one is.

    Parameters
    ----------
    rob_size:
        Instruction-window size of the target core.
    mshr_entries:
        Maximum outstanding misses supported by the L1 MSHRs.
    loads_per_instr:
        Load density of the epoch (from the instruction mix).
    llc_miss_rate_per_load:
        Probability a load misses the LLC (StatStack prediction).
    load_parallelism:
        Profiled dependence ceiling: independent load chains per window
        (see :func:`repro.profiler.ilp.load_parallelism`).
    """
    if rob_size <= 0 or mshr_entries <= 0:
        raise ValueError("window resources must be positive")
    if loads_per_instr < 0 or llc_miss_rate_per_load < 0:
        raise ValueError("rates must be non-negative")
    if load_parallelism < 1.0:
        raise ValueError("load parallelism is at least 1")
    candidates = rob_size * loads_per_instr * llc_miss_rate_per_load
    mlp = min(candidates, load_parallelism, float(mshr_entries))
    return float(max(mlp, 1.0))


def predict_mlp_for_core(
    core: CoreConfig,
    loads_per_instr: float,
    llc_miss_rate_per_load: float,
    load_parallelism: float,
) -> float:
    """Convenience wrapper taking a :class:`CoreConfig`."""
    return predict_mlp(
        rob_size=core.rob_size,
        mshr_entries=core.mshr_entries,
        loads_per_instr=loads_per_instr,
        llc_miss_rate_per_load=llc_miss_rate_per_load,
        load_parallelism=load_parallelism,
    )
