"""The simulated architecture configurations of Table IV.

Five design points with constant peak throughput (dispatch width x clock
= 10 G ops/s): smallest (2-wide @ 5 GHz) ... biggest (6-wide @ 1.66 GHz).
ROB and issue-queue resources scale with width exactly as in the paper.
The cache hierarchy and branch predictor are identical for all points.
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    MulticoreConfig,
)

#: Per-design-point core parameters, exactly the rows of Table IV.
_TABLE_IV_CORES: Dict[str, Dict[str, float]] = {
    "smallest": {"frequency_ghz": 5.00, "dispatch_width": 2, "rob_size": 32,
                 "issue_queue_size": 16},
    "small": {"frequency_ghz": 3.33, "dispatch_width": 3, "rob_size": 72,
              "issue_queue_size": 36},
    "base": {"frequency_ghz": 2.50, "dispatch_width": 4, "rob_size": 128,
             "issue_queue_size": 64},
    "big": {"frequency_ghz": 2.00, "dispatch_width": 5, "rob_size": 200,
            "issue_queue_size": 100},
    "biggest": {"frequency_ghz": 1.66, "dispatch_width": 6, "rob_size": 288,
                "issue_queue_size": 144},
}

#: Names of the five design points, narrowest first.
TABLE_IV: List[str] = list(_TABLE_IV_CORES)


def _ports_for_width(width: int) -> Dict[str, int]:
    """Scale issue ports with pipeline width.

    The base 4-wide machine has the default port mix; narrower and wider
    machines scale the throughput-critical ports so that no port class
    becomes an artificial bottleneck relative to the paper's premise that
    all five design points deliver the same peak operations per second.
    """
    return {
        "ialu": max(1, width),
        "imul": 1 if width <= 4 else 2,
        "fp": max(1, width // 2),
        "load": max(1, width // 2),
        "store": 1 if width <= 4 else 2,
        "branch": 1 if width <= 4 else 2,
    }


def table_iv_config(point: str, cores: int = 4) -> MulticoreConfig:
    """Build the Table IV design point named ``point``.

    Parameters
    ----------
    point:
        One of ``smallest``, ``small``, ``base``, ``big``, ``biggest``.
    cores:
        Number of cores; the paper uses 4.
    """
    try:
        params = _TABLE_IV_CORES[point]
    except KeyError:
        raise ValueError(
            f"unknown design point {point!r}; expected one of {TABLE_IV}"
        ) from None
    width = int(params["dispatch_width"])
    core = CoreConfig(
        frequency_ghz=float(params["frequency_ghz"]),
        dispatch_width=width,
        rob_size=int(params["rob_size"]),
        issue_queue_size=int(params["issue_queue_size"]),
        ports=_ports_for_width(width),
    )
    return MulticoreConfig(
        name=point,
        cores=cores,
        core=core,
        l1i=CacheConfig(size_bytes=32 * 1024, associativity=4, latency=1),
        l1d=CacheConfig(size_bytes=32 * 1024, associativity=4, latency=3),
        l2=CacheConfig(size_bytes=256 * 1024, associativity=8, latency=10),
        llc=CacheConfig(size_bytes=8 * 1024 * 1024, associativity=16,
                        latency=30, shared=True),
        memory=MemoryConfig(),
        branch_predictor=BranchPredictorConfig(size_bytes=4096),
    )


def design_space(cores: int = 4) -> List[MulticoreConfig]:
    """All five Table IV design points, narrowest first."""
    return [table_iv_config(point, cores=cores) for point in TABLE_IV]


SMALLEST = table_iv_config("smallest")
SMALL = table_iv_config("small")
BASE = table_iv_config("base")
BIG = table_iv_config("big")
BIGGEST = table_iv_config("biggest")
