"""Machine descriptions for RPPM.

This package defines the target-architecture vocabulary shared by the
analytical model (:mod:`repro.core`) and the reference simulator
(:mod:`repro.simulator`): core pipeline parameters, cache hierarchies,
memory timing and full multicore configurations, plus the five design
points of Table IV in the paper.
"""

from repro.arch.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    MulticoreConfig,
)
from repro.arch.presets import (
    BASE,
    BIG,
    BIGGEST,
    SMALL,
    SMALLEST,
    TABLE_IV,
    design_space,
    table_iv_config,
)

__all__ = [
    "BranchPredictorConfig",
    "CacheConfig",
    "CoreConfig",
    "MemoryConfig",
    "MulticoreConfig",
    "BASE",
    "BIG",
    "BIGGEST",
    "SMALL",
    "SMALLEST",
    "TABLE_IV",
    "design_space",
    "table_iv_config",
]
