"""Architecture configuration data model.

All timing in the model is expressed in *cycles* of the core clock; the
``frequency_ghz`` field converts predicted cycles into seconds so that
design points with different clocks (Table IV) can be compared on
execution time.

The classes here are deliberately plain, immutable dataclasses: both the
analytical model and the reference simulator read them, and a
configuration must be hashable so profiles/predictions can be memoised
per design point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

#: Cache line size in bytes.  Both the profiler and the simulator work at
#: cache-line granularity, so this is a global constant of the toolchain.
LINE_SIZE = 64


@dataclass(frozen=True)
class CacheConfig:
    """A single cache level.

    Parameters
    ----------
    size_bytes:
        Total capacity in bytes.
    associativity:
        Number of ways.  ``StatStack`` models the cache as fully
        associative LRU of the same capacity; the simulator honours the
        set/way structure.
    latency:
        Access (hit) latency in cycles, as seen by the requester.
    shared:
        True for caches shared by all cores (the LLC in the paper's
        configurations), False for per-core private caches.
    """

    size_bytes: int
    associativity: int
    latency: int
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.size_bytes % (self.associativity * LINE_SIZE) != 0:
            raise ValueError(
                "cache size must be a whole number of sets: "
                f"size={self.size_bytes} assoc={self.associativity}"
            )
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    @property
    def lines(self) -> int:
        """Number of cache lines the cache can hold."""
        return self.size_bytes // LINE_SIZE

    @property
    def sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return self.lines // self.associativity


@dataclass(frozen=True)
class BranchPredictorConfig:
    """A tournament branch predictor (paper: '4 KB, tournament').

    The capacity is split between a bimodal table, a gshare table and a
    chooser, mirroring the classic Alpha-style tournament organisation
    used by Sniper's default predictor.
    """

    size_bytes: int = 4096
    counter_bits: int = 2
    #: Global-history length used by the gshare component.
    history_bits: int = 12

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("predictor size must be positive")
        if not 1 <= self.counter_bits <= 4:
            raise ValueError("counter_bits must be in [1, 4]")
        if not 1 <= self.history_bits <= 24:
            raise ValueError("history_bits must be in [1, 24]")

    @property
    def entries_per_table(self) -> int:
        """Entries in each of the three component tables.

        The budget is split three ways; entries are rounded down to a
        power of two because the tables are indexed by hashed bits.
        """
        counters = (self.size_bytes * 8) // (3 * self.counter_bits)
        return 1 << max(1, int(math.floor(math.log2(counters))))


@dataclass(frozen=True)
class CoreConfig:
    """An out-of-order superscalar core.

    The five Table IV design points vary ``dispatch_width``,
    ``rob_size``, ``issue_queue_size`` and ``frequency_ghz`` while
    keeping peak operations per second constant.
    """

    frequency_ghz: float = 2.5
    dispatch_width: int = 4
    rob_size: int = 128
    issue_queue_size: int = 64
    #: Front-end pipeline depth: cycles to refill after a flush (c_fr).
    frontend_depth: int = 5
    #: Miss-status holding registers: caps memory-level parallelism.
    mshr_entries: int = 16
    #: Issue ports per functional-unit class (micro-op class name -> ports).
    ports: Dict[str, int] = field(
        default_factory=lambda: {
            "ialu": 4,
            "imul": 1,
            "fp": 2,
            "load": 2,
            "store": 1,
            "branch": 1,
        }
    )
    #: Execution latency per micro-op class, in cycles.
    op_latency: Dict[str, int] = field(
        default_factory=lambda: {
            "ialu": 1,
            "imul": 3,
            "fp": 4,
            "load": 2,  # L1 hit pipeline latency (address gen + access)
            "store": 1,
            "branch": 1,
        }
    )

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.dispatch_width <= 0:
            raise ValueError("dispatch width must be positive")
        if self.rob_size < self.dispatch_width:
            raise ValueError("ROB must hold at least one dispatch group")
        if self.issue_queue_size <= 0:
            raise ValueError("issue queue size must be positive")
        if self.frontend_depth <= 0:
            raise ValueError("front-end depth must be positive")
        if self.mshr_entries <= 0:
            raise ValueError("MSHR count must be positive")

    def __hash__(self) -> int:
        return hash(
            (
                self.frequency_ghz,
                self.dispatch_width,
                self.rob_size,
                self.issue_queue_size,
                self.frontend_depth,
                self.mshr_entries,
                tuple(sorted(self.ports.items())),
                tuple(sorted(self.op_latency.items())),
            )
        )

    @property
    def cycle_time_ns(self) -> float:
        """Duration of one core cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz

    def peak_ops_per_second(self) -> float:
        """Peak micro-ops per second (dispatch width x frequency)."""
        return self.dispatch_width * self.frequency_ghz * 1e9


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory timing.

    ``latency`` is the round-trip cost of an LLC miss in *nanoseconds*
    (converted to core cycles per design point, so higher-clocked
    configurations see relatively more expensive memory, as on real
    hardware).
    """

    latency_ns: float = 60.0
    bandwidth_gbps: float = 25.6

    def __post_init__(self) -> None:
        if self.latency_ns <= 0:
            raise ValueError("memory latency must be positive")
        if self.bandwidth_gbps <= 0:
            raise ValueError("memory bandwidth must be positive")

    def latency_cycles(self, core: CoreConfig) -> int:
        """Memory latency expressed in cycles of ``core``'s clock."""
        return max(1, round(self.latency_ns * core.frequency_ghz))


@dataclass(frozen=True)
class MulticoreConfig:
    """A full multicore machine: N identical cores + cache hierarchy.

    The hierarchy follows the paper's base machine: private L1-I, L1-D
    and L2 per core, one shared LLC, uniform memory behind it.
    """

    name: str
    cores: int
    core: CoreConfig
    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    llc: CacheConfig
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    branch_predictor: BranchPredictorConfig = field(
        default_factory=BranchPredictorConfig
    )

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("core count must be positive")
        if self.l1i.shared or self.l1d.shared or self.l2.shared:
            raise ValueError("L1/L2 caches must be private in this hierarchy")
        if not self.llc.shared:
            raise ValueError("LLC must be shared in this hierarchy")
        if not (
            self.l1d.size_bytes <= self.l2.size_bytes <= self.llc.size_bytes
        ):
            raise ValueError("cache capacities must be non-decreasing")

    def __hash__(self) -> int:
        return hash((self.name, self.cores, self.core, self.l1i, self.l1d,
                     self.l2, self.llc, self.memory, self.branch_predictor))

    @property
    def data_levels(self) -> Tuple[CacheConfig, CacheConfig, CacheConfig]:
        """The data-side hierarchy from closest to furthest."""
        return (self.l1d, self.l2, self.llc)

    @property
    def instruction_levels(self) -> Tuple[CacheConfig, CacheConfig, CacheConfig]:
        """The instruction-side hierarchy (L1-I then unified L2, LLC)."""
        return (self.l1i, self.l2, self.llc)

    def memory_latency_cycles(self) -> int:
        """LLC-miss round trip in core cycles."""
        return self.memory.latency_cycles(self.core)

    def with_core(self, core: CoreConfig, name: str = "") -> "MulticoreConfig":
        """Derive a configuration with a different core (same memory)."""
        return replace(self, core=core, name=name or self.name)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count into wall-clock seconds."""
        return cycles / (self.core.frequency_ghz * 1e9)
