"""One cache plane for the whole pipeline: :class:`Session`.

The paper's premise is that profiling is a one-time cost amortized
across a design-space sweep.  Before this module, each amortizable
artifact had its own ad-hoc cache handle threaded separately through
the pipeline (``trace_cache=``, ``ilp_cache=``, ``cache=``) — callers
had to know which layer wanted which handle, and new caches meant new
kwargs everywhere.  A :class:`Session` bundles them behind one object:

* :attr:`traces` — content-addressed expanded traces
  (:class:`~repro.experiments.store.TraceCache`: LRU -> store ->
  expansion engine),
* :attr:`ilp` — content-addressed per-pool ILP tables
  (:class:`~repro.profiler.ilp_batch.ILPTableCache`),
* :attr:`branches` — content-addressed branch statistics
  (:class:`~repro.profiler.branchprof.BranchStatsCache`),
* :attr:`prep` — static per-segment profiling precompute keyed by the
  engine's static-artifact identity
  (:class:`~repro.profiler.profiler.SegmentPrepCache`),
* :meth:`cost_cache` — resident Eq.-1 memos per (profile, config)
  (:class:`~repro.core.epoch_model.EpochCostCache`),

plus usage counters and one consolidated :meth:`health` snapshot for
the serving plane.  Construct with :meth:`Session.from_store` (durable
artifacts under the default cache root) or :meth:`Session.ephemeral`
(in-memory only); pass the instance as ``session=`` to
:func:`~repro.profiler.profiler.profile_workload`,
:func:`~repro.core.rppm.predict`,
:func:`~repro.simulator.multicore.simulate` and the experiment
harnesses.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.arch.config import MulticoreConfig
from repro.core.epoch_model import EpochCostCache
from repro.profiler.branchprof import BranchStatsCache
from repro.profiler.ilp_batch import KERNEL_STATS, ILPTableCache
from repro.profiler.profile import WorkloadProfile
from repro.profiler.profiler import SegmentPrepCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.store import ProfileStore
    from repro.workloads.engine import ExpansionEngine

# The store layer (repro.experiments) imports back into the harnesses
# that accept ``session=``, so pulling it in at module-import time
# would close an import cycle whenever a caller imports this module
# before ``repro.experiments`` has finished initializing (e.g. the
# CLI).  The store types are therefore resolved lazily, inside the
# constructors that need them.


class Session:
    """Caches, memos and counters shared across one pipeline lifetime.

    Parameters
    ----------
    store:
        Optional :class:`~repro.experiments.store.ProfileStore` giving
        the trace and ILP caches durable backing.  ``None`` keeps every
        artifact in memory.
    engine:
        Optional :class:`~repro.workloads.engine.ExpansionEngine`; by
        default the process-wide engine (and its static-artifact memo)
        is shared.
    max_cost_caches:
        Resident Eq.-1 memos kept, LRU over (profile, config) pairs.
    max_trace_bytes:
        Byte bound of the resident trace LRU.

    Thread-safe: the component caches carry their own locks and the
    cost-memo LRU locks here.
    """

    def __init__(
        self,
        store: Optional["ProfileStore"] = None,
        *,
        engine: Optional["ExpansionEngine"] = None,
        max_cost_caches: int = 64,
        max_trace_bytes: int = 512 << 20,
    ) -> None:
        from repro.experiments.store import TraceCache

        self.store = store
        self.traces = TraceCache(
            store=store, engine=engine, max_bytes=max_trace_bytes
        )
        self.ilp = ILPTableCache(store)
        self.branches = BranchStatsCache()
        self.prep = SegmentPrepCache()
        self.max_cost_caches = max_cost_caches
        self._costs: "OrderedDict[Tuple[Any, str], Tuple[WorkloadProfile, EpochCostCache]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_store(
        cls, root: Optional[os.PathLike] = None, **kwargs: Any
    ) -> "Session":
        """A session over the durable artifact store.

        ``root`` defaults to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``
        (see :meth:`~repro.experiments.store.ProfileStore.open_default`);
        writes are best effort, so a broken cache directory degrades to
        in-memory caching instead of failing the run.
        """
        from repro.experiments.store import ProfileStore

        return cls(store=ProfileStore.open_default(root), **kwargs)

    @classmethod
    def ephemeral(cls, **kwargs: Any) -> "Session":
        """A session with in-memory caches only (tests, one-off runs)."""
        return cls(store=None, **kwargs)

    # -- Eq.-1 cost memos ---------------------------------------------------

    def cost_cache(
        self,
        profile: WorkloadProfile,
        config: MulticoreConfig,
        key: Optional[str] = None,
    ) -> EpochCostCache:
        """The resident Eq.-1 memo for ``(profile, config)``.

        ``key`` optionally names the profile with a stable identity (a
        store key); without it the profile *object* identifies the
        entry, so repeat predictions must pass the same instance to
        hit.  The memo is only valid for the exact profile object it
        was built from — if a caller re-loads a profile under the same
        ``key``, the stale entry is replaced, never reused.
        """
        from repro.experiments.store import config_fingerprint

        ident = key if key is not None else id(profile)
        ckey = (ident, config_fingerprint(config))
        with self._lock:
            entry = self._costs.get(ckey)
            if entry is not None and entry[0] is profile:
                self._costs.move_to_end(ckey)
                return entry[1]
        cache = EpochCostCache(profile, config)
        with self._lock:
            self._costs[ckey] = (profile, cache)
            self._costs.move_to_end(ckey)
            while len(self._costs) > self.max_cost_caches:
                self._costs.popitem(last=False)
        return cache

    # -- accounting ---------------------------------------------------------

    def record(self, kind: str, by: int = 1) -> None:
        """Count one pipeline operation (``profiles``, ``predictions``,
        ``simulations``...) for the :meth:`health` snapshot."""
        with self._lock:
            self._counters[kind] = self._counters.get(kind, 0) + by

    @property
    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def health(self) -> Dict[str, Any]:
        """One consolidated snapshot of every cache the session holds.

        This is the ``session`` block of the service's ``/healthz``:
        trace cache occupancy and hit rates, ILP table and branch-stat
        memo effectiveness, segment-prep memo occupancy, resident
        Eq.-1 memos, expansion-engine and ILP-kernel counters, usage
        counters, and (when durable) the store's degradation counters.
        """
        with self._lock:
            n_costs = len(self._costs)
            counters = dict(self._counters)
        out: Dict[str, Any] = {
            "trace_cache": self.traces.stats(),
            "ilp_cache": {"hits": self.ilp.hits, "misses": self.ilp.misses},
            "branch_cache": self.branches.stats(),
            "prep_cache": self.prep.stats(),
            "cost_caches": n_costs,
            "expand_engine": self.traces.engine.stats.snapshot(),
            "ilp_kernel": KERNEL_STATS.snapshot(),
            "counters": counters,
            "durable": self.store is not None,
        }
        if self.store is not None:
            out["store"] = self.store.health()
        return out
