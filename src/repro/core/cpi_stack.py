"""CPI stacks (Fig. 5): cycle attribution per first-order mechanism.

A :class:`CPIStack` holds *cycles* per component; dividing by the
instruction count yields the classic CPI stack.  Both RPPM and the
reference simulator produce these with identical component names so
they can be compared bar-for-bar as in the paper's Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

#: Component order used in reports (matches the paper's stacking).
COMPONENTS = ("base", "branch", "icache", "mem", "sync")


@dataclass
class CPIStack:
    """Cycle counts per CPI component for one thread (or aggregate)."""

    base: float = 0.0
    branch: float = 0.0
    icache: float = 0.0
    mem: float = 0.0
    sync: float = 0.0
    instructions: int = 0

    def __post_init__(self) -> None:
        for name in COMPONENTS:
            if getattr(self, name) < -1e-9:
                raise ValueError(f"negative {name} component")

    @property
    def total_cycles(self) -> float:
        return sum(getattr(self, name) for name in COMPONENTS)

    @property
    def active_cycles(self) -> float:
        """Cycles excluding synchronization idle time."""
        return self.total_cycles - self.sync

    def cpi(self) -> Dict[str, float]:
        """Per-component CPI (cycles per instruction)."""
        n = max(1, self.instructions)
        return {name: getattr(self, name) / n for name in COMPONENTS}

    def total_cpi(self) -> float:
        return self.total_cycles / max(1, self.instructions)

    def normalized(self) -> Dict[str, float]:
        """Component shares of the total (sums to 1 when non-empty)."""
        total = self.total_cycles
        if total <= 0:
            return {name: 0.0 for name in COMPONENTS}
        return {
            name: getattr(self, name) / total for name in COMPONENTS
        }

    def add(self, other: "CPIStack") -> None:
        """Accumulate ``other`` into this stack (in place)."""
        for name in COMPONENTS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.instructions += other.instructions

    @classmethod
    def merged(cls, stacks: Iterable["CPIStack"]) -> "CPIStack":
        out = cls()
        for stack in stacks:
            out.add(stack)
        return out

    def to_dict(self) -> dict:
        out = {name: getattr(self, name) for name in COMPONENTS}
        out["instructions"] = self.instructions
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CPIStack":
        return cls(**data)
