"""Phase 1 of RPPM's prediction (Fig. 3b): per-epoch active times.

Each dynamic segment's active execution time is its instruction count
times the Eq.-1 CPI of its pool on the target configuration.  Costs are
memoised per (pool, configuration) — this is what makes RPPM "rapid":
a workload with millions of dynamic synchronization epochs still needs
only one Eq.-1 evaluation per static code region.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.arch.config import MulticoreConfig
from repro.core.cpi_stack import CPIStack
from repro.core.equation import EpochCosts, evaluate_equation
from repro.profiler.profile import SegmentRef, ThreadProfile, WorkloadProfile


class EpochCostCache:
    """Memoised Eq.-1 evaluations per (thread, pool key)."""

    def __init__(self, profile: WorkloadProfile, config: MulticoreConfig):
        self.profile = profile
        self.config = config
        self._cache: Dict[Tuple[int, int], EpochCosts] = {}

    def costs(self, thread: ThreadProfile, key: Optional[int]) -> Optional[
        EpochCosts
    ]:
        if key is None:
            return None
        cache_key = (thread.thread_id, key)
        if cache_key not in self._cache:
            self._cache[cache_key] = evaluate_equation(
                thread.pools[key], self.config
            )
        return self._cache[cache_key]


def segment_startup_cycles(config: MulticoreConfig) -> float:
    """Pipeline restart cost charged once per dynamic segment.

    A synchronization event (or a context break at a chunk boundary)
    drains the pipeline: the front-end refills (``frontend_depth``),
    the first instruction fetch resolves, and the last in-flight chain
    completes.  The reference simulator pays the same cost at every
    block restart.
    """
    return float(config.core.frontend_depth + config.l1i.latency + 4)


def predict_epoch_cycles(
    cache: EpochCostCache, thread: ThreadProfile, segment: SegmentRef
) -> Tuple[float, CPIStack]:
    """Predicted active cycles and CPI-stack contribution of a segment."""
    costs = cache.costs(thread, segment.key)
    if costs is None or segment.n_instructions == 0:
        return 0.0, CPIStack()
    n = segment.n_instructions
    startup = segment_startup_cycles(cache.config)
    stack = CPIStack(
        base=costs.cpi_base * n + startup,
        branch=costs.cpi_branch * n,
        icache=costs.cpi_icache * n,
        mem=costs.cpi_mem * n,
        instructions=n,
    )
    return costs.cpi_active * n + startup, stack
