"""Equation 1: the mechanistic single-thread interval model (paper §II-B).

    C = N / D_eff                                   (base)
      + m_bpred * (c_res + c_fr)                    (branch)
      + sum_i m_ILi * c_L(i+1)                      (I-cache)
      + m_LLC * c_mem / MLP                         (D-cache)

evaluated per pool (static code region) and per target configuration:

* ``D_eff`` is the minimum of pipeline width, the profiled ILP at the
  target's window size (with the hierarchy's expected data-*hit*
  latency folded into the dependence chains), and the issue-port
  throughput cap implied by the instruction mix;
* the D-cache component is derived from the same ILP scoreboard: it is
  the *additional* per-instruction time when loads carry the
  miss-inclusive average latency instead of the hit-only average.
  Window-constrained miss overlap (MLP) is therefore captured by the
  profiled dependence structure itself, clipped by the MSHR capacity;
* ``m_bpred`` comes from the entropy model; ``c_res`` is the profiled
  dispatch-to-execute time of branches at the miss-inclusive latency
  (a branch that waits on a missing load resolves late); ``c_fr`` is
  the front-end refill depth;
* instruction/data miss rates come from StatStack — private
  distributions for L1/L2, the global interleaved distribution for the
  shared LLC (this is where inter-thread interference and coherence
  enter per-thread performance, paper §III-B phase 1).

All components are per-instruction CPI contributions; multiply by a
segment's instruction count to get its predicted active cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import MulticoreConfig
from repro.branch.entropy_model import predict_miss_rate
from repro.profiler.profile import EpochProfile
from repro.statstack.multithread import (
    hierarchy_miss_rates,
    instruction_miss_rates,
)


@dataclass(frozen=True)
class EpochCosts:
    """Per-instruction CPI components of one pool on one configuration."""

    cpi_base: float
    cpi_branch: float
    cpi_icache: float
    cpi_mem: float
    # Diagnostics (useful for tests and error analysis).
    effective_dispatch: float
    branch_miss_rate: float
    data_l1_miss: float
    data_l2_miss: float
    data_llc_miss: float
    mlp: float

    @property
    def cpi_active(self) -> float:
        """Total active (non-sync) CPI."""
        return self.cpi_base + self.cpi_branch + self.cpi_icache + self.cpi_mem


def _port_throughput_cap(pool: EpochProfile, config: MulticoreConfig) -> float:
    """Max IPC allowed by per-class issue ports given the mix."""
    mix = pool.mix
    ports = config.core.ports
    cap = float("inf")
    for name, frac in mix.items():
        if frac <= 0.0:
            continue
        cap = min(cap, ports.get(name, config.core.dispatch_width) / frac)
    return cap


def evaluate_equation(
    pool: EpochProfile, config: MulticoreConfig
) -> EpochCosts:
    """Evaluate Eq. 1's per-instruction components for one pool."""
    core = config.core
    if pool.n_instructions == 0:
        return EpochCosts(0, 0, 0, 0, core.dispatch_width, 0, 0, 0, 0, 1.0)

    # --- data hierarchy (StatStack, multithreaded extension) -------------
    rates = hierarchy_miss_rates(pool.data, config)
    m1, m2, m3 = rates.l1d, rates.l2, rates.llc
    l1 = config.l1d.latency
    l2 = config.l2.latency
    llc = config.llc.latency
    mem_cycles = config.memory_latency_cycles()
    # Expected load latency with all misses resolved on-chip (hit part;
    # an LLC-missing load still pays the LLC lookup before memory).
    lat_hit = (1.0 - m1) * l1 + (m1 - m2) * l2 + (m2 - m3) * llc + m3 * llc
    # Miss-inclusive expected load latency, clipped by MSHR capacity:
    # when more misses than MSHRs would overlap, the average per-load
    # memory contribution cannot shrink below the MSHR-throttled rate.
    mlp_cap = float(core.mshr_entries)

    # --- base: effective dispatch rate at hit latency ---------------------
    # The expected hit latency is folded into the dependence chains via
    # the profiled ILP table (Van den Steen et al. [37]).
    ilp_hit = pool.ilp.lookup(core.rob_size, lat_hit)
    ilp_full = pool.ilp.lookup(core.rob_size, lat_hit + m3 * mem_cycles)
    port_cap = _port_throughput_cap(pool, config)
    deff = min(float(core.dispatch_width), ilp_hit, port_cap)
    deff = max(deff, 1e-3)
    cpi_base = 1.0 / deff

    # --- D-cache component (long-latency loads) ---------------------------
    # Additional time when loads carry the miss-inclusive latency; the
    # dependence scoreboard folds window-limited overlap in.
    deff_full = max(min(float(core.dispatch_width), ilp_full, port_cap), 1e-3)
    cpi_mem = max(0.0, 1.0 / deff_full - cpi_base)
    # MSHR throttle: the scoreboard assumes unbounded outstanding
    # misses; hardware tracks at most ``mshr_entries``.  The serialized
    # floor is (misses per instruction) * memory latency / MSHRs.
    loads_pi = pool.loads_per_instruction
    mshr_floor = loads_pi * m3 * mem_cycles / mlp_cap
    cpi_mem = max(cpi_mem, mshr_floor)
    # Effective memory-level parallelism implied by the component
    # (diagnostic; also comparable to the explicit MLP model).
    raw_miss_cpi = loads_pi * m3 * mem_cycles
    mlp = raw_miss_cpi / cpi_mem if cpi_mem > 1e-12 else 1.0
    mlp = max(1.0, mlp)

    # --- branch component --------------------------------------------------
    m_bpred = predict_miss_rate(pool.branch, config.branch_predictor)
    # Resolution time: a mispredicted branch redirects the front-end
    # when it executes.  Operand chains of completed work are hidden by
    # the window; what remains exposed is dependence on *outstanding*
    # long-latency loads.  The exposure is the expected number of LLC
    # misses among the loads in the branch's recent backward slice
    # (recent = still plausibly in flight), each costing about half a
    # memory access on average.
    reach = min(core.rob_size, 64)
    slice_loads = pool.ilp.lookup_branch_loads(reach)
    p_miss_dep = 1.0 - (1.0 - m3) ** slice_loads
    miss_wait = 0.5 * p_miss_dep * mem_cycles
    c_res = 2.0 + miss_wait
    c_fr = float(core.frontend_depth)
    bpi = pool.branches_per_instruction
    cpi_branch = bpi * m_bpred * (c_res + c_fr)
    # Overlap between branch and D-cache stalls: while a redirect waits
    # on a miss, the window drains on the *same* miss — those cycles
    # must not be charged twice.  The covered share of all misses is
    # the rate of miss-waiting redirects over the total miss rate: with
    # frequent mispredicts and sparse misses every miss hides behind a
    # redirect (coverage 1); with dense misses and rare mispredicts the
    # D-cache component stands on its own (coverage ~0).
    misses_pi = loads_pi * m3
    if misses_pi > 1e-12:
        coverage = min(1.0, bpi * m_bpred * p_miss_dep / misses_pi)
        cpi_mem *= 1.0 - 0.6 * coverage

    # --- I-cache component -------------------------------------------------
    mi1, mi2, mi3 = instruction_miss_rates(pool, config)
    fetch_cost = (
        mi1 * (l2 - config.l1i.latency)
        + mi2 * (llc - l2)
        + mi3 * mem_cycles
    )
    cpi_icache = pool.fetches_per_instruction * fetch_cost

    return EpochCosts(
        cpi_base=cpi_base,
        cpi_branch=cpi_branch,
        cpi_icache=cpi_icache,
        cpi_mem=cpi_mem,
        effective_dispatch=deff,
        branch_miss_rate=m_bpred,
        data_l1_miss=m1,
        data_l2_miss=m2,
        data_llc_miss=m3,
        mlp=mlp,
    )
