"""RPPM end-to-end prediction: Profile x Config -> performance.

Phase 1 predicts each segment's active time with Eq. 1 (see
:mod:`repro.core.epoch_model`); phase 2 replays the profiled
synchronization structure symbolically through the shared DES scheduler
— the paper's Algorithm 2 — adding idle time where threads wait at
barriers, locks, condition variables and joins.  The result carries the
same per-thread structure as a simulation result, so accuracy and CPI
stacks compare directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional

from repro.arch.config import MulticoreConfig
from repro.core.cpi_stack import CPIStack
from repro.core.epoch_model import EpochCostCache, predict_epoch_cycles
from repro.obs import span
from repro.profiler.profile import WorkloadProfile
from repro.runtime.scheduler import run_schedule_batched
from repro.runtime.timeline import Timeline


@dataclass
class ThreadPrediction:
    """Per-thread outcome of an RPPM prediction."""

    thread_id: int
    instructions: int
    active_cycles: float
    idle_cycles: float
    stack: CPIStack

    @property
    def total_cycles(self) -> float:
        return self.active_cycles + self.idle_cycles


@dataclass
class PredictionResult:
    """RPPM's prediction for one workload on one configuration."""

    workload: str
    config: str
    total_cycles: float
    threads: List[ThreadPrediction]
    timeline: Timeline

    @property
    def n_instructions(self) -> int:
        return sum(t.instructions for t in self.threads)

    def average_stack(self) -> CPIStack:
        """Average per-thread CPI stack (the paper's Fig. 5 metric)."""
        return CPIStack.merged(t.stack for t in self.threads)


def predict(
    profile: WorkloadProfile,
    config: MulticoreConfig,
    session=None,
    *,
    cache: Optional[EpochCostCache] = None,
) -> PredictionResult:
    """Predict multithreaded execution on ``config`` from ``profile``.

    ``session`` (a :class:`repro.core.session.Session`) keeps the
    per-(thread, pool) Eq.-1 memo resident across calls for the same
    (profile, config) pair — the memo is read/extend-only, so reuse is
    safe and repeat predictions skip every Eq.-1 evaluation.

    .. deprecated::
        ``cache=`` (a manually managed :class:`EpochCostCache`) is a
        deprecated shim kept for one release; pass a ``session``.
    """
    if cache is not None:
        warnings.warn(
            "predict(cache=...) is deprecated; pass "
            "session=Session(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    if cache is None and session is not None:
        cache = session.cost_cache(profile, config)
        session.record("predictions")
    if cache is None:
        cache = EpochCostCache(profile, config)

    with span("predict", workload=profile.name, config=config.name):
        # Phase 1: active cycles per segment (memoised per pool).
        durations: List[List[float]] = []
        stacks = [CPIStack() for _ in range(profile.n_threads)]
        for thread in profile.threads:
            per_segment = []
            for segment in thread.segments:
                cycles, stack = predict_epoch_cycles(cache, thread, segment)
                per_segment.append(cycles)
                stacks[thread.thread_id].add(stack)
            durations.append(per_segment)

        # Phase 2: symbolic execution of the synchronization structure
        # (Algorithm 2) over the predicted per-epoch times.  The epoch
        # times are all known up front, so the replay advances in batched
        # strides between synchronization points.
        programs = [
            [segment.event for segment in thread.segments]
            for thread in profile.threads
        ]
        schedule = run_schedule_batched(programs, durations)

        threads = []
        for thread in profile.threads:
            tid = thread.thread_id
            stack = stacks[tid]
            stack.sync = schedule.idle[tid]
            threads.append(
                ThreadPrediction(
                    thread_id=tid,
                    instructions=thread.n_instructions,
                    active_cycles=schedule.active[tid],
                    idle_cycles=schedule.idle[tid],
                    stack=stack,
                )
            )
        return PredictionResult(
            workload=profile.name,
            config=config.name,
            total_cycles=schedule.end_time,
            threads=threads,
            timeline=schedule.timeline,
        )
