"""RPPM: the mechanistic multithreaded performance model (paper §III).

Public entry points:

* :func:`repro.core.rppm.predict` — Profile x Config -> prediction
  (total time, per-thread CPI stacks, execution timeline).
* :mod:`repro.core.baselines` — the naive MAIN and CRIT predictors the
  paper compares against.
* :mod:`repro.core.bottlegraph` — bottlegraph construction [13] from
  predicted or simulated timelines.
"""

from repro.core.cpi_stack import CPIStack
from repro.core.equation import EpochCosts, evaluate_equation
from repro.core.epoch_model import predict_epoch_cycles
from repro.core.rppm import PredictionResult, predict
from repro.core.baselines import predict_crit, predict_main
from repro.core.bottlegraph import Bottlegraph, bottlegraph_from_timeline

__all__ = [
    "CPIStack",
    "EpochCosts",
    "evaluate_equation",
    "predict_epoch_cycles",
    "PredictionResult",
    "predict",
    "predict_crit",
    "predict_main",
    "Bottlegraph",
    "bottlegraph_from_timeline",
]
