"""Bottlegraphs (Du Bois et al. [13]; paper §VI-B, Fig. 6).

A bottlegraph draws one box per thread: height = the thread's share of
total execution time (its *criticality*), width = the thread's average
parallelism while it runs.  Shares split each instant of execution
equally among the threads running at that instant, so heights sum to
the total execution time; widths reveal whether a thread runs alone
(sequential bottleneck, width 1) or alongside others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.runtime.timeline import Timeline


@dataclass
class Bottlegraph:
    """Per-thread criticality/parallelism boxes of one execution."""

    #: Criticality share per thread, in time units (heights).
    heights: List[float]
    #: Average parallelism while the thread runs (widths, harmonic mean).
    widths: List[float]
    #: Total execution time (= sum of heights).
    total: float

    @property
    def n_threads(self) -> int:
        return len(self.heights)

    def normalized_heights(self) -> List[float]:
        """Heights as shares of total execution time (sum to 1)."""
        if self.total <= 0:
            return [0.0] * self.n_threads
        return [h / self.total for h in self.heights]

    def stacking_order(self) -> List[int]:
        """Thread ids sorted widest box first (bottom of the stack)."""
        return sorted(
            range(self.n_threads), key=lambda t: -self.widths[t]
        )

    def bottleneck_thread(self) -> int:
        """The thread with the tallest box (the scalability bottleneck)."""
        return max(range(self.n_threads), key=lambda t: self.heights[t])


def bottlegraph_from_timeline(timeline: Timeline) -> Bottlegraph:
    """Build a bottlegraph from an execution timeline.

    Works identically on simulated and predicted timelines, which is
    how Fig. 6 pairs the two per benchmark.
    """
    n = timeline.n_threads
    # Sweep all active-interval boundaries, maintaining the running set.
    events: List[Tuple[float, int, int]] = []  # (time, +1/-1, tid)
    for tid in range(n):
        for iv in timeline.active[tid]:
            events.append((iv.start, 1, tid))
            events.append((iv.end, -1, tid))
    if not events:
        return Bottlegraph(
            heights=[0.0] * n, widths=[0.0] * n, total=0.0
        )
    events.sort(key=lambda e: (e[0], e[1]))  # process ends before starts
    shares = [0.0] * n
    active_time = [0.0] * n
    running = [0] * n  # interval nesting count per thread
    active_set: set = set()
    prev_time = events[0][0]
    for time, delta, tid in events:
        if time > prev_time and active_set:
            dt = time - prev_time
            k = len(active_set)
            for t in active_set:
                shares[t] += dt / k
                active_time[t] += dt
        prev_time = time
        if delta > 0:
            running[tid] += 1
            active_set.add(tid)
        else:
            running[tid] -= 1
            if running[tid] == 0:
                active_set.discard(tid)
    widths = [
        (active_time[t] / shares[t]) if shares[t] > 0 else 0.0
        for t in range(n)
    ]
    return Bottlegraph(
        heights=shares, widths=widths, total=sum(shares)
    )
