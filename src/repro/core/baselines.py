"""The naive multithreaded extensions MAIN and CRIT (paper §II-C).

Both apply the single-threaded Eq.-1 model per thread and ignore
synchronization, shared-resource contention modeling of idle time and
error accumulation — they are the strawmen Figure 4 compares RPPM
against:

* **MAIN** predicts the whole application's time as the main thread's
  predicted active time;
* **CRIT** predicts every thread's active time and takes the maximum
  (the predicted critical thread).

Note both use the same profile as RPPM, so their miss rates do include
the profiled interference — exactly as in the paper, their deficiency
is the missing synchronization model, not worse inputs.
"""

from __future__ import annotations

from typing import List

from repro.arch.config import MulticoreConfig
from repro.core.epoch_model import EpochCostCache, predict_epoch_cycles
from repro.profiler.profile import WorkloadProfile


def _thread_active_cycles(
    profile: WorkloadProfile, config: MulticoreConfig
) -> List[float]:
    cache = EpochCostCache(profile, config)
    totals = []
    for thread in profile.threads:
        total = 0.0
        for segment in thread.segments:
            cycles, _ = predict_epoch_cycles(cache, thread, segment)
            total += cycles
        totals.append(total)
    return totals


def predict_main(
    profile: WorkloadProfile, config: MulticoreConfig
) -> float:
    """MAIN: the main thread's predicted active time, in cycles."""
    return _thread_active_cycles(profile, config)[0]


def predict_crit(
    profile: WorkloadProfile, config: MulticoreConfig
) -> float:
    """CRIT: the slowest predicted thread's active time, in cycles."""
    return max(_thread_active_cycles(profile, config))
