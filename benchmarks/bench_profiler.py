"""Profiler-throughput benches (the BENCH trajectory).

Tracks the vectorized reuse-distance engine against the preserved seed
scalar implementation on identical Rodinia access streams, plus the
end-to-end suite profiling wall-clock.  The measurement logic lives in
:mod:`repro.experiments.bench` (also wired to ``python -m repro
bench``); this module is its pytest face, ``perf``-marked so plain
test runs skip it (``pytest benchmarks/bench_profiler.py`` or
``-m perf`` to run).
"""

from __future__ import annotations

import pytest

from repro.experiments.bench import (
    check_bench,
    expand_suite,
    extract_ilp_pools,
    extract_replay_programs,
    extract_streams,
    render_bench,
    run_profiler_bench,
    _run_ilp_batch,
    _run_ilp_scalar,
    _run_replay_batched,
    _run_replay_spec,
    _run_scalar,
    _run_vectorized,
)
from repro.experiments.suites import rodinia_suite

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def streams():
    return extract_streams(rodinia_suite(), scale=1.0)


@pytest.fixture(scope="module")
def ilp_pools():
    return extract_ilp_pools(rodinia_suite(), scale=1.0)


def test_bench_vectorized_engine(benchmark, streams):
    benchmark.pedantic(
        _run_vectorized, args=(streams,), rounds=5, iterations=1
    )


def test_bench_scalar_reference(benchmark, streams):
    benchmark.pedantic(
        _run_scalar, args=(streams,), rounds=2, iterations=1
    )


def test_bench_ilp_batch_engine(benchmark, ilp_pools):
    benchmark.pedantic(
        _run_ilp_batch, args=(ilp_pools,), rounds=5, iterations=1
    )


def test_bench_ilp_megabatch_kernel(benchmark, ilp_pools):
    """The fused flat-grid path alone (no cache/digest overhead)."""
    from repro.profiler.ilp_batch import batch_scoreboard_pools

    benchmark.pedantic(
        batch_scoreboard_pools, args=(ilp_pools,), rounds=5,
        iterations=1,
    )


def test_bench_ilp_prediction_grid(benchmark, ilp_pools):
    """The aux=False per-op-latency replay the predictor issues."""
    from repro.profiler.ilp import hierarchy_ilp

    samples = [s for pool in ilp_pools[:20] for s in pool]

    def run():
        hierarchy_ilp(
            samples, 128, (0.3, 0.1, 0.05), (3, 10, 30), 200.0
        )

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_bench_ilp_scalar_spec(benchmark, ilp_pools):
    benchmark.pedantic(
        _run_ilp_scalar, args=(ilp_pools,), rounds=2, iterations=1
    )


@pytest.fixture(scope="module")
def replay_cases():
    return extract_replay_programs(expand_suite(rodinia_suite(), 1.0))


def test_bench_replay_batched(benchmark, replay_cases):
    benchmark.pedantic(
        _run_replay_batched, args=(replay_cases,), rounds=5,
        iterations=1,
    )


def test_bench_replay_spec(benchmark, replay_cases):
    benchmark.pedantic(
        _run_replay_spec, args=(replay_cases,), rounds=5, iterations=1
    )


def test_bench_profiler_fast_path(benchmark):
    """Session-warm suite profiling — the steady state the
    suite_min_ips floor gates."""
    from repro.core.session import Session
    from repro.experiments.suites import build_workload
    from repro.profiler.profiler import profile_workload

    session = Session.ephemeral()
    specs = [build_workload(ref, 1.0) for ref in rodinia_suite()]
    for spec in specs:
        profile_workload(session.traces.get(spec), session=session)
    benchmark.pedantic(
        lambda: [
            profile_workload(session.traces.get(s), session=session)
            for s in specs
        ],
        rounds=5, iterations=1,
    )


def test_bench_profiler_reference(benchmark):
    """The preserved per-chunk profiler spec on the same traces."""
    from repro.experiments.store import TraceCache
    from repro.experiments.suites import build_workload
    from repro.profiler.profiler import profile_workload_reference

    cache = TraceCache()
    specs = [build_workload(ref, 1.0) for ref in rodinia_suite()]
    traces = [cache.get(spec) for spec in specs]
    benchmark.pedantic(
        lambda: [profile_workload_reference(t) for t in traces],
        rounds=2, iterations=1,
    )


def test_bench_expand_engine_cold(benchmark):
    """Columnar arena engine, fresh memo each round (worst case)."""
    from repro.experiments.suites import build_workload
    from repro.workloads.engine import EngineStats, ExpansionEngine

    specs = [build_workload(ref, 1.0) for ref in rodinia_suite()]
    benchmark.pedantic(
        lambda: ExpansionEngine(stats=EngineStats()).expand_many(specs),
        rounds=5, iterations=1,
    )


def test_bench_expand_trace_cache_warm(benchmark):
    """Content-addressed warm path every production call site runs."""
    from repro.experiments.store import TraceCache
    from repro.experiments.suites import build_workload

    specs = [build_workload(ref, 1.0) for ref in rodinia_suite()]
    cache = TraceCache()
    for spec in specs:
        cache.get(spec)
    benchmark.pedantic(
        lambda: [cache.get(spec) for spec in specs],
        rounds=5, iterations=1,
    )


def test_bench_expand_legacy_spec(benchmark):
    """The preserved per-segment generator spec."""
    from repro.experiments.suites import build_workload
    from repro.workloads.generator import expand

    specs = [build_workload(ref, 1.0) for ref in rodinia_suite()]
    benchmark.pedantic(
        lambda: [expand(spec) for spec in specs],
        rounds=2, iterations=1,
    )


def test_bench_speedup_record(tmp_path, report):
    """Full-suite record: asserts both engines' advantage and feeds
    the session report."""
    out = tmp_path / "BENCH_profiler.json"
    result = run_profiler_bench(quick=False, output=str(out))
    report("BENCH profiler", render_bench(result))
    assert out.exists()
    # Same committed floors as `bench --check` / the CI smoke job.
    assert check_bench(result) == []
