"""Figure 5: per-thread CPI stacks, RPPM vs simulation.

Regenerates the paired normalized stacks for the full suite and checks
the structural claims: simulated bars sum to one, predicted totals
track the prediction error, and the error decomposition names a
dominant component per benchmark (base/mem in the paper).
"""

import pytest

from repro.core.cpi_stack import COMPONENTS
from repro.experiments.cpi_stacks import render_figure5, run_figure5
from repro.experiments.suites import BenchmarkRef


@pytest.fixture(scope="module")
def figure5(run_cache, base_config):
    return run_figure5(cache=run_cache, config=base_config)


def test_report_figure5(figure5, report):
    report("Figure 5: CPI stacks normalized to simulation",
           render_figure5(figure5))


def test_simulated_bars_sum_to_one(figure5):
    for pair in figure5.pairs:
        assert pair.simulated_total == pytest.approx(1.0)


def test_predicted_totals_near_one(figure5):
    """Each predicted bar's total is 1 +/- that benchmark's error."""
    for pair in figure5.pairs:
        assert 0.6 < pair.predicted_total < 1.45, pair.benchmark


def test_memory_benchmarks_show_memory_component(figure5):
    for name in ("backprop", "nn"):
        pair = figure5.pair(name)
        assert pair.simulated["mem"] > 0.1
        assert pair.predicted["mem"] > 0.1


def test_sync_component_present_for_lock_heavy(figure5):
    pair = figure5.pair("fluidanimate")
    assert pair.simulated["sync"] > 0.1
    assert pair.predicted["sync"] > 0.1


def test_every_component_reported(figure5):
    for pair in figure5.pairs:
        assert set(pair.predicted) == set(COMPONENTS)
        assert set(pair.simulated) == set(COMPONENTS)


def test_bench_stack_extraction(benchmark, run_cache, base_config):
    """Cost of producing one benchmark's paired stacks from the cache."""
    from repro.experiments.cpi_stacks import run_stack_pair
    ref = BenchmarkRef("rodinia", "cfd")
    run_cache.prediction(ref, base_config)
    run_cache.simulation(ref, base_config)
    pair = benchmark(run_stack_pair, ref, base_config, run_cache)
    assert pair.simulated_total == pytest.approx(1.0)
