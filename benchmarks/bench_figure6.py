"""Figure 6: bottlegraphs of the Parsec suite, RPPM vs simulation.

Regenerates the paired bottlegraphs, checks that RPPM reproduces the
simulated balance classes, and renders the ASCII equivalents of the
paper's plots.  The timed benchmark measures bottlegraph construction
from a timeline.
"""

import pytest

from repro.core.bottlegraph import bottlegraph_from_timeline
from repro.experiments.bottlegraphs import (
    render_figure6,
    run_figure6,
)
from repro.experiments.suites import BenchmarkRef


@pytest.fixture(scope="module")
def figure6(run_cache, base_config):
    return run_figure6(cache=run_cache, config=base_config)


def test_report_figure6(figure6, report):
    report("Figure 6: bottlegraphs (RPPM vs simulation)",
           render_figure6(figure6))


def test_class_agreement_rate(figure6):
    assert figure6.agreement_rate() >= 0.8


def test_height_error_bounded(figure6):
    for pair in figure6.pairs:
        assert pair.height_error() < 0.2, pair.benchmark


def test_balanced_benchmarks_run_wide(figure6):
    for name in ("swaptions", "blackscholes", "raytrace"):
        pair = figure6.pair(name)
        worker_widths = pair.simulated.widths[1:]
        assert max(worker_widths) > 3.0, name


def test_freqmine_bottleneck_is_main(figure6):
    pair = figure6.pair("freqmine")
    assert pair.simulated.bottleneck_thread() == 0
    assert pair.predicted.bottleneck_thread() == 0


def test_imbalanced_benchmarks_capped(figure6):
    for name in ("bodytrack", "streamcluster"):
        pair = figure6.pair(name)
        assert max(pair.simulated.widths[1:]) < 3.6, name


def test_bench_bottlegraph_construction(benchmark, run_cache,
                                        base_config):
    timeline = run_cache.simulation(
        BenchmarkRef("parsec", "streamcluster"), base_config
    ).timeline
    graph = benchmark(bottlegraph_from_timeline, timeline)
    assert graph.total > 0
