"""Serving-throughput benches (the BENCH_service trajectory).

Boots the real asyncio HTTP server on an ephemeral port and measures
warm-cache ``/v1/predict`` round trips — single-connection latency and
closed-loop multi-client throughput.  The measurement logic lives in
:mod:`repro.experiments.bench` / :mod:`repro.service.loadgen` (also
wired to ``python -m repro bench``); this module is its pytest face,
``perf``-marked so plain test runs skip it.
"""

from __future__ import annotations

import pytest

from repro.experiments.bench import (
    check_service,
    render_service,
    run_service_bench,
)
from repro.service.client import ServiceClient
from repro.service.engine import PredictionEngine
from repro.service.server import BackgroundServer

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def warm_server():
    engine = PredictionEngine(store=None)
    with BackgroundServer(engine=engine, workers=2) as server:
        with ServiceClient(port=server.port) as client:
            client.predict("rodinia.nn", scale=0.5)  # warm the caches
        yield server


def test_bench_warm_predict_latency(benchmark, warm_server):
    with ServiceClient(port=warm_server.port) as client:
        benchmark.pedantic(
            client.predict,
            args=("rodinia.nn",),
            kwargs={"scale": 0.5},
            rounds=200,
            iterations=1,
        )


def test_bench_closed_loop_throughput(report):
    record = run_service_bench(
        quick=False, output=None, duration_s=2.0
    )
    report("service bench", render_service(record))
    assert not check_service(record)
