"""Thread-scaling bench (extension; paper §III future-work direction).

Strong-scaling speedup curves, predicted vs simulated, for a compute-
bound and a memory-bound benchmark.  RPPM must reproduce the *shape*
of the simulated curve (who scales, who saturates).
"""

import pytest

from repro.experiments.scaling import render_scaling, run_scaling_curve


@pytest.fixture(scope="module")
def curves():
    return {
        name: run_scaling_curve(name, scale=0.5)
        for name in ("lavaMD", "streamcluster")
    }


def test_report_scaling(curves, report):
    report(
        "Extension: strong-scaling speedups (predicted vs simulated)",
        "\n\n".join(render_scaling(c) for c in curves.values()),
    )


def test_compute_bound_scales(curves):
    sim = curves["lavaMD"].simulated_speedups()
    assert sim[4] > 1.6


def test_speedups_monotone(curves):
    for curve in curves.values():
        for speedups in (curve.predicted_speedups(),
                         curve.simulated_speedups()):
            assert speedups[4] > speedups[1]


def test_prediction_tracks_simulation(curves):
    for name, curve in curves.items():
        assert curve.max_speedup_error() < 0.3, name


def test_prediction_ranks_scalability_correctly(curves):
    """RPPM predicts *which* benchmark scales better — at this scale
    streamcluster does (its shared read-only table turns the shared
    LLC into positive interference), and the model must agree."""
    sim_rank = sorted(
        curves, key=lambda n: curves[n].simulated_speedups()[4]
    )
    pred_rank = sorted(
        curves, key=lambda n: curves[n].predicted_speedups()[4]
    )
    assert sim_rank == pred_rank


def test_bench_scaling_curve(benchmark):
    curve = benchmark.pedantic(
        run_scaling_curve,
        kwargs=dict(benchmark="lavaMD", thread_counts=(1, 4),
                    scale=0.3),
        rounds=2, iterations=1,
    )
    assert len(curve.points) == 2
