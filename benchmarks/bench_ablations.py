"""Ablation benches: what each RPPM mechanism buys (paper §I's three
reasons naive extensions fail).

Disables one mechanism at a time — coherence capture, the global
interleaved reuse distribution, the synchronization replay — and
measures the accuracy cost over a sharing/coherence/sync-sensitive
subset of the suite.
"""

import pytest

from repro.experiments.ablations import (
    render_ablations,
    run_ablations,
    strip_coherence,
    strip_global_reuse,
)
from repro.experiments.suites import BenchmarkRef

#: Benchmarks whose behaviour exercises the ablated mechanisms.
SENSITIVE = [
    BenchmarkRef("parsec", "canneal"),        # coherence traffic
    BenchmarkRef("parsec", "fluidanimate"),   # locks + shared rw
    BenchmarkRef("parsec", "streamcluster"),  # shared read + barriers
    BenchmarkRef("rodinia", "streamcluster"),  # shared read-only
    BenchmarkRef("parsec", "bodytrack"),      # condvars + queues
    BenchmarkRef("rodinia", "lud"),           # imbalanced barriers
]


@pytest.fixture(scope="module")
def ablations(run_cache, base_config):
    return run_ablations(SENSITIVE, config=base_config, cache=run_cache)


def test_report_ablations(ablations, report):
    report("Ablations: error with one mechanism disabled",
           render_ablations(ablations))


def test_full_model_is_best_on_average(ablations):
    full = ablations.average_abs_error("full")
    for name in ("no_global_reuse", "no_sync"):
        assert ablations.average_abs_error(name) >= full - 0.01, name


def test_sync_ablation_hurts_most(ablations):
    """Synchronization modeling is RPPM's core contribution."""
    assert ablations.degradation("no_sync") > 0.02


def test_ablated_profiles_do_not_mutate_original(run_cache,
                                                 base_config):
    ref = SENSITIVE[0]
    profile = run_cache.profile(ref)
    before = run_cache.prediction(ref, base_config).total_cycles
    strip_coherence(profile)
    strip_global_reuse(profile)
    from repro.core.rppm import predict
    after = predict(profile, base_config).total_cycles
    assert after == pytest.approx(before)


def test_bench_ablation_sweep(benchmark, run_cache, base_config):
    subset = SENSITIVE[:2]
    result = benchmark.pedantic(
        run_ablations,
        kwargs=dict(benchmarks=subset, config=base_config,
                    cache=run_cache),
        rounds=2, iterations=1,
    )
    assert len(result.rows) == 2
