"""Shared state for the benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables or
figures: the session-scoped cache below profiles and simulates each
benchmark exactly once, the ``report`` fixture prints the rendered
artifact at the end of the session (run with ``-s`` to see it), and
``pytest-benchmark`` measures the *prediction* side — the thing the
paper claims is rapid.
"""

from __future__ import annotations

import pytest

from repro.arch.presets import table_iv_config
from repro.experiments.suites import RunCache

_REPORTS = []


@pytest.fixture(scope="session")
def run_cache():
    return RunCache()


@pytest.fixture(scope="session")
def base_config():
    return table_iv_config("base")


@pytest.fixture(scope="session")
def report():
    """Collect rendered tables; printed at the end of the session."""
    def _add(title: str, text: str) -> None:
        _REPORTS.append((title, text))
    return _add


def pytest_sessionfinish(session, exitstatus):
    if not _REPORTS:
        return
    out = ["", "=" * 72, "PAPER ARTIFACT REPRODUCTIONS", "=" * 72]
    for title, text in _REPORTS:
        out.append(f"\n--- {title} ---")
        out.append(text)
    print("\n".join(out))
