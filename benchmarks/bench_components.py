"""Component throughput benches: profiler, simulator, predictor parts.

Not a paper artifact — these track the toolchain's own performance so
regressions in the hot paths (locality collection, the core
scoreboard, the tournament predictor, StatStack) are visible.
"""

import numpy as np
import pytest

from repro.branch.predictors import TournamentPredictor
from repro.core.equation import evaluate_equation
from repro.profiler.branchprof import branch_stats
from repro.profiler.histogram import RDHistogram
from repro.profiler.ilp import build_ilp_table
from repro.profiler.locality import LocalityCollector, PoolLocality
from repro.profiler.profiler import profile_workload
from repro.statstack.statstack import miss_rate
from repro.workloads.generator import expand
from repro.workloads.rodinia import rodinia_workload


@pytest.fixture(scope="module")
def trace():
    return expand(rodinia_workload("srad"))


def test_bench_expand(benchmark):
    spec = rodinia_workload("srad")
    trace = benchmark(expand, spec)
    assert trace.n_instructions > 0


def test_bench_profile(benchmark, trace):
    profile = benchmark.pedantic(
        profile_workload, args=(trace,), rounds=3, iterations=1
    )
    assert profile.n_instructions == trace.n_instructions


def test_bench_locality_collector(benchmark):
    rng = np.random.default_rng(0)
    addrs = rng.integers(0, 4096, size=50_000)
    stores = rng.random(50_000) < 0.2

    def run():
        collector = LocalityCollector(1)
        pool = PoolLocality()
        collector.process(0, addrs, stores, pool)
        return pool

    pool = benchmark(run)
    assert pool.n_accesses == 50_000


def test_bench_tournament_predictor(benchmark, base_config):
    rng = np.random.default_rng(0)
    pcs = rng.integers(0, 256, size=50_000) * 16
    taken = (rng.random(50_000) < 0.8).astype(np.uint8)

    def run():
        return TournamentPredictor(
            base_config.branch_predictor
        ).run(pcs, taken)

    miss = benchmark(run)
    assert 0.0 < miss.mean() < 0.5


def test_bench_branch_stats(benchmark):
    rng = np.random.default_rng(0)
    pcs = rng.integers(0, 64, size=40_000) * 16
    taken = (rng.random(40_000) < 0.85).astype(np.int64)
    stats = benchmark(branch_stats, [(pcs, taken)])
    assert stats.n_branches == 40_000


def test_bench_ilp_table(benchmark):
    rng = np.random.default_rng(0)
    samples = [
        (rng.integers(0, 6, size=512),
         np.minimum(rng.geometric(1 / 3.0, size=512),
                    np.arange(512)).astype(np.int32))
        for _ in range(6)
    ]
    table = benchmark(build_ilp_table, samples)
    assert table.lookup(128, 10) > 0


def test_bench_statstack_miss_rate(benchmark):
    rng = np.random.default_rng(0)
    h = RDHistogram(cold=100)
    h.add_many(rng.integers(0, 10**6, size=100_000))

    def run():
        return [miss_rate(h, c) for c in (512, 4096, 131072)]

    rates = benchmark(run)
    assert all(0 <= r <= 1 for r in rates)


def test_bench_equation(benchmark, run_cache, base_config):
    from repro.experiments.suites import BenchmarkRef
    profile = run_cache.profile(BenchmarkRef("rodinia", "cfd"))
    pool = max(profile.threads[1].pools.values(),
               key=lambda p: p.n_instructions)
    costs = benchmark(evaluate_equation, pool, base_config)
    assert costs.cpi_active > 0
