"""Table V: design-space exploration over the five Table IV points.

Regenerates the optimum-prediction experiment for the Rodinia suite:
profile once, predict all five equal-peak-throughput design points,
short-list within a bound, resolve by simulation, report deficiency
versus the exhaustively-simulated optimum.  The timed benchmark is the
whole five-point prediction sweep from one profile — the paper's
amortization argument.
"""

import pytest

from repro.arch.presets import design_space
from repro.core.rppm import predict
from repro.experiments.design_space import (
    BOUNDS,
    render_table5,
    run_table5,
)
from repro.experiments.suites import BenchmarkRef


@pytest.fixture(scope="module")
def table5(run_cache):
    return run_table5(cache=run_cache)


def test_report_table5(table5, report):
    report(
        "Table V: DSE deficiency/short-list (paper: avg 1.95% at "
        "bound 0 -> 0.12% at 5%)",
        render_table5(table5),
    )


def test_average_deficiency_small(table5):
    assert table5.average_deficiency(0.0) < 0.06


def test_deficiency_decreases_with_bound(table5):
    defs = [table5.average_deficiency(b) for b in BOUNDS]
    assert defs == sorted(defs, reverse=True)


def test_relaxed_bound_near_zero(table5):
    assert table5.average_deficiency(0.05) < 0.03


def test_majority_near_exact_at_bound_zero(table5):
    """Paper: 13/16 exact; our substrate yields 9/16 within 2%."""
    near = sum(
        1 for row in table5.rows if row.cells[0.0].deficiency < 0.02
    )
    assert near >= len(table5.rows) * 0.5


def test_worst_case_bounded(table5):
    """Paper's worst case: 19.1% (streamcluster)."""
    for row in table5.rows:
        assert row.cells[0.0].deficiency <= 0.20, row.benchmark


def test_shortlists_grow_with_bound(table5):
    for row in table5.rows:
        sizes = [row.cells[b].shortlist for b in BOUNDS]
        assert sizes == sorted(sizes)
        assert sizes[0] == 1


def test_bench_design_space_sweep(benchmark, run_cache):
    """Predict all five design points from one profile."""
    profile = run_cache.profile(BenchmarkRef("rodinia", "kmeans"))
    configs = design_space()

    def sweep():
        return [predict(profile, cfg).total_cycles for cfg in configs]

    cycles = benchmark(sweep)
    assert len(cycles) == 5
