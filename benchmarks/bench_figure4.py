"""Figure 4: prediction error of MAIN, CRIT and RPPM vs simulation.

Regenerates the paper's headline result over all 26 benchmarks
(Rodinia + Parsec) on the base quad-core machine and asserts its
shape: RPPM ~11% average error, clearly ahead of CRIT and MAIN.
The timed benchmarks contrast RPPM's prediction cost against
cycle-accounting simulation — the "rapid" in RPPM.
"""

import pytest

from repro.core.rppm import predict
from repro.experiments.accuracy import render_figure4, run_figure4
from repro.experiments.suites import BenchmarkRef
from repro.simulator.multicore import simulate


@pytest.fixture(scope="module")
def figure4(run_cache, base_config):
    return run_figure4(cache=run_cache, config=base_config)


def test_report_figure4(figure4, report):
    report(
        "Figure 4: prediction error (paper: MAIN 45%, CRIT 28%, "
        "RPPM 11.2% avg / 23% max)",
        render_figure4(figure4),
    )


def test_rppm_average_error(figure4):
    assert figure4.average_abs_error("RPPM") < 0.16


def test_rppm_beats_both_baselines(figure4):
    summary = figure4.summary()
    assert summary["RPPM"]["average"] < summary["CRIT"]["average"]
    assert summary["CRIT"]["average"] < summary["MAIN"]["average"]


def test_max_errors_ordered(figure4):
    summary = figure4.summary()
    assert summary["RPPM"]["max"] < summary["MAIN"]["max"]


def test_bench_rppm_prediction(benchmark, run_cache, base_config):
    """RPPM phase 1+2 from an existing profile (the per-config cost)."""
    ref = BenchmarkRef("rodinia", "srad")
    profile = run_cache.profile(ref)
    result = benchmark(predict, profile, base_config)
    assert result.total_cycles > 0


def test_bench_reference_simulation(benchmark, run_cache, base_config):
    """Golden-reference simulation of the same benchmark (the cost
    RPPM avoids at every new design point)."""
    ref = BenchmarkRef("rodinia", "srad")
    trace = run_cache.trace(ref)
    result = benchmark.pedantic(
        simulate, args=(trace, base_config), rounds=3, iterations=1
    )
    assert result.total_cycles > 0


def test_prediction_is_orders_of_magnitude_faster(run_cache,
                                                  base_config):
    """The paper's speed claim, asserted directly."""
    import time
    ref = BenchmarkRef("rodinia", "srad")
    profile = run_cache.profile(ref)
    trace = run_cache.trace(ref)
    t0 = time.perf_counter()
    predict(profile, base_config)
    t_pred = time.perf_counter() - t0
    t0 = time.perf_counter()
    simulate(trace, base_config)
    t_sim = time.perf_counter() - t0
    assert t_sim / t_pred > 3.0
