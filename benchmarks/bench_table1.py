"""Table I: accumulating prediction errors in barrier-synchronized apps.

Regenerates the paper's thread-count x error-bound grid and checks the
paper's constants; the benchmark measures the Monte Carlo replication.
"""

import pytest

from repro.experiments.accumulation import (
    expected_epoch_bias,
    render_table1,
    run_table1,
)


@pytest.fixture(scope="module")
def table1():
    return run_table1(iterations=100_000)


def test_report_table1(table1, report):
    report("Table I: accumulating errors (paper: 0.33/3.00/8.83...)",
           render_table1(table1))


def test_matches_paper_row_by_row(table1):
    paper = {
        (2, 0.01): 0.0033, (4, 0.01): 0.0060, (8, 0.01): 0.0078,
        (16, 0.01): 0.0088,
        (2, 0.05): 0.0167, (4, 0.05): 0.0300, (8, 0.05): 0.0389,
        (16, 0.05): 0.0441,
        (2, 0.10): 0.0334, (4, 0.10): 0.0601, (8, 0.10): 0.0779,
        (16, 0.10): 0.0883,
    }
    for (threads, bound), expected in paper.items():
        got = table1.cell(threads, bound).overall_error
        assert got == pytest.approx(expected, abs=0.003)


def test_closed_form_agrees(table1):
    for cell in table1.cells:
        assert cell.overall_error == pytest.approx(
            expected_epoch_bias(cell.threads, cell.bound), abs=0.004
        )


def test_bench_table1_monte_carlo(benchmark):
    result = benchmark(run_table1, iterations=20_000)
    assert result.cells
