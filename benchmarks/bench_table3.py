"""Table III: dynamic synchronization event counts of the Parsec suite.

Regenerates the critical-section / barrier / condition-variable counts
and checks that each benchmark's *dominant* synchronization category
matches the paper (absolute counts are scaled with the instruction
budget, see DESIGN.md).  The benchmark measures profiling, the step
that extracts the synchronization structure.
"""

import pytest

from repro.experiments.sync_counts import (
    paper_dominant,
    render_table3,
    run_table3,
)
from repro.profiler.profiler import profile_workload
from repro.workloads.parsec import parsec_workload


@pytest.fixture(scope="module")
def table3(run_cache):
    return run_table3(cache=run_cache)


def test_report_table3(table3, report):
    report("Table III: Parsec synchronization events", render_table3(table3))


def test_dominant_category_matches_paper(table3):
    for row in table3.rows:
        assert row.dominant() == paper_dominant(row.benchmark), (
            row.benchmark
        )


def test_fluidanimate_has_most_critical_sections(table3):
    cs = {r.benchmark: r.critical_sections for r in table3.rows}
    assert max(cs, key=cs.get) == "fluidanimate"


def test_streamcluster_has_most_barriers(table3):
    bars = {r.benchmark: r.barriers for r in table3.rows}
    assert max(bars, key=bars.get) == "streamcluster"


def test_bench_profile_sync_heavy_workload(benchmark):
    """Profiling cost on the most synchronization-dense benchmark."""
    spec = parsec_workload("fluidanimate")
    result = benchmark.pedantic(
        profile_workload, args=(spec,), rounds=3, iterations=1
    )
    assert result.sync_event_counts()["critical_sections"] > 0
