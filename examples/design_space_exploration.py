#!/usr/bin/env python
"""Design-space exploration with a single profile (paper §VI-A).

Profiles one benchmark once, then predicts all five Table IV design
points — 2-wide @ 5 GHz through 6-wide @ 1.66 GHz, all delivering the
same peak operations per second — and short-lists the (near-)optimal
designs for simulation to resolve, exactly the paper's Table V
methodology.

Run:  python examples/design_space_exploration.py [benchmark]
"""

import sys
import time

from repro import predict, profile_workload, simulate
from repro.arch.presets import design_space
from repro.workloads.engine import expand
from repro.workloads.rodinia import RODINIA, rodinia_workload


def main(benchmark: str = "kmeans") -> None:
    if benchmark not in RODINIA:
        raise SystemExit(
            f"unknown benchmark {benchmark!r}; pick one of "
            f"{', '.join(sorted(RODINIA))}"
        )
    spec = rodinia_workload(benchmark)
    trace = expand(spec)

    t0 = time.perf_counter()
    profile = profile_workload(trace)
    t_profile = time.perf_counter() - t0
    print(f"profiled {benchmark} once in {t_profile:.2f}s "
          f"({trace.n_instructions:,} micro-ops)\n")

    print(f"{'design':>10s} {'width':>5s} {'clock':>9s} "
          f"{'predicted':>12s} {'simulated':>12s} {'pred err':>9s}")
    rows = []
    for config in design_space():
        t0 = time.perf_counter()
        pred = predict(profile, config)
        t_pred = time.perf_counter() - t0
        sim = simulate(trace, config)
        pred_s = config.cycles_to_seconds(pred.total_cycles)
        sim_s = config.cycles_to_seconds(sim.total_cycles)
        rows.append((config.name, pred_s, sim_s, t_pred))
        print(f"{config.name:>10s} {config.core.dispatch_width:>5d} "
              f"{config.core.frequency_ghz:>7.2f}G "
              f"{pred_s * 1e6:>10.1f}us {sim_s * 1e6:>10.1f}us "
              f"{pred_s / sim_s - 1:>+9.1%}")

    predicted_best = min(rows, key=lambda r: r[1])
    simulated_best = min(rows, key=lambda r: r[2])
    print(f"\nRPPM's pick      : {predicted_best[0]}")
    print(f"true optimum     : {simulated_best[0]}")
    deficiency = (
        next(r[2] for r in rows if r[0] == predicted_best[0])
        / simulated_best[2] - 1.0
    )
    print(f"deficiency       : {deficiency:.2%} "
          f"(paper Table V: 1.95% average at bound 0)")

    # The paper's bound methodology: short-list within 5% of the
    # predicted optimum, then let simulation resolve the short-list.
    bound = 0.05
    shortlist = [r for r in rows if r[1] <= predicted_best[1] * (1 + bound)]
    resolved = min(shortlist, key=lambda r: r[2])
    print(f"\nwith a {bound:.0%} bound, simulation resolves "
          f"{len(shortlist)} candidate(s) -> {resolved[0]} "
          f"(deficiency {resolved[2] / simulated_best[2] - 1:.2%})")

    total_pred = sum(r[3] for r in rows)
    print(f"\nprediction swept 5 design points in {total_pred:.3f}s "
          f"from one {t_profile:.2f}s profile")


if __name__ == "__main__":
    main(*sys.argv[1:2])
