#!/usr/bin/env python
"""Building and analyzing a custom workload with the builder API.

Models a producer-consumer image pipeline: the main thread produces
work items through a condition-variable queue; three workers consume
them, each guarding a shared counter with a critical section.  The
example shows the full API surface a downstream user needs:
EpochSpec/MemPattern/BranchSpec, the WorkloadBuilder, profiling,
prediction, simulation, and CPI-stack / idle-time analysis.

Run:  python examples/custom_workload.py
"""

from repro import predict, profile_workload, simulate
from repro.arch.presets import table_iv_config
from repro.workloads import kernels as k
from repro.workloads.builder import WorkloadBuilder
from repro.workloads.engine import expand
from repro.workloads.spec import BranchSpec, EpochSpec


def build_pipeline(items_per_worker: int = 8) -> "WorkloadSpec":
    b = WorkloadBuilder("example.pipeline", n_threads=4, seed=2024)

    # The main thread decodes item headers: light integer work.
    produce = EpochSpec(
        n=300, mix=dict(k.INT_CONTROL),
        mem=(k.working_set(256, hot_lines=256, hot_frac=1.0, region=9),),
        branch=k.BR_MEDIUM, code_lines=24, code_region=9,
    )
    # Workers filter an image tile: FP streaming with easy branches.
    consume = EpochSpec(
        n=6_000, mix=dict(k.FP_COMPUTE),
        mem=(k.stream(12_000, region=0, reuse=10),
             k.shared_read(2_000, region=1, weight=0.4)),
        branch=BranchSpec(kind="loop", period=16), mean_dep=4.0,
        code_lines=96, code_region=1,
    )
    # A tiny critical section updates shared progress counters.
    update = EpochSpec(
        n=60, mix=dict(k.GENERIC),
        mem=(k.shared_rw(16, region=2, hot_frac=1.0),),
        branch=k.BR_BIASED, code_lines=8, code_region=2,
    )

    b.spawn_workers(EpochSpec(
        n=2_000, mix=dict(k.GENERIC),
        mem=(k.stream(2_000, region=8, reuse=10),),
        code_lines=32, code_region=8,
    ))
    queue = b.new_id()
    n_items = items_per_worker * len(b.workers)
    for i in range(n_items):
        b.produce(b.main, produce, queue, label=f"item{i}")
    for tid in b.workers:
        for i in range(items_per_worker):
            b.consume(tid, None if i == 0 else consume, queue)
            b.critical_loop([tid], 1, consume.scaled(0.02), update,
                            label="progress")
        b.compute(tid, consume, label="drain")
    return b.join_all()


def main() -> None:
    spec = build_pipeline()
    trace = expand(spec)
    print(f"built {trace.name}: {trace.n_instructions:,} micro-ops, "
          f"{trace.n_threads} threads")

    profile = profile_workload(trace)
    counts = profile.sync_event_counts()
    print(f"synchronization: {counts['critical_sections']} critical "
          f"sections, {counts['condition_variables']} condvar events")

    config = table_iv_config("base")
    pred = predict(profile, config)
    sim = simulate(trace, config)
    print(f"\npredicted: {pred.total_cycles:,.0f} cycles  "
          f"simulated: {sim.total_cycles:,.0f} cycles  "
          f"error {pred.total_cycles / sim.total_cycles - 1:+.1%}")

    print("\nper-thread breakdown (predicted):")
    for t in pred.threads:
        idle_causes = pred.timeline.idle_by_cause(t.thread_id)
        causes = ", ".join(
            f"{cause} {cycles:,.0f}" for cause, cycles in
            sorted(idle_causes.items())
        ) or "none"
        print(f"  thread {t.thread_id}: active {t.active_cycles:,.0f}, "
              f"idle by cause: {causes}")

    stack = pred.average_stack()
    print("\naverage CPI stack:",
          {name: round(v, 3) for name, v in stack.cpi().items()})
    print("consumer threads wait on the producer early on; the "
          "critical section stays uncontended — exactly what the "
          "idle-by-cause breakdown shows.")


if __name__ == "__main__":
    main()
