#!/usr/bin/env python
"""Bottlegraph analysis of parallel (im)balance (paper §VI-B, Fig. 6).

Builds bottlegraphs — per-thread criticality (height) x parallelism
(width) boxes — for three Parsec benchmarks with very different
balance personalities, from both the RPPM prediction and the reference
simulation, and renders them side by side as ASCII art.

Run:  python examples/bottlegraph_analysis.py
"""

from repro import bottlegraph_from_timeline, predict, profile_workload, simulate
from repro.arch.presets import table_iv_config
from repro.experiments.bottlegraphs import render_bottlegraph
from repro.workloads.engine import expand
from repro.workloads.parsec import BALANCE_CLASS, parsec_workload

#: One representative per Figure 6 balance group.
BENCHMARKS = ("swaptions", "freqmine", "streamcluster")


def main() -> None:
    config = table_iv_config("base")
    for name in BENCHMARKS:
        trace = expand(parsec_workload(name))
        profile = profile_workload(trace)
        pred_graph = bottlegraph_from_timeline(
            predict(profile, config).timeline
        )
        sim_graph = bottlegraph_from_timeline(
            simulate(trace, config).timeline
        )
        print("=" * 64)
        print(f"{name}  (paper class: {BALANCE_CLASS[name]})")
        print(render_bottlegraph(pred_graph, "RPPM prediction"))
        print(render_bottlegraph(sim_graph, "simulation"))
        bottleneck = sim_graph.bottleneck_thread()
        share = sim_graph.normalized_heights()[bottleneck]
        print(f"bottleneck: thread {bottleneck} "
              f"({share:.0%} of execution time)")
        if bottleneck == 0 and share > 0.3:
            print("-> the main thread limits scalability "
                  "(sequential work dominates)")
        elif max(sim_graph.widths[1:]) < config.cores - 0.5:
            print("-> worker parallelism is capped below the core "
                  "count (main thread only coordinates)")
        else:
            print("-> well balanced: all threads run concurrently")
    print("=" * 64)


if __name__ == "__main__":
    main()
