#!/usr/bin/env python
"""Quickstart: profile once, predict anywhere.

The RPPM workflow in four steps (paper Fig. 1):

1. Pick a multithreaded workload (here: Rodinia's hotspot stencil).
2. Profile it once — the profile contains only microarchitecture-
   independent statistics.
3. Predict execution time on any multicore configuration.
4. (Optional) validate against the cycle-accounting reference
   simulator.

Run:  python examples/quickstart.py
"""

from repro import predict, profile_workload, simulate
from repro.arch.presets import table_iv_config
from repro.workloads.engine import expand
from repro.workloads.rodinia import rodinia_workload


def main() -> None:
    # 1. A four-thread OpenMP-style stencil benchmark.
    spec = rodinia_workload("hotspot", threads=4)
    trace = expand(spec)
    print(f"workload: {trace.name}")
    print(f"  threads: {trace.n_threads}")
    print(f"  dynamic micro-ops: {trace.n_instructions:,}")

    # 2. Profile once (the only expensive step; reusable forever).
    profile = profile_workload(trace)
    counts = profile.sync_event_counts()
    print(f"  barriers profiled: {counts['barriers']}")

    # 3. Predict on the paper's base quad-core machine...
    base = table_iv_config("base")
    prediction = predict(profile, base)
    seconds = base.cycles_to_seconds(prediction.total_cycles)
    print(f"\nRPPM prediction on '{base.name}':")
    print(f"  execution time: {prediction.total_cycles:,.0f} cycles "
          f"({seconds * 1e6:.1f} us at {base.core.frequency_ghz} GHz)")
    for t in prediction.threads:
        print(f"  thread {t.thread_id}: active {t.active_cycles:,.0f}  "
              f"idle {t.idle_cycles:,.0f} cycles")

    # ... and per-thread CPI stacks (the paper's Figure 5 currency).
    stack = prediction.average_stack()
    print("  average CPI stack:",
          {k: round(v, 3) for k, v in stack.cpi().items()})

    # 4. Validate against the golden-reference simulator.
    golden = simulate(trace, base)
    error = prediction.total_cycles / golden.total_cycles - 1.0
    print(f"\nreference simulation: {golden.total_cycles:,.0f} cycles")
    print(f"prediction error: {error:+.1%}  "
          f"(paper reports 11.2% average across the suite)")


if __name__ == "__main__":
    main()
