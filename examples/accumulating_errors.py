#!/usr/bin/env python
"""Why multithreaded prediction is hard: accumulating errors (§II-A).

Reproduces Table I two ways:

1. the paper's statistical micro-experiment — an unbiased per-epoch
   predictor still over-estimates barrier-synchronized execution,
   because each epoch's time is the *maximum* over threads;
2. an end-to-end demonstration on the concrete barrier-loop
   micro-benchmark, comparing a deliberately noisy epoch predictor
   against the reference simulation through the real Algorithm-2
   replay.

Run:  python examples/accumulating_errors.py
"""

import numpy as np

from repro.arch.presets import table_iv_config
from repro.experiments.accumulation import (
    expected_epoch_bias,
    render_table1,
    run_table1,
)
from repro.runtime.scheduler import run_schedule
from repro.simulator.multicore import simulate
from repro.workloads.engine import expand
from repro.workloads.microbench import barrier_loop_workload


def statistical_table() -> None:
    print("Table I (Monte Carlo, matches the paper's constants):\n")
    print(render_table1(run_table1(iterations=100_000)))
    print("\nclosed form: bias = bound * (n-1)/(n+1); e.g. "
          f"16 threads @ 10% -> {expected_epoch_bias(16, 0.10):.2%}")


def end_to_end_demo(threads: int = 4, noise: float = 0.10) -> None:
    """Noisy-but-unbiased epoch times through the real sync replay.

    The ground truth is the noise-free replay of the same per-epoch
    durations: comparing noisy vs noise-free isolates exactly the
    accumulation effect (no other modeling error involved).
    """
    config = table_iv_config("base")
    trace = expand(barrier_loop_workload(threads=threads,
                                         iterations=60))
    golden = simulate(trace, config)

    # Per-epoch durations apportioned from the simulation's average
    # thread (the micro-benchmark's iterations all do the same work;
    # using the average isolates the accumulation effect from the
    # simulator's own small per-thread spread).
    avg_active = float(np.mean(
        [t.active_cycles for t in golden.threads]
    ))
    avg_instrs = float(np.mean(
        [t.n_instructions for t in trace.threads]
    ))

    def exact(tid, idx, start):
        block = trace.threads[tid].segments[idx].block
        return avg_active * block.n_instructions / max(1.0, avg_instrs)

    rng = np.random.default_rng(42)
    programs = [
        [seg.event for seg in t.segments] for t in trace.threads
    ]

    def noisy(tid, idx, start):
        return exact(tid, idx, start) * (
            1.0 + noise * rng.uniform(-1.0, 1.0)
        )

    baseline = run_schedule(programs, exact)
    predicted = run_schedule(programs, noisy)
    err = predicted.end_time / baseline.end_time - 1.0
    bias = expected_epoch_bias(threads, noise)
    print(f"\nend-to-end: {threads} threads, +/-{noise:.0%} unbiased "
          f"epoch noise through the Algorithm-2 replay")
    print(f"  overall prediction error: {err:+.2%} "
          f"(statistical expectation ~{bias:+.2%})")
    print("  -> per-epoch errors do NOT average out under barriers; "
          "accurate epoch prediction is essential (the paper's core "
          "motivation for RPPM).")


def main() -> None:
    statistical_table()
    end_to_end_demo()


if __name__ == "__main__":
    main()
