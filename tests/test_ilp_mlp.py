"""Unit tests for the ILP scoreboard profiling and the MLP model."""

import numpy as np
import pytest

from repro.mlp.model import predict_mlp, predict_mlp_for_core
from repro.arch.config import CoreConfig
from repro.profiler.ilp import (
    CANONICAL_LAT,
    LOAD_LAT_GRID,
    WINDOW_GRID,
    build_ilp_table,
    hierarchy_ilp,
    load_parallelism,
    scoreboard_replay,
)
from repro.profiler.profile import ILPTable
from repro.workloads.ir import OP_BRANCH, OP_LOAD


def chain(n, dist=1, op=0):
    """n ops, each depending on the op `dist` before it."""
    ops = [op] * n
    deps = [0] * min(dist, n) + [dist] * max(n - dist, 0)
    return ops, deps


class TestScoreboardReplay:
    def test_empty(self):
        assert scoreboard_replay([], [], 64, 2) == (1.0, 0.0)

    def test_serial_chain_ilp_is_inverse_latency(self):
        ops, deps = chain(512, dist=1)
        ilp, _ = scoreboard_replay(ops, deps, 128, 2)
        # ialu latency 1, fully serial -> ILP 1.
        assert ilp == pytest.approx(1.0, rel=0.01)

    def test_independent_ops_limited_by_window(self):
        ops = [0] * 512
        deps = [0] * 512
        ilp, _ = scoreboard_replay(ops, deps, 64, 2)
        # All independent: the window turns over once per cycle-latency.
        assert ilp > 32

    def test_load_latency_slows_load_chains(self):
        ops, deps = chain(512, dist=1, op=OP_LOAD)
        fast, _ = scoreboard_replay(ops, deps, 128, 2)
        slow, _ = scoreboard_replay(ops, deps, 128, 30)
        assert fast / slow == pytest.approx(15.0, rel=0.1)

    def test_bigger_window_never_hurts(self):
        rng = np.random.default_rng(7)
        ops = rng.integers(0, 6, size=512).tolist()
        deps = np.minimum(
            rng.geometric(1 / 4.0, size=512), np.arange(512)
        ).tolist()
        ilps = [
            scoreboard_replay(ops, deps, w, 10)[0]
            for w in (16, 64, 256)
        ]
        assert ilps[0] <= ilps[1] + 1e-9 <= ilps[2] + 2e-9

    def test_per_op_latency_array(self):
        ops, deps = chain(100, dist=1, op=OP_LOAD)
        lats = [5.0] * 100
        uniform, _ = scoreboard_replay(ops, deps, 64, 5)
        per_op, _ = scoreboard_replay(ops, deps, 64, lats)
        assert per_op == pytest.approx(uniform)

    def test_branch_slice_loads_counted(self):
        # load -> branch directly dependent: slice has one load.
        ops = [OP_LOAD, OP_BRANCH]
        deps = [0, 1]
        _, loads = scoreboard_replay(ops, deps, 64, 2)
        assert loads == 1.0

    def test_branch_with_no_load_dep(self):
        ops = [0, OP_BRANCH]
        deps = [0, 1]
        _, loads = scoreboard_replay(ops, deps, 64, 2)
        assert loads == 0.0

    def test_transitive_load_chain_counts(self):
        ops = [OP_LOAD, 0, OP_BRANCH]
        deps = [0, 1, 1]
        _, loads = scoreboard_replay(ops, deps, 64, 2)
        assert loads == 1.0


class TestLoadParallelism:
    def test_no_loads(self):
        assert load_parallelism([0] * 64, [0] * 64, 32) == 1.0

    def test_independent_loads_parallel(self):
        ops = [OP_LOAD] * 64
        deps = [0] * 64
        lp = load_parallelism(ops, deps, 64)
        assert lp == pytest.approx(64.0)

    def test_chained_loads_serial(self):
        ops, deps = chain(64, dist=1, op=OP_LOAD)
        lp = load_parallelism(ops, deps, 64)
        assert lp == pytest.approx(1.0)

    def test_result_at_least_one(self):
        ops, deps = chain(8, dist=1, op=OP_LOAD)
        assert load_parallelism(ops, deps, 4) >= 1.0


class TestILPTable:
    def _table(self):
        rng = np.random.default_rng(3)
        ops = rng.integers(0, 6, size=512)
        deps = np.minimum(
            rng.geometric(1 / 3.0, size=512), np.arange(512)
        ).astype(np.int32)
        return build_ilp_table([(ops, deps)])

    def test_shape(self):
        t = self._table()
        assert t.ilp.shape == (len(WINDOW_GRID), len(LOAD_LAT_GRID))
        assert t.branch_loads.shape == (len(WINDOW_GRID),)
        assert t.load_par.shape == (len(WINDOW_GRID),)

    def test_grid_monotone_in_latency(self):
        t = self._table()
        for wi in range(len(WINDOW_GRID)):
            row = t.ilp[wi]
            assert (np.diff(row) <= 1e-9).all()

    def test_lookup_at_grid_points(self):
        t = self._table()
        for wi, w in enumerate(WINDOW_GRID):
            for li, lat in enumerate(LOAD_LAT_GRID):
                assert t.lookup(w, lat) == pytest.approx(t.ilp[wi, li])

    def test_lookup_interpolates_between(self):
        t = self._table()
        lo = t.lookup(128, 10)
        hi = t.lookup(128, 30)
        mid = t.lookup(128, 20)
        assert min(lo, hi) - 1e-9 <= mid <= max(lo, hi) + 1e-9

    def test_lookup_clamps_out_of_range(self):
        t = self._table()
        assert t.lookup(4, 1) == pytest.approx(
            t.lookup(WINDOW_GRID[0], LOAD_LAT_GRID[0])
        )
        assert t.lookup(10**6, 10**6) == pytest.approx(
            t.lookup(WINDOW_GRID[-1], LOAD_LAT_GRID[-1])
        )

    def test_empty_samples_conservative(self):
        t = build_ilp_table([])
        assert t.lookup(128, 10) == 1.0
        assert t.lookup_branch_loads(128) == 0.0

    def test_serialization_round_trip(self):
        t = self._table()
        t2 = ILPTable.from_dict(t.to_dict())
        assert np.allclose(t.ilp, t2.ilp)
        assert np.allclose(t.branch_loads, t2.branch_loads)
        assert np.allclose(t.load_par, t2.load_par)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            ILPTable(windows=(16, 32), load_lats=(2,),
                     ilp=np.ones((1, 1)))

    def test_positive_ilp_required(self):
        with pytest.raises(ValueError, match="positive"):
            ILPTable(windows=(16,), load_lats=(2,),
                     ilp=np.zeros((1, 1)))


class TestHierarchyILP:
    def _samples(self):
        rng = np.random.default_rng(3)
        ops = rng.integers(0, 6, size=512)
        deps = np.minimum(
            rng.geometric(1 / 3.0, size=512), np.arange(512)
        ).astype(np.int32)
        return [(ops, deps)]

    def test_no_samples(self):
        assert hierarchy_ilp([], 128, (0, 0, 0), (3, 10, 30), 200) == 1.0

    def test_all_hits_matches_uniform_l1(self):
        samples = self._samples()
        h = hierarchy_ilp(samples, 128, (0.0, 0.0, 0.0), (3, 10, 30), 0.0)
        op, dep = samples[0]
        uniform, _ = scoreboard_replay(op.tolist(), dep.tolist(), 128, 3)
        assert h == pytest.approx(uniform, rel=1e-6)

    def test_misses_slow_it_down(self):
        samples = self._samples()
        hit = hierarchy_ilp(samples, 128, (0.1, 0.0, 0.0), (3, 10, 30),
                            0.0)
        missy = hierarchy_ilp(samples, 128, (0.5, 0.3, 0.2), (3, 10, 30),
                              200.0)
        assert missy < hit

    def test_deterministic(self):
        samples = self._samples()
        a = hierarchy_ilp(samples, 128, (0.3, 0.1, 0.05), (3, 10, 30), 200)
        b = hierarchy_ilp(samples, 128, (0.3, 0.1, 0.05), (3, 10, 30), 200)
        assert a == b


class TestMLPModel:
    def test_at_least_one(self):
        assert predict_mlp(128, 16, 0.0, 0.0, 1.0) == 1.0

    def test_mshr_cap(self):
        assert predict_mlp(10_000, 8, 1.0, 1.0, 1000.0) == 8.0

    def test_dependence_ceiling(self):
        assert predict_mlp(10_000, 64, 1.0, 1.0, 3.0) == 3.0

    def test_candidate_limit(self):
        # Window of 100 with 10% loads and 20% missing: 2 candidates.
        assert predict_mlp(100, 64, 0.1, 0.2, 100.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_mlp(0, 16, 0.1, 0.1, 1.0)
        with pytest.raises(ValueError):
            predict_mlp(128, 0, 0.1, 0.1, 1.0)
        with pytest.raises(ValueError):
            predict_mlp(128, 16, -0.1, 0.1, 1.0)
        with pytest.raises(ValueError):
            predict_mlp(128, 16, 0.1, 0.1, 0.5)

    def test_core_wrapper(self):
        core = CoreConfig()
        direct = predict_mlp(core.rob_size, core.mshr_entries, 0.3, 0.5,
                             8.0)
        assert predict_mlp_for_core(core, 0.3, 0.5, 8.0) == direct

    def test_canonical_latencies_sane(self):
        # ialu 1, imul 3, fp 4 as documented; load is the grid axis.
        assert CANONICAL_LAT[0] == 1
        assert CANONICAL_LAT[1] == 3
        assert CANONICAL_LAT[2] == 4
