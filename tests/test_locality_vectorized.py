"""Equivalence suite: vectorized locality engines vs scalar reference.

Three implementations must agree *bit-for-bit* on every statistic
(histogram bins, cold, invalidation and access counts):

* the scalar per-access reference (``repro.profiler.reference``, the
  preserved seed implementation),
* the vectorized per-chunk collectors (``repro.profiler.locality``),
* the whole-trace batch engine (``repro.profiler.batch``).

Randomized multi-thread interleavings cover stores, coherence
invalidations, cold misses, sparse (2^55-range) addresses and
chunk-boundary reuses; hypothesis shrinks any counterexample to a
minimal interleaving.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiler.batch import replay_data, replay_fetch
from repro.profiler.histogram import RDHistogram
from repro.profiler.locality import (
    FetchLocality,
    LocalityCollector,
    PoolLocality,
)
from repro.profiler.reference import (
    ScalarFetchLocality,
    ScalarLocalityCollector,
)


def pools_equal(a: PoolLocality, b: PoolLocality) -> bool:
    return (
        np.array_equal(a.priv_counts, b.priv_counts)
        and np.array_equal(a.glob_counts, b.glob_counts)
        and a.priv_cold == b.priv_cold
        and a.priv_inval == b.priv_inval
        and a.glob_cold == b.glob_cold
        and a.n_accesses == b.n_accesses
        and a.n_stores == b.n_stores
    )


def run_all_engines(chunks, n_threads, n_pools):
    """Feed the same chunk schedule to all three implementations."""
    ref = ScalarLocalityCollector(n_threads)
    ref_pools = [PoolLocality() for _ in range(n_pools)]
    for tid, pidx, addrs, stores in chunks:
        ref.process(tid, addrs, stores, ref_pools[pidx])

    vec = LocalityCollector(n_threads)
    vec_pools = [PoolLocality() for _ in range(n_pools)]
    for tid, pidx, addrs, stores in chunks:
        vec.process(tid, addrs, stores, vec_pools[pidx])

    batch_pools = [PoolLocality() for _ in range(n_pools)]
    replay_data(chunks, n_threads, batch_pools)
    return ref_pools, vec_pools, batch_pools


# -- hypothesis: minimal shrinking interleavings ---------------------------

chunk_strategy = st.tuples(
    st.integers(min_value=0, max_value=2),           # tid
    st.lists(                                        # (line, store) ops
        st.tuples(
            st.integers(min_value=0, max_value=6),
            st.booleans(),
        ),
        min_size=1, max_size=12,
    ),
)


@settings(max_examples=120, deadline=None)
@given(st.lists(chunk_strategy, min_size=1, max_size=12))
def test_engines_match_reference_on_shrinkable_interleavings(raw):
    n_threads = 3
    chunks = [
        (
            tid,
            tid,
            np.array([line for line, _ in ops], dtype=np.int64),
            np.array([s for _, s in ops], dtype=bool),
        )
        for tid, ops in raw
    ]
    ref_pools, vec_pools, batch_pools = run_all_engines(
        chunks, n_threads, n_threads
    )
    for r, v, b in zip(ref_pools, vec_pools, batch_pools):
        assert pools_equal(v, r)
        assert pools_equal(b, r)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=1, max_size=15,
        ),
        min_size=1, max_size=8,
    )
)
def test_fetch_engines_match_reference(raw):
    streams = [np.array(lines, dtype=np.int64) for lines in raw]

    ref = ScalarFetchLocality()
    ref_hist = RDHistogram()
    vec = FetchLocality()
    vec_hist = RDHistogram()
    for lines in streams:
        assert vec.process(lines, vec_hist) == ref.process(
            lines, ref_hist
        )
    batch_hist = RDHistogram()
    replay_fetch([(0, lines) for lines in streams], [batch_hist])

    assert vec_hist == ref_hist
    assert batch_hist == ref_hist


# -- seeded heavy randomized interleavings ---------------------------------

def random_schedule(rng, n_threads, n_chunks, max_len, n_pools):
    """Hot set + mid set + sparse 2^55 lines, random store density."""
    chunks = []
    for _ in range(n_chunks):
        tid = int(rng.integers(0, n_threads))
        k = int(rng.integers(1, max_len))
        mix = rng.random(k)
        addrs = np.where(
            mix < 0.6, rng.integers(0, 40, size=k),
            np.where(
                mix < 0.92, rng.integers(0, 800, size=k),
                rng.integers(0, 2**55, size=k),
            ),
        ).astype(np.int64)
        stores = rng.random(k) < float(rng.random())
        chunks.append((tid, int(rng.integers(0, n_pools)), addrs, stores))
    return chunks


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_engines_match_on_heavy_interleavings(seed):
    rng = np.random.default_rng(seed)
    n_threads = int(rng.integers(1, 6))
    n_pools = n_threads * int(rng.integers(1, 3))
    chunks = random_schedule(rng, n_threads, 60, 600, n_pools)
    ref_pools, vec_pools, batch_pools = run_all_engines(
        chunks, n_threads, n_pools
    )
    assert sum(p.n_accesses for p in ref_pools) > 0
    for r, v, b in zip(ref_pools, vec_pools, batch_pools):
        assert pools_equal(v, r)
        assert pools_equal(b, r)


def test_invalidations_are_exercised_and_match():
    """Store-heavy tiny hot set: thousands of coherence invalidations."""
    rng = np.random.default_rng(42)
    n_threads = 4
    chunks = []
    for _ in range(50):
        tid = int(rng.integers(0, n_threads))
        k = int(rng.integers(1, 200))
        addrs = rng.integers(0, 8, size=k).astype(np.int64)
        stores = rng.random(k) < 0.5
        chunks.append((tid, tid, addrs, stores))
    ref_pools, vec_pools, batch_pools = run_all_engines(
        chunks, n_threads, n_threads
    )
    assert sum(p.priv_inval for p in ref_pools) > 100
    for r, v, b in zip(ref_pools, vec_pools, batch_pools):
        assert pools_equal(v, r)
        assert pools_equal(b, r)


def test_chunk_split_invariance():
    """The same stream split at different chunk boundaries yields the
    same statistics — the cross-chunk carry-over invariant."""
    rng = np.random.default_rng(7)
    addrs = rng.integers(0, 64, size=3000).astype(np.int64)
    stores = rng.random(3000) < 0.3

    def run(split):
        c = LocalityCollector(1)
        pool = PoolLocality()
        for lo in range(0, 3000, split):
            c.process(0, addrs[lo:lo + split], stores[lo:lo + split], pool)
        return pool

    ref = run(3000)
    for split in (1, 7, 64, 1024):
        assert pools_equal(run(split), ref)


def test_fetch_chunk_split_invariance():
    rng = np.random.default_rng(8)
    lines = rng.integers(0, 50, size=2000).astype(np.int64)

    def run(split):
        f = FetchLocality()
        h = RDHistogram()
        n = 0
        for lo in range(0, 2000, split):
            n += f.process(lines[lo:lo + split], h)
        assert n == 2000
        return h

    ref = run(2000)
    for split in (1, 13, 256):
        assert run(split) == ref


# -- end-to-end: the full profiler on real benchmarks ----------------------

def test_profile_workload_matches_scalar_collectors(monkeypatch):
    """profile_workload (batch engine) equals a scalar-collector replay
    of the identical chunk schedule, on real multi-threaded workloads."""
    from repro.profiler import profiler as profiler_mod
    from repro.profiler.profiler import profile_workload
    from repro.workloads.generator import expand
    from repro.workloads.parsec import parsec_workload
    from repro.workloads.rodinia import rodinia_workload

    def scalar_replay_data(chunks, n_threads, pools):
        collector = ScalarLocalityCollector(n_threads)
        for tid, pidx, addrs, stores in chunks:
            collector.process(tid, addrs, stores, pools[pidx])

    def scalar_replay_fetch(chunks, hists):
        fetcher = ScalarFetchLocality()
        for pidx, lines in chunks:
            fetcher.process(lines, hists[pidx])

    for make, name in (
        (rodinia_workload, "srad"),
        (parsec_workload, "fluidanimate"),
    ):
        trace = expand(make(name, scale=0.3))
        fast = profile_workload(trace)
        monkeypatch.setattr(
            profiler_mod, "replay_data", scalar_replay_data
        )
        monkeypatch.setattr(
            profiler_mod, "replay_fetch", scalar_replay_fetch
        )
        slow = profile_workload(trace)
        monkeypatch.undo()
        assert fast.to_dict() == slow.to_dict()
