"""Unit tests for the architecture configuration data model."""

import pytest

from repro.arch.config import (
    LINE_SIZE,
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
)
from repro.arch.presets import TABLE_IV, design_space, table_iv_config


class TestCacheConfig:
    def test_lines_is_capacity_over_line_size(self):
        cache = CacheConfig(size_bytes=32 * 1024, associativity=4, latency=3)
        assert cache.lines == 32 * 1024 // LINE_SIZE

    def test_sets_is_lines_over_ways(self):
        cache = CacheConfig(size_bytes=32 * 1024, associativity=4, latency=3)
        assert cache.sets == cache.lines // 4

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0, associativity=1, latency=1)

    def test_rejects_non_positive_associativity(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, associativity=0, latency=1)

    def test_rejects_fractional_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3, latency=1)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, associativity=1, latency=-1)

    def test_shared_flag_defaults_private(self):
        cache = CacheConfig(size_bytes=1024, associativity=1, latency=1)
        assert not cache.shared


class TestBranchPredictorConfig:
    def test_entries_are_a_power_of_two(self):
        cfg = BranchPredictorConfig(size_bytes=4096)
        entries = cfg.entries_per_table
        assert entries & (entries - 1) == 0

    def test_entries_fit_the_budget(self):
        cfg = BranchPredictorConfig(size_bytes=4096)
        total_bits = 3 * cfg.entries_per_table * cfg.counter_bits
        assert total_bits <= 4096 * 8

    def test_bigger_budget_never_shrinks_tables(self):
        small = BranchPredictorConfig(size_bytes=1024).entries_per_table
        big = BranchPredictorConfig(size_bytes=8192).entries_per_table
        assert big > small

    def test_rejects_bad_counter_bits(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(counter_bits=0)
        with pytest.raises(ValueError):
            BranchPredictorConfig(counter_bits=5)

    def test_rejects_bad_history(self):
        with pytest.raises(ValueError):
            BranchPredictorConfig(history_bits=0)
        with pytest.raises(ValueError):
            BranchPredictorConfig(history_bits=25)


class TestCoreConfig:
    def test_default_is_valid(self):
        core = CoreConfig()
        assert core.dispatch_width == 4
        assert core.rob_size >= core.dispatch_width

    def test_rejects_rob_smaller_than_width(self):
        with pytest.raises(ValueError):
            CoreConfig(dispatch_width=8, rob_size=4)

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ValueError):
            CoreConfig(frequency_ghz=0.0)

    def test_rejects_non_positive_mshrs(self):
        with pytest.raises(ValueError):
            CoreConfig(mshr_entries=0)

    def test_hashable(self):
        assert hash(CoreConfig()) == hash(CoreConfig())

    def test_distinct_configs_hash_differently(self):
        assert hash(CoreConfig(rob_size=128)) != hash(
            CoreConfig(rob_size=256)
        )


class TestTableIVPresets:
    def test_five_design_points(self):
        assert len(TABLE_IV) == 5
        assert TABLE_IV == [
            "smallest", "small", "base", "big", "biggest",
        ]

    @pytest.mark.parametrize("point", TABLE_IV)
    def test_point_builds(self, point):
        cfg = table_iv_config(point)
        assert cfg.name == point
        assert cfg.cores == 4

    def test_unknown_point_raises(self):
        with pytest.raises(ValueError, match="unknown design point"):
            table_iv_config("huge")

    def test_constant_peak_throughput(self):
        """All five points deliver ~10 G ops/s (paper §VI-A)."""
        for cfg in design_space():
            peak = cfg.core.dispatch_width * cfg.core.frequency_ghz
            assert peak == pytest.approx(10.0, rel=0.01)

    def test_resources_scale_with_width(self):
        widths = [c.core.dispatch_width for c in design_space()]
        robs = [c.core.rob_size for c in design_space()]
        iqs = [c.core.issue_queue_size for c in design_space()]
        assert widths == sorted(widths)
        assert robs == sorted(robs)
        assert iqs == sorted(iqs)

    def test_paper_rob_sizes(self):
        robs = [c.core.rob_size for c in design_space()]
        assert robs == [32, 72, 128, 200, 288]

    def test_cache_hierarchy_identical_across_points(self):
        caches = [
            (c.l1i, c.l1d, c.l2, c.llc) for c in design_space()
        ]
        assert all(c == caches[0] for c in caches)

    def test_llc_is_shared_others_private(self):
        cfg = table_iv_config("base")
        assert cfg.llc.shared
        assert not cfg.l1d.shared
        assert not cfg.l2.shared

    def test_paper_cache_sizes(self):
        cfg = table_iv_config("base")
        assert cfg.l1i.size_bytes == 32 * 1024
        assert cfg.l1d.size_bytes == 32 * 1024
        assert cfg.l2.size_bytes == 256 * 1024
        assert cfg.llc.size_bytes == 8 * 1024 * 1024

    def test_memory_latency_in_cycles_scales_with_clock(self):
        fast = table_iv_config("smallest")   # 5 GHz
        slow = table_iv_config("biggest")    # 1.66 GHz
        assert (
            fast.memory_latency_cycles() > slow.memory_latency_cycles()
        )

    def test_cycles_to_seconds(self):
        cfg = table_iv_config("base")  # 2.5 GHz
        assert cfg.cycles_to_seconds(2.5e9) == pytest.approx(1.0)

    def test_core_count_override(self):
        cfg = table_iv_config("base", cores=8)
        assert cfg.cores == 8
