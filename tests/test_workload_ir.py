"""Unit tests for the abstract-instruction IR."""

import numpy as np
import pytest

from repro.workloads.ir import (
    OP_BRANCH,
    OP_CLASSES,
    OP_CODES,
    OP_LOAD,
    OP_STORE,
    PC_SLOTS_PER_LINE,
    Segment,
    SyncKind,
    SyncOp,
    ThreadTrace,
    TraceBlock,
    WorkloadTrace,
    fetch_lines,
    instruction_pcs,
)


def block_of(op, dep=None, addr=None, taken=None, iline=None):
    n = len(op)
    return TraceBlock(
        op=np.asarray(op, dtype=np.uint8),
        dep=np.asarray(dep if dep is not None else [0] * n, dtype=np.int32),
        addr=np.asarray(addr if addr is not None else [-1] * n,
                        dtype=np.int64),
        taken=np.asarray(taken if taken is not None else [0] * n,
                         dtype=np.uint8),
        iline=np.asarray(iline if iline is not None else [0] * n,
                         dtype=np.int64),
    )


class TestSyncOp:
    def test_barrier_requires_participants(self):
        with pytest.raises(ValueError, match="participants"):
            SyncOp(SyncKind.BARRIER, obj=1)

    def test_cv_barrier_requires_participants(self):
        with pytest.raises(ValueError, match="participants"):
            SyncOp(SyncKind.CV_BARRIER, obj=1)

    def test_put_requires_items(self):
        with pytest.raises(ValueError, match="item"):
            SyncOp(SyncKind.PC_PUT, obj=1, items=0)

    def test_frozen(self):
        op = SyncOp(SyncKind.NONE)
        with pytest.raises(AttributeError):
            op.obj = 3


class TestTraceBlock:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length mismatch"):
            TraceBlock(
                op=np.zeros(3, dtype=np.uint8),
                dep=np.zeros(2, dtype=np.int32),
                addr=np.zeros(3, dtype=np.int64),
                taken=np.zeros(3, dtype=np.uint8),
                iline=np.zeros(3, dtype=np.int64),
            )

    def test_empty_block(self):
        assert TraceBlock.empty().n_instructions == 0

    def test_class_counts(self):
        b = block_of([0, 0, 3, 5, 5, 5])
        counts = b.class_counts()
        assert len(counts) == len(OP_CLASSES)
        assert counts[0] == 2
        assert counts[OP_LOAD] == 1
        assert counts[OP_BRANCH] == 3

    def test_memory_indices(self):
        b = block_of([OP_LOAD, 0, OP_STORE, OP_BRANCH])
        assert b.memory_indices().tolist() == [0, 2]

    def test_branch_indices(self):
        b = block_of([OP_BRANCH, 0, OP_BRANCH])
        assert b.branch_indices().tolist() == [0, 2]

    def test_op_code_name_round_trip(self):
        for name, code in OP_CODES.items():
            assert OP_CLASSES[code] == name


class TestInstructionPCs:
    def test_pcs_advance_within_a_line(self):
        b = block_of([0, 0, 0], iline=[7, 7, 7])
        pcs = instruction_pcs(b)
        assert pcs.tolist() == [
            7 * PC_SLOTS_PER_LINE,
            7 * PC_SLOTS_PER_LINE + 1,
            7 * PC_SLOTS_PER_LINE + 2,
        ]

    def test_pcs_reset_on_line_change(self):
        b = block_of([0] * 4, iline=[1, 1, 2, 2])
        pcs = instruction_pcs(b)
        assert pcs[2] == 2 * PC_SLOTS_PER_LINE
        assert pcs[3] == 2 * PC_SLOTS_PER_LINE + 1

    def test_offsets_saturate_at_slot_count(self):
        b = block_of([0] * (PC_SLOTS_PER_LINE + 4),
                     iline=[3] * (PC_SLOTS_PER_LINE + 4))
        pcs = instruction_pcs(b)
        assert pcs.max() == 3 * PC_SLOTS_PER_LINE + PC_SLOTS_PER_LINE - 1

    def test_repeating_body_repeats_pcs(self):
        """The same static location gets the same PC on every visit."""
        iline = [1, 1, 2, 2, 1, 1, 2, 2]
        b = block_of([0] * 8, iline=iline)
        pcs = instruction_pcs(b)
        assert pcs[0] == pcs[4]
        assert pcs[3] == pcs[7]

    def test_empty(self):
        assert len(instruction_pcs(TraceBlock.empty())) == 0


class TestFetchLines:
    def test_runs_collapse(self):
        b = block_of([0] * 6, iline=[1, 1, 2, 2, 2, 3])
        assert fetch_lines(b).tolist() == [1, 2, 3]

    def test_revisits_fetch_again(self):
        b = block_of([0] * 4, iline=[1, 2, 1, 2])
        assert fetch_lines(b).tolist() == [1, 2, 1, 2]

    def test_empty(self):
        assert len(fetch_lines(TraceBlock.empty())) == 0


def _simple_trace(events_by_thread):
    threads = []
    for tid, events in enumerate(events_by_thread):
        segs = [
            Segment(block=TraceBlock.empty(), event=e) for e in events
        ]
        threads.append(ThreadTrace(thread_id=tid, segments=segs))
    return WorkloadTrace(name="t", threads=threads)


class TestWorkloadTraceValidation:
    def test_valid_create_join_end(self):
        trace = _simple_trace([
            [SyncOp(SyncKind.CREATE, obj=1),
             SyncOp(SyncKind.JOIN, obj=1),
             SyncOp(SyncKind.END)],
            [SyncOp(SyncKind.END)],
        ])
        trace.validate()

    def test_thread_never_created(self):
        trace = _simple_trace([
            [SyncOp(SyncKind.END)],
            [SyncOp(SyncKind.END)],
        ])
        with pytest.raises(ValueError, match="never created"):
            trace.validate()

    def test_double_create(self):
        trace = _simple_trace([
            [SyncOp(SyncKind.CREATE, obj=1),
             SyncOp(SyncKind.CREATE, obj=1),
             SyncOp(SyncKind.END)],
            [SyncOp(SyncKind.END)],
        ])
        with pytest.raises(ValueError, match="created twice"):
            trace.validate()

    def test_create_unknown_thread(self):
        trace = _simple_trace([
            [SyncOp(SyncKind.CREATE, obj=7), SyncOp(SyncKind.END)],
        ])
        with pytest.raises(ValueError, match="unknown thread"):
            trace.validate()

    def test_missing_end(self):
        trace = _simple_trace([[SyncOp(SyncKind.NONE)]])
        with pytest.raises(ValueError, match="does not END"):
            trace.validate()

    def test_unbalanced_lock(self):
        trace = _simple_trace([
            [SyncOp(SyncKind.LOCK, obj=1), SyncOp(SyncKind.END)],
        ])
        with pytest.raises(ValueError, match="leaves a lock held"):
            trace.validate()

    def test_unlock_without_lock(self):
        trace = _simple_trace([
            [SyncOp(SyncKind.UNLOCK, obj=1), SyncOp(SyncKind.END)],
        ])
        with pytest.raises(ValueError, match="UNLOCK without LOCK"):
            trace.validate()

    def test_thread_ids_must_be_dense(self):
        threads = [ThreadTrace(thread_id=1, segments=[])]
        with pytest.raises(ValueError, match="dense"):
            WorkloadTrace(name="t", threads=threads)

    def test_instruction_count_sums_threads(self):
        b = block_of([0, 0, 0])
        threads = [ThreadTrace(0, [Segment(b, SyncOp(SyncKind.END))])]
        trace = WorkloadTrace(name="t", threads=threads)
        assert trace.n_instructions == 3
